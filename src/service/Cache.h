//===- service/Cache.h - Sharded content-addressed LRU cache ----*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memoization substrate of the analysis service: a mutex-striped,
/// byte-budgeted LRU map from stable 64-bit content hashes
/// (support/Hash.h) to immutable, shared analysis artifacts. One
/// ShardedCache instance backs one *tier* (ASTs, CFGs+call graphs,
/// branch tables, Markov solves, opt plans, rendered responses); the
/// CacheSet below groups the service's tiers.
///
/// Design constraints, in order:
///
///  1. *Correctness under eviction and concurrency.* Values are handed
///     out as shared_ptr<const T>: an entry evicted while a worker still
///     holds it stays alive until the worker drops it, and entries are
///     immutable after insertion, so cached artifacts can be shared by
///     any number of concurrent requests. A lost race (two workers
///     computing the same key) is benign: artifacts are deterministic
///     functions of their key's content, so whichever insert lands first
///     wins and both values are interchangeable. Eviction can therefore
///     only ever cost time, never change a response byte.
///
///  2. *Sharded, not global.* Keys are striped over N independently
///     locked shards (key % N); the byte budget is split evenly across
///     shards and each shard runs its own LRU list, so eviction never
///     takes a global lock either.
///
///  3. *Observable.* Every get/put/evict bumps both the ambient
///     Telemetry (service.cache.<tier>.{hit,miss,evict} counters and the
///     service.cache.<tier>.bytes gauge) and lock-free internal atomics,
///     so live totals are available for the `stats` request even when no
///     telemetry context is installed.
///
//===----------------------------------------------------------------------===//

#ifndef SERVICE_CACHE_H
#define SERVICE_CACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace sest::service {

/// Point-in-time totals of one cache tier (summed over shards).
struct CacheTierStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Bytes = 0;   ///< Resident value bytes (approximate, as charged).
  uint64_t Entries = 0; ///< Resident entry count.
};

/// One tier of the memoization cache. Thread-safe; see file comment.
class ShardedCache {
public:
  /// \p Tier names the tier in counters ("ast", "solve", ...).
  /// \p BudgetBytes caps resident value bytes (0 disables caching:
  /// every get misses and put is a no-op). \p Shards is clamped to >= 1.
  ShardedCache(std::string Tier, size_t BudgetBytes, unsigned Shards = 8);

  ShardedCache(const ShardedCache &) = delete;
  ShardedCache &operator=(const ShardedCache &) = delete;

  /// The value under \p Key, or null on miss. Refreshes LRU recency.
  std::shared_ptr<const void> get(uint64_t Key);

  /// Typed convenience wrapper over get().
  template <typename T> std::shared_ptr<const T> getAs(uint64_t Key) {
    return std::static_pointer_cast<const T>(get(Key));
  }

  /// Inserts \p Value under \p Key, charging \p Bytes against the
  /// budget, then evicts least-recently-used entries until the shard is
  /// within budget again. A key that is already present keeps the
  /// existing value (artifacts are deterministic, so they are equal).
  /// A value larger than a whole shard's budget is not admitted.
  void put(uint64_t Key, std::shared_ptr<const void> Value, size_t Bytes);

  /// Drops every entry (stats counters are kept).
  void clear();

  const std::string &tier() const { return Tier; }
  CacheTierStats stats() const;

private:
  struct Entry {
    std::shared_ptr<const void> Value;
    size_t Bytes = 0;
    std::list<uint64_t>::iterator LruIt; ///< Position in Shard::Lru.
  };

  struct Shard {
    std::mutex Mu;
    std::unordered_map<uint64_t, Entry> Map;
    std::list<uint64_t> Lru; ///< Front = most recent, back = next victim.
    size_t Bytes = 0;
  };

  Shard &shardFor(uint64_t Key) { return Shards_[Key % Shards_.size()]; }

  std::string Tier;
  std::string CounterHit, CounterMiss, CounterEvict, GaugeBytes;
  size_t ShardBudget; ///< Per-shard byte budget.
  std::vector<Shard> Shards_;

  std::atomic<uint64_t> Hits{0}, Misses{0}, Evictions{0}, Bytes{0},
      Entries{0};
};

} // namespace sest::service

#endif // SERVICE_CACHE_H

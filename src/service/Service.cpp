//===- service/Service.cpp - The sestd analysis service --------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "backend/Backend.h"
#include "backend/Native.h"
#include "estimators/Pipeline.h"
#include "interp/Interp.h"
#include "interp/bytecode/BytecodeCompiler.h"
#include "lang/Parser.h"
#include "metrics/Evaluation.h"
#include "obs/EventLog.h"
#include "obs/Export.h"
#include "obs/Telemetry.h"
#include "opt/Inline.h"
#include "opt/Layout.h"
#include "opt/WeightSource.h"
#include "support/Diagnostics.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "tune/Tune.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace sest;
using namespace sest::service;

//===----------------------------------------------------------------------===//
// Cache set
//===----------------------------------------------------------------------===//

CacheSet::CacheSet(size_t BudgetBytes, unsigned Shards)
    : Ast("ast", BudgetBytes / 7, Shards),
      Cfg("cfg", BudgetBytes / 7, Shards),
      Branch("branch", BudgetBytes / 7, Shards),
      Solve("solve", BudgetBytes / 7, Shards),
      Plan("plan", BudgetBytes / 7, Shards),
      Native("native", BudgetBytes / 7, Shards),
      Response("response", BudgetBytes / 7, Shards) {}

std::vector<const ShardedCache *> CacheSet::all() const {
  return {&Ast, &Cfg, &Branch, &Solve, &Plan, &Native, &Response};
}

void CacheSet::clearAll() {
  Ast.clear();
  Cfg.clear();
  Branch.clear();
  Solve.clear();
  Plan.clear();
  Native.clear();
  Response.clear();
}

//===----------------------------------------------------------------------===//
// Cached artifacts
//===----------------------------------------------------------------------===//

namespace {

/// Tier "ast": one parsed + analyzed program. Immutable after build;
/// Ok=false entries (parse errors) are cached too — rejecting a program
/// is as deterministic as accepting it.
struct AstArtifact {
  AstContext Ctx;
  std::string DiagText; ///< Rendered diagnostics (empty when clean).
  bool Ok = false;
};

/// Tier "cfg": CFGs + call graph. Both point into the AST arena, so the
/// artifact co-owns its AST entry — evicting the ast tier can never
/// dangle a resident cfg entry.
struct CfgArtifact {
  std::shared_ptr<const AstArtifact> Ast;
  CfgModule Cfgs;
  CallGraph CG;
};

/// Tier "branch": one prediction table per function id.
using BranchArtifact = std::vector<FunctionBranchPredictions>;

/// Tier "native": one loaded compile-to-C artifact, or the diagnostic
/// explaining why the program has none (no host compiler, lowering
/// failure). Failures are cached like parse errors — deterministic
/// rejections should be as cheap warm as acceptances.
struct NativeEntry {
  std::shared_ptr<const sest::backend::NativeArtifact> Artifact;
  std::string Error; ///< Set when Artifact is null.
};

} // namespace

namespace sest::service::detail {

/// The request options the protocol exposes. Everything that can vary
/// here is folded into the cache keys (optionsHash / branchOptionsHash),
/// so two requests differing in any knob can never alias an artifact.
struct RequestOptions {
  EstimatorOptions Est;

  uint64_t optionsHash() const {
    HashBuilder H("opts");
    H.addU64(static_cast<uint64_t>(Est.Intra))
        .addU64(static_cast<uint64_t>(Est.Inter))
        .addU64(static_cast<uint64_t>(Est.MarkovIntra_.Solver))
        .addDouble(Est.LoopIterations)
        .addDouble(Est.Branch.TakenProbability)
        .addBool(Est.Branch.UseConstantLoopBounds);
    return H.digest();
  }

  /// The subset of knobs that influence branch prediction — the branch
  /// tier is shared between configurations that differ only in, say,
  /// the inter-procedural estimator.
  uint64_t branchOptionsHash() const {
    HashBuilder H("branch-opts");
    H.addDouble(Est.LoopIterations)
        .addDouble(Est.Branch.TakenProbability)
        .addBool(Est.Branch.UseConstantLoopBounds);
    return H.digest();
  }
};

/// One decoded request line.
struct Request {
  std::string Op;
  bool HasId = false;
  double Id = 0;
  std::string Source;
  RequestOptions Opts;
  bool Blocks = false;      ///< estimate: include per-block estimates
  std::string Passes = "all"; ///< optimize: layout | inline | all
  std::string Input;        ///< report/tune: bytes the program reads
  uint64_t Seed = 1;        ///< report: rand() seed; tune: search seed
  std::string Engine = "ast"; ///< report: ast | bytecode | native
  uint32_t Budget = 8;      ///< tune: configs evaluated per oracle
  std::string Oracles = "static,profile"; ///< tune: comma-separated
  std::string Scope = "live"; ///< metrics: live | deterministic
  std::string Error;        ///< non-empty -> ok:false response
  /// Intake ordinal: span provenance ("req:<N>"), assigned in request
  /// order on the intake thread.
  uint64_t Ordinal = 0;
};

} // namespace sest::service::detail

namespace {

using sest::service::detail::Request;
using sest::service::detail::RequestOptions;

/// Control ops answer from live service state instead of the analysis
/// pipeline; handleBatch runs them on the intake thread between
/// parallel sub-batches so their answers see a fully merged registry.
bool isControlOp(const Request &R) {
  return R.Error.empty() &&
         (R.Op == "stats" || R.Op == "metrics" || R.Op == "health" ||
          R.Op == "shutdown");
}

bool parseEstimatorOptions(const JsonValue &V, RequestOptions &O,
                           std::string &Error) {
  for (const auto &[K, Val] : V.Members) {
    if (K == "intra") {
      if (Val.StringVal == "loop")
        O.Est.Intra = IntraEstimatorKind::Loop;
      else if (Val.StringVal == "smart")
        O.Est.Intra = IntraEstimatorKind::Smart;
      else if (Val.StringVal == "markov")
        O.Est.Intra = IntraEstimatorKind::Markov;
      else {
        Error = "unknown intra estimator '" + Val.StringVal + "'";
        return false;
      }
    } else if (K == "inter") {
      if (Val.StringVal == "call_site")
        O.Est.Inter = InterEstimatorKind::CallSite;
      else if (Val.StringVal == "direct")
        O.Est.Inter = InterEstimatorKind::Direct;
      else if (Val.StringVal == "all_rec")
        O.Est.Inter = InterEstimatorKind::AllRec;
      else if (Val.StringVal == "all_rec2")
        O.Est.Inter = InterEstimatorKind::AllRec2;
      else if (Val.StringVal == "markov")
        O.Est.Inter = InterEstimatorKind::Markov;
      else {
        Error = "unknown inter estimator '" + Val.StringVal + "'";
        return false;
      }
    } else if (K == "solver") {
      if (Val.StringVal == "sparse")
        O.Est.setSolver(MarkovSolverKind::Sparse);
      else if (Val.StringVal == "dense")
        O.Est.setSolver(MarkovSolverKind::Dense);
      else {
        Error = "unknown solver '" + Val.StringVal + "'";
        return false;
      }
    } else if (K == "loop_iterations") {
      if (!Val.isNumber() || Val.NumberVal < 1.0) {
        Error = "loop_iterations must be a number >= 1";
        return false;
      }
      O.Est.setLoopIterations(Val.NumberVal);
    } else if (K == "taken_probability") {
      if (!Val.isNumber() || Val.NumberVal <= 0.0 ||
          Val.NumberVal >= 1.0) {
        Error = "taken_probability must be in (0, 1)";
        return false;
      }
      O.Est.Branch.TakenProbability = Val.NumberVal;
    } else if (K == "constant_loop_bounds") {
      O.Est.Branch.UseConstantLoopBounds = Val.BoolVal;
      O.Est.MarkovIntra_.Branch.UseConstantLoopBounds = Val.BoolVal;
    } else {
      // Unknown knobs are rejected, not ignored: a silently dropped
      // option would alias two different configurations onto one cache
      // key.
      Error = "unknown option '" + K + "'";
      return false;
    }
  }
  return true;
}

Request parseRequest(const std::string &Line) {
  Request R;
  std::optional<JsonValue> Doc = parseJson(Line);
  if (!Doc || !Doc->isObject()) {
    R.Error = "request is not a JSON object";
    return R;
  }
  const JsonValue *Op = Doc->find("op");
  if (!Op || !Op->isString()) {
    R.Error = "missing string field 'op'";
    return R;
  }
  R.Op = Op->StringVal;
  if (const JsonValue *Id = Doc->find("id"); Id && Id->isNumber()) {
    R.HasId = true;
    R.Id = Id->NumberVal;
  }
  bool NeedsSource = R.Op == "parse" || R.Op == "estimate" ||
                     R.Op == "optimize" || R.Op == "report" ||
                     R.Op == "tune";
  if (!NeedsSource) {
    if (R.Op == "metrics") {
      if (const JsonValue *S = Doc->find("scope")) {
        if (!S->isString() || (S->StringVal != "live" &&
                               S->StringVal != "deterministic")) {
          R.Error = "metrics scope must be 'live' or 'deterministic'";
          return R;
        }
        R.Scope = S->StringVal;
      }
    } else if (R.Op != "stats" && R.Op != "health" &&
               R.Op != "shutdown") {
      R.Error = "unknown op '" + R.Op + "'";
    }
    return R;
  }
  const JsonValue *Source = Doc->find("source");
  if (!Source || !Source->isString()) {
    R.Error = "missing string field 'source'";
    return R;
  }
  R.Source = Source->StringVal;
  if (const JsonValue *Opts = Doc->find("options")) {
    if (!Opts->isObject()) {
      R.Error = "'options' must be an object";
      return R;
    }
    if (!parseEstimatorOptions(*Opts, R.Opts, R.Error))
      return R;
  }
  if (const JsonValue *B = Doc->find("blocks"); B && B->isBool())
    R.Blocks = B->BoolVal;
  if (const JsonValue *P = Doc->find("passes"); P && P->isString()) {
    R.Passes = P->StringVal;
    if (R.Passes != "layout" && R.Passes != "inline" &&
        R.Passes != "all") {
      R.Error = "unknown passes '" + R.Passes + "'";
      return R;
    }
  }
  if (const JsonValue *I = Doc->find("input"); I && I->isString())
    R.Input = I->StringVal;
  if (const JsonValue *S = Doc->find("seed"); S && S->isNumber())
    R.Seed = static_cast<uint64_t>(S->NumberVal);
  if (const JsonValue *E = Doc->find("engine")) {
    if (!E->isString() || (E->StringVal != "ast" &&
                           E->StringVal != "bytecode" &&
                           E->StringVal != "native")) {
      R.Error = "engine must be 'ast', 'bytecode', or 'native'";
      return R;
    }
    R.Engine = E->StringVal;
  }
  if (R.Op == "tune") {
    // The tuner executes the program itself, so the native engine's
    // separate artifact path does not apply.
    if (R.Engine == "native") {
      R.Error = "tune engine must be 'ast' or 'bytecode'";
      return R;
    }
    if (const JsonValue *B = Doc->find("budget")) {
      if (!B->isNumber() || B->NumberVal < 1.0) {
        R.Error = "budget must be a number >= 1";
        return R;
      }
      R.Budget = static_cast<uint32_t>(B->NumberVal);
    }
    if (const JsonValue *O = Doc->find("oracles")) {
      if (!O->isString()) {
        R.Error = "'oracles' must be a comma-separated string";
        return R;
      }
      R.Oracles = O->StringVal;
    }
    std::string Rest = R.Oracles;
    while (!Rest.empty()) {
      size_t Comma = Rest.find(',');
      std::string Name = Rest.substr(0, Comma);
      Rest = Comma == std::string::npos ? "" : Rest.substr(Comma + 1);
      tune::TuneOracle Oracle;
      if (!tune::parseTuneOracle(Name, Oracle)) {
        R.Error = "unknown oracle '" + Name +
                  "' (expected static|profile|measured)";
        return R;
      }
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Artifact construction (get-or-build per tier)
//===----------------------------------------------------------------------===//

// Byte accounting is approximate: what matters is that charges scale
// with real footprint so the LRU budget means something, not that they
// match malloc to the byte.

size_t cfgArtifactBytes(const CfgArtifact &A) {
  size_t Bytes = sizeof(CfgArtifact);
  for (const auto &[F, G] : A.Cfgs.all()) {
    (void)F;
    Bytes += 64 + G->size() * 96;
  }
  return Bytes;
}

size_t branchArtifactBytes(const BranchArtifact &A) {
  size_t Bytes = sizeof(BranchArtifact) + A.size() * 64;
  for (const FunctionBranchPredictions &P : A) {
    Bytes += P.ByBlock.size() * 64;
    for (const auto &[B, Probs] : P.SwitchProbs) {
      (void)B;
      Bytes += 48 + Probs.size() * sizeof(double);
    }
  }
  return Bytes;
}

size_t estimateBytes(const ProgramEstimate &E) {
  size_t Bytes = sizeof(ProgramEstimate);
  for (const auto &Row : E.BlockEstimates)
    Bytes += 24 + Row.size() * sizeof(double);
  Bytes += (E.FunctionEstimates.size() + E.CallSiteEstimates.size()) *
           sizeof(double);
  for (const FunctionBranchPredictions &P : E.Predictions) {
    Bytes += 64 + P.ByBlock.size() * 64;
    for (const auto &[B, Probs] : P.SwitchProbs) {
      (void)B;
      Bytes += 48 + Probs.size() * sizeof(double);
    }
  }
  return Bytes;
}

/// Annotates the ambient span of request \p R with one tier outcome.
/// A live observation, like `stats`: hit/miss depends on cache state,
/// so these attributes are outside the byte-determinism contract (the
/// span *structure* — kinds, ordinals, order — is inside it).
void logCacheEvent(const Request &R, std::string_view Tier, bool Hit,
                   size_t Bytes = 0) {
  if (!obs::eventLogActive())
    return;
  std::vector<obs::EventAttr> Attrs{
      obs::attr("tier", Tier), obs::attr("outcome", Hit ? "hit" : "miss")};
  if (!Hit)
    Attrs.push_back(obs::attr("bytes", static_cast<double>(Bytes)));
  obs::logEvent("service.request.cache", obs::provRequest(R.Ordinal),
                std::move(Attrs));
}

std::shared_ptr<const AstArtifact> getOrBuildAst(CacheSet &Caches,
                                                const Request &R) {
  const std::string &Source = R.Source;
  uint64_t Key = HashBuilder("ast").add(Source).digest();
  if (auto A = Caches.Ast.getAs<AstArtifact>(Key)) {
    logCacheEvent(R, "ast", true);
    return A;
  }
  auto A = std::make_shared<AstArtifact>();
  {
    obs::ScopedPhase Phase("service.build.ast");
    DiagnosticEngine Diags;
    A->Ok = parseAndAnalyze(Source, A->Ctx, Diags);
    A->DiagText = Diags.str();
  }
  size_t Bytes = sizeof(AstArtifact) + Source.size() +
                 A->Ctx.arenaBytes() + A->DiagText.size();
  logCacheEvent(R, "ast", false, Bytes);
  Caches.Ast.put(Key, A, Bytes);
  return A;
}

std::shared_ptr<const CfgArtifact>
getOrBuildCfg(CacheSet &Caches, const Request &R,
              std::shared_ptr<const AstArtifact> Ast) {
  uint64_t Key = HashBuilder("cfg").add(R.Source).digest();
  if (auto A = Caches.Cfg.getAs<CfgArtifact>(Key)) {
    logCacheEvent(R, "cfg", true);
    return A;
  }
  auto A = std::make_shared<CfgArtifact>();
  {
    obs::ScopedPhase Phase("service.build.cfg");
    A->Ast = std::move(Ast);
    DiagnosticEngine Diags; // CFG construction emits no errors on a
                            // program sema accepted.
    A->Cfgs = CfgModule::build(A->Ast->Ctx.unit(), Diags);
    A->CG = CallGraph::build(A->Ast->Ctx.unit(), A->Cfgs);
  }
  size_t Bytes = cfgArtifactBytes(*A);
  logCacheEvent(R, "cfg", false, Bytes);
  Caches.Cfg.put(Key, A, Bytes);
  return A;
}

std::shared_ptr<const BranchArtifact>
getOrBuildBranch(CacheSet &Caches, const Request &R,
                 const CfgArtifact &Cfg) {
  const RequestOptions &Opts = R.Opts;
  uint64_t Key = HashBuilder("branch")
                     .add(R.Source)
                     .addU64(Opts.branchOptionsHash())
                     .digest();
  if (auto A = Caches.Branch.getAs<BranchArtifact>(Key)) {
    logCacheEvent(R, "branch", true);
    return A;
  }
  auto A = std::make_shared<BranchArtifact>();
  {
    obs::ScopedPhase Phase("service.build.branch");
    const TranslationUnit &Unit = Cfg.Ast->Ctx.unit();
    A->resize(Unit.Functions.size());
    BranchPredictorConfig BC = Opts.Est.Branch;
    BC.LoopIterations = Opts.Est.LoopIterations;
    BranchPredictor Predictor(BC);
    for (const auto &[F, G] : Cfg.Cfgs.all())
      (*A)[F->functionId()] = Predictor.predictFunction(*G);
  }
  size_t Bytes = branchArtifactBytes(*A);
  logCacheEvent(R, "branch", false, Bytes);
  Caches.Branch.put(Key, A, Bytes);
  return A;
}

std::shared_ptr<const ProgramEstimate>
getOrBuildSolve(CacheSet &Caches, const Request &R, const CfgArtifact &Cfg,
                const BranchArtifact &Branch) {
  const RequestOptions &Opts = R.Opts;
  uint64_t Key = HashBuilder("solve")
                     .add(R.Source)
                     .addU64(Opts.optionsHash())
                     .digest();
  if (auto A = Caches.Solve.getAs<ProgramEstimate>(Key)) {
    logCacheEvent(R, "solve", true);
    return A;
  }
  std::shared_ptr<ProgramEstimate> A;
  {
    obs::ScopedPhase Phase("service.build.solve");
    // Per-function parallelism stays off inside the service: the
    // service parallelizes across requests, and nested pools would
    // oversubscribe the batch workers.
    EstimatorOptions Est = Opts.Est;
    Est.Jobs = 1;
    A = std::make_shared<ProgramEstimate>(
        estimateProgram(Cfg.Ast->Ctx.unit(), Cfg.Cfgs, Cfg.CG, Est,
                        &Branch));
  }
  size_t Bytes = estimateBytes(*A);
  logCacheEvent(R, "solve", false, Bytes);
  Caches.Solve.put(Key, A, Bytes);
  return A;
}

std::shared_ptr<const NativeEntry>
getOrBuildNative(CacheSet &Caches, const Request &R,
                 const CfgArtifact &Cfg) {
  // Keyed by source alone: the service compiles identity-layout
  // artifacts, and the backend folds the layout plan into the generated
  // source (and therefore its own memoization) anyway.
  uint64_t Key = HashBuilder("native").add(R.Source).digest();
  if (auto A = Caches.Native.getAs<NativeEntry>(Key)) {
    logCacheEvent(R, "native", true);
    return A;
  }
  auto A = std::make_shared<NativeEntry>();
  {
    obs::ScopedPhase Phase("service.build.native");
    const TranslationUnit &Unit = Cfg.Ast->Ctx.unit();
    bc::BcModule Bc = bc::compileBytecode(Unit, Cfg.Cfgs);
    A->Artifact =
        backend::cBackend().compile(Unit, Cfg.Cfgs, Bc, {}, &A->Error);
  }
  size_t Bytes = sizeof(NativeEntry) + A->Error.size() +
                 (A->Artifact ? A->Artifact->sourceBytes() : 0);
  logCacheEvent(R, "native", false, Bytes);
  Caches.Native.put(Key, A, Bytes);
  return A;
}

//===----------------------------------------------------------------------===//
// Response rendering
//===----------------------------------------------------------------------===//

/// What the response tier memoizes: everything about a response except
/// the per-request envelope (the echoed id). ResultJson is one complete
/// pre-rendered JSON object, spliced into the envelope verbatim — warm
/// responses are byte-identical to cold ones because both go through
/// the same splice.
struct ResponseBody {
  bool Ok = false;
  std::string Error;      ///< Set when !Ok.
  std::string ResultJson; ///< Set when Ok.
};

/// Renders the full response line for \p R around \p Body.
std::string renderEnvelope(const Request &R, const ResponseBody &Body) {
  JsonWriter W;
  W.beginObject();
  W.member("protocol", "sest-service/1");
  if (R.HasId)
    W.member("id", R.Id);
  W.member("op", R.Op);
  W.member("ok", Body.Ok);
  if (!R.Source.empty())
    W.member("program_hash",
             hashHex(contentHash64(R.Source)));
  if (Body.Ok)
    W.key("result").rawValue(Body.ResultJson);
  else
    W.member("error", Body.Error);
  W.endObject();
  return W.take();
}

std::string renderError(const Request &R, const std::string &Error) {
  ResponseBody Body;
  Body.Error = Error;
  return renderEnvelope(R, Body);
}

std::string parseResultJson(const CfgArtifact &Cfg) {
  const TranslationUnit &Unit = Cfg.Ast->Ctx.unit();
  size_t TotalBlocks = 0;
  JsonWriter W;
  W.beginObject();
  W.key("functions").beginArray();
  for (const auto &[F, G] : Cfg.Cfgs.all()) {
    TotalBlocks += G->size();
    W.beginObject();
    W.member("name", F->name());
    W.member("blocks", static_cast<uint64_t>(G->size()));
    W.endObject();
  }
  W.endArray();
  W.member("total_blocks", static_cast<uint64_t>(TotalBlocks));
  W.member("call_sites", static_cast<uint64_t>(Unit.NumCallSites));
  W.endObject();
  return W.take();
}

std::string estimateResultJson(const Request &R, const CfgArtifact &Cfg,
                               const ProgramEstimate &E) {
  JsonWriter W;
  W.beginObject();
  W.member("intra", intraEstimatorName(R.Opts.Est.Intra));
  W.member("inter", interEstimatorName(R.Opts.Est.Inter));
  W.key("functions").beginArray();
  for (const auto &[F, G] : Cfg.Cfgs.all()) {
    (void)G;
    size_t Fid = F->functionId();
    W.beginObject();
    W.member("name", F->name());
    W.member("invocations", E.FunctionEstimates[Fid]);
    if (R.Blocks) {
      W.key("blocks").beginArray();
      for (double B : E.BlockEstimates[Fid])
        W.value(B);
      W.endArray();
    }
    W.endObject();
  }
  W.endArray();
  W.key("call_sites").beginArray();
  for (double C : E.CallSiteEstimates)
    W.value(C);
  W.endArray();
  W.endObject();
  return W.take();
}

std::string optimizeResultJson(const Request &R, const CfgArtifact &Cfg,
                               const ProgramEstimate &E) {
  const TranslationUnit &Unit = Cfg.Ast->Ctx.unit();
  // The plan must be value-only: InlinePlan and layouts reference AST
  // nodes whose lifetime is the ast tier entry's, so everything is
  // rendered to JSON before it can outlive the artifacts.
  opt::WeightSource Weights =
      opt::weightsFromEstimate(Unit, Cfg.Cfgs, E, R.Opts.Est);
  JsonWriter W;
  W.beginObject();
  W.member("passes", R.Passes);
  W.member("weights", Weights.Origin);
  if (R.Passes == "layout" || R.Passes == "all") {
    opt::ProgramLayout Layout =
        opt::computeBlockLayout(Unit, Cfg.Cfgs, Weights);
    W.key("layout").beginArray();
    for (const auto &[F, G] : Cfg.Cfgs.all()) {
      (void)G;
      const opt::FunctionLayout &FL = Layout.Functions[F->functionId()];
      W.beginObject();
      W.member("name", F->name());
      W.key("order").beginArray();
      for (uint32_t B : FL.Order)
        W.value(B);
      W.endArray();
      W.member("chains", FL.NumChains);
      W.member("first_cold", FL.FirstColdPos);
      W.endObject();
    }
    W.endArray();
    opt::BranchHints Hints =
        opt::computeBranchHints(Unit, Cfg.Cfgs, Weights);
    W.key("never_taken").beginArray();
    for (const opt::BranchHints::ColdArc &A : Hints.NeverTaken) {
      W.beginObject();
      W.member("function", A.Fid);
      W.member("block", A.Block);
      W.member("slot", A.Slot);
      W.endObject();
    }
    W.endArray();
  }
  if (R.Passes == "inline" || R.Passes == "all") {
    opt::InlinePlan Plan =
        opt::planInlining(Unit, Cfg.Cfgs, Cfg.CG, Weights);
    W.key("inline").beginArray();
    for (const opt::InlineDecision &D : Plan.Sites) {
      W.beginObject();
      W.member("call_site", D.CallSiteId);
      W.member("caller", D.Caller->name());
      W.member("callee", D.Callee->name());
      W.member("weight", D.Weight);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
  return W.take();
}

std::string reportResultJson(CacheSet &Caches, const Request &R,
                             const CfgArtifact &Cfg,
                             const ProgramEstimate &E) {
  const TranslationUnit &Unit = Cfg.Ast->Ctx.unit();
  ProgramInput Input;
  Input.Text = R.Input;
  Input.RandSeed = R.Seed;
  RunResult Run;
  if (R.Engine == "native") {
    // The native tier runs the same RunResult contract bit-identically,
    // so an engine:"native" report differs from an ast one only in its
    // echoed engine field — unless the host cannot compile, in which
    // case the capability diagnostic becomes the run error.
    std::shared_ptr<const NativeEntry> N = getOrBuildNative(Caches, R, Cfg);
    if (N->Artifact) {
      obs::ScopedPhase Phase("service.build.run");
      Run = N->Artifact->run(Unit, Cfg.Cfgs, Input, {});
    } else {
      Run.Error = N->Error;
    }
  } else {
    obs::ScopedPhase Phase("service.build.run");
    InterpOptions O;
    O.Engine = R.Engine == "bytecode" ? InterpEngine::Bytecode
                                      : InterpEngine::Ast;
    Run = runProgram(Unit, Cfg.Cfgs, Input, O);
  }
  JsonWriter W;
  W.beginObject();
  W.member("engine", R.Engine);
  W.key("run").beginObject();
  W.member("ok", Run.Ok);
  if (!Run.Ok)
    W.member("error", Run.Error);
  W.member("exit_code", Run.ExitCode);
  W.member("steps", Run.StepsExecuted);
  W.member("output", Run.Output);
  W.endObject();
  if (Run.Ok) {
    std::vector<size_t> Ids = scoredFunctionIds(Unit);
    W.key("scores").beginArray();
    for (double Cutoff : {0.10, 0.25, 0.50}) {
      W.beginObject();
      W.member("cutoff", Cutoff);
      W.member("intra",
               intraProceduralScore(E, Run.TheProfile, Ids, Cutoff));
      W.member("functions",
               functionInvocationScore(E, Run.TheProfile, Ids, Cutoff));
      W.member("call_sites", callSiteScore(E, Run.TheProfile, Cutoff));
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
  return W.take();
}

/// The semantic key of a cacheable request: op + source + every knob
/// that can change the result. Deliberately NOT the raw line — field
/// order and the echoed id must not fragment the response tier.
uint64_t responseKey(const Request &R) {
  HashBuilder H("response");
  H.add(R.Op)
      .add(R.Source)
      .addU64(R.Opts.optionsHash())
      .addBool(R.Blocks)
      .add(R.Passes)
      .add(R.Input)
      .addU64(R.Seed)
      .add(R.Engine)
      .addU64(R.Budget)
      .add(R.Oracles);
  return H.digest();
}

/// The `tune` result: the full sest-tune-report/1 document for the
/// request's source, as produced by the autotuner over a synthesized
/// train/eval input pair (tune::tuneSource). Deterministic — same
/// source + knobs -> same bytes — so it lives in the plan tier under
/// its own key domain.
std::string tuneResultJson(const Request &R) {
  tune::TuneOptions O;
  O.Budget = R.Budget;
  O.Seed = R.Seed;
  O.Engine = R.Engine == "bytecode" ? InterpEngine::Bytecode
                                    : InterpEngine::Ast;
  O.Oracles.clear();
  std::string Rest = R.Oracles;
  while (!Rest.empty()) {
    size_t Comma = Rest.find(',');
    tune::TuneOracle Oracle;
    if (tune::parseTuneOracle(Rest.substr(0, Comma), Oracle))
      O.Oracles.push_back(Oracle);
    Rest = Comma == std::string::npos ? "" : Rest.substr(Comma + 1);
  }
  return tune::tuneSource(R.Source, R.Input, O);
}

/// Computes the response body for one cacheable op (parse / estimate /
/// optimize / report), walking the artifact tiers top-down so every
/// stage that is already cached is skipped.
ResponseBody buildBody(CacheSet &Caches, const Request &R) {
  ResponseBody Body;
  std::shared_ptr<const AstArtifact> Ast = getOrBuildAst(Caches, R);
  if (!Ast->Ok) {
    Body.Error = "program does not parse: " + Ast->DiagText;
    return Body;
  }
  std::shared_ptr<const CfgArtifact> Cfg = getOrBuildCfg(Caches, R, Ast);
  if (R.Op == "parse") {
    Body.Ok = true;
    Body.ResultJson = parseResultJson(*Cfg);
    return Body;
  }
  if (R.Op == "tune") {
    // Tune reports share the plan tier (they are optimizer decision
    // documents too) under their own key domain.
    uint64_t TuneKey = HashBuilder("tune")
                           .add(R.Source)
                           .add(R.Input)
                           .addU64(R.Seed)
                           .addU64(R.Budget)
                           .add(R.Oracles)
                           .add(R.Engine)
                           .digest();
    std::shared_ptr<const std::string> Doc =
        Caches.Plan.getAs<std::string>(TuneKey);
    if (Doc) {
      logCacheEvent(R, "plan", true);
    } else {
      obs::ScopedPhase Phase("service.build.tune");
      Doc = std::make_shared<const std::string>(tuneResultJson(R));
      logCacheEvent(R, "plan", false, Doc->size());
      Caches.Plan.put(TuneKey, Doc, sizeof(std::string) + Doc->size());
    }
    Body.Ok = true;
    Body.ResultJson = *Doc;
    return Body;
  }
  std::shared_ptr<const BranchArtifact> Branch =
      getOrBuildBranch(Caches, R, *Cfg);
  std::shared_ptr<const ProgramEstimate> Solve =
      getOrBuildSolve(Caches, R, *Cfg, *Branch);
  if (R.Op == "estimate") {
    Body.Ok = true;
    Body.ResultJson = estimateResultJson(R, *Cfg, *Solve);
  } else if (R.Op == "optimize") {
    // Plans get their own tier: they depend on `passes` on top of the
    // solve, and rendering them walks the optimizer.
    uint64_t PlanKey = HashBuilder("plan")
                           .add(R.Source)
                           .addU64(R.Opts.optionsHash())
                           .add(R.Passes)
                           .digest();
    std::shared_ptr<const std::string> Plan =
        Caches.Plan.getAs<std::string>(PlanKey);
    if (Plan) {
      logCacheEvent(R, "plan", true);
    } else {
      obs::ScopedPhase Phase("service.build.plan");
      Plan = std::make_shared<const std::string>(
          optimizeResultJson(R, *Cfg, *Solve));
      logCacheEvent(R, "plan", false, Plan->size());
      Caches.Plan.put(PlanKey, Plan, sizeof(std::string) + Plan->size());
    }
    Body.Ok = true;
    Body.ResultJson = *Plan;
  } else { // report
    Body.Ok = true;
    Body.ResultJson = reportResultJson(Caches, R, *Cfg, *Solve);
  }
  return Body;
}

std::string statsResultJson(const ServiceOptions &Opts,
                            const CacheSet &Caches) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", "sest-service-stats/1");
  W.member("jobs", Opts.Jobs);
  W.member("cache_budget_bytes",
           static_cast<uint64_t>(Opts.CacheBudgetBytes));
  W.member("cache_shards", Opts.CacheShards);
  // Host capability for engine:"native" reports: whether the backend
  // can compile on this machine, and with what.
  std::string Why;
  bool NativeAvailable = backend::nativeEngineAvailable(&Why);
  W.key("native_engine").beginObject();
  W.member("available", NativeAvailable);
  if (NativeAvailable)
    W.member("compiler", backend::hostCompilerPath());
  else
    W.member("reason", Why);
  W.endObject();
  W.key("cache").beginObject();
  for (const ShardedCache *C : Caches.all()) {
    CacheTierStats S = C->stats();
    W.key(C->tier()).beginObject();
    W.member("hit", S.Hits);
    W.member("miss", S.Misses);
    W.member("evict", S.Evictions);
    W.member("bytes", S.Bytes);
    W.member("entries", S.Entries);
    W.endObject();
  }
  W.endObject();
  // The same totals flattened under the exporter's registry names, so
  // sesttop, the `metrics` exposition, and `stats` share one source of
  // truth (the tier atomics) and one naming scheme.
  W.key("gauges").beginObject();
  for (const ShardedCache *C : Caches.all()) {
    CacheTierStats S = C->stats();
    std::string Base = "service.cache." + C->tier() + ".";
    W.member(Base + "hits", S.Hits);
    W.member(Base + "misses", S.Misses);
    W.member(Base + "evictions", S.Evictions);
    W.member(Base + "bytes", S.Bytes);
    W.member(Base + "entries", S.Entries);
  }
  W.endObject();
  // The live telemetry report (phases, counters, gauges, histograms —
  // the same shape the suite report embeds), when the caller's thread
  // has a collector installed.
  if (obs::Telemetry *T = obs::Telemetry::active()) {
    W.key("telemetry");
    T->writeReport(W);
  } else {
    W.key("telemetry").nullValue(); // no collector installed
  }
  W.endObject();
  return W.take();
}

/// The cache tiers' live atomic totals as exporter extra series — the
/// `service.cache.<tier>.*` gauge families (plural names, matching the
/// flat `gauges` object in the stats result).
std::vector<obs::ExtraSeries> cacheSeries(const CacheSet &Caches) {
  std::vector<obs::ExtraSeries> Extra;
  for (const ShardedCache *C : Caches.all()) {
    CacheTierStats S = C->stats();
    std::string Base = "service.cache." + C->tier() + ".";
    Extra.push_back({Base + "hits", static_cast<double>(S.Hits), false});
    Extra.push_back(
        {Base + "misses", static_cast<double>(S.Misses), false});
    Extra.push_back(
        {Base + "evictions", static_cast<double>(S.Evictions), false});
    Extra.push_back({Base + "bytes", static_cast<double>(S.Bytes), false});
    Extra.push_back(
        {Base + "entries", static_cast<double>(S.Entries), false});
  }
  return Extra;
}

/// The `metrics` result: the exposition as one JSON string field, so
/// the envelope stays line-delimited JSON while the payload is standard
/// Prometheus text.
std::string metricsResultJson(const std::string &Scope,
                              const std::string &Exposition) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", "sest-service-metrics/1");
  W.member("format", "prometheus");
  W.member("scope", Scope);
  W.member("exposition", Exposition);
  W.endObject();
  return W.take();
}

/// The `health` result: liveness plus a config echo. Live (the answer
/// depends on service configuration), like `stats`.
std::string healthResultJson(const ServiceOptions &Opts, bool Shutdown) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", "sest-service-health/1");
  W.member("status", "ok");
  W.member("protocol", "sest-service/1");
  W.member("accepting", !Shutdown);
  W.member("jobs", Opts.Jobs);
  W.member("cache_enabled", Opts.CacheBudgetBytes > 0);
  W.member("native_engine", backend::nativeEngineAvailable(nullptr));
  W.endObject();
  return W.take();
}

} // namespace

//===----------------------------------------------------------------------===//
// Service
//===----------------------------------------------------------------------===//

Service::Service(const ServiceOptions &Options)
    : Opts(Options),
      Caches(std::make_unique<CacheSet>(Options.CacheBudgetBytes,
                                        Options.CacheShards)) {}

Service::~Service() = default;

void Service::clearCache() { Caches->clearAll(); }

std::string Service::statsJson() const {
  Request R;
  R.Op = "stats";
  ResponseBody Body;
  Body.Ok = true;
  Body.ResultJson = statsResultJson(Opts, *Caches);
  return renderEnvelope(R, Body);
}

std::string Service::metricsExposition(bool DeterministicOnly) const {
  obs::ExportOptions O;
  O.DeterministicOnly = DeterministicOnly;
  std::vector<obs::ExtraSeries> Extra;
  if (!DeterministicOnly)
    Extra = cacheSeries(*Caches);
  if (const obs::Telemetry *T = obs::Telemetry::active())
    return obs::renderPrometheus(*T, O, Extra);
  obs::Telemetry Empty; // no collector installed: cache series only
  return obs::renderPrometheus(Empty, O, Extra);
}

std::string Service::dispatch(const detail::Request &R, bool &Ok) {
  obs::ScopedPhase Phase("service.request", R.Op);
  // service.requests counts every request line received (bad included:
  // service.requests.bad is a subset, not a sibling).
  obs::counterAdd("service.requests");
  if (!R.Error.empty()) {
    obs::counterAdd("service.requests.bad");
    Ok = false;
    return renderError(R, R.Error);
  }
  if (obs::telemetryActive())
    obs::counterAdd("service.requests." + R.Op);

  // Control ops: answered live, never cached. The counters above run
  // first, so a metrics answer includes its own request.
  if (R.Op == "stats") {
    ResponseBody Body;
    Body.Ok = Ok = true;
    Body.ResultJson = statsResultJson(Opts, *Caches);
    return renderEnvelope(R, Body);
  }
  if (R.Op == "metrics") {
    ResponseBody Body;
    Body.Ok = Ok = true;
    Body.ResultJson = metricsResultJson(
        R.Scope, metricsExposition(R.Scope == "deterministic"));
    return renderEnvelope(R, Body);
  }
  if (R.Op == "health") {
    ResponseBody Body;
    Body.Ok = Ok = true;
    Body.ResultJson = healthResultJson(Opts, shutdownRequested());
    return renderEnvelope(R, Body);
  }
  if (R.Op == "shutdown") {
    Shutdown.store(true, std::memory_order_relaxed);
    ResponseBody Body;
    Body.Ok = Ok = true;
    Body.ResultJson = "{\"shutting_down\":true}";
    return renderEnvelope(R, Body);
  }

  // The response tier short-circuits every analysis stage. A racing
  // duplicate compute is benign (deterministic bodies; first put wins).
  uint64_t Key = responseKey(R);
  std::shared_ptr<const ResponseBody> Body =
      Caches->Response.getAs<ResponseBody>(Key);
  if (Body) {
    logCacheEvent(R, "response", true);
  } else {
    auto Built = std::make_shared<ResponseBody>(buildBody(*Caches, R));
    logCacheEvent(R, "response", false,
                  Built->Error.size() + Built->ResultJson.size());
    Caches->Response.put(Key, Built,
                         sizeof(ResponseBody) + Built->Error.size() +
                             Built->ResultJson.size());
    Body = std::move(Built);
  }
  Ok = Body->Ok;
  return renderEnvelope(R, *Body);
}

std::string Service::handleParsed(const detail::Request &R) {
  // The request span: dequeue -> execute (-> per-tier cache events
  // inside dispatch) -> respond, all under the intake-assigned req:<N>
  // provenance, so a request's latency joins its cache outcomes.
  const char *OpName = R.Error.empty() ? R.Op.c_str() : "invalid";
  if (obs::eventLogActive()) {
    obs::logEvent("service.request.dequeue", obs::provRequest(R.Ordinal),
                  {obs::attr("op", OpName)});
    obs::logEvent("service.request.execute", obs::provRequest(R.Ordinal),
                  {obs::attr("op", OpName)});
  }
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  bool Ok = false;
  std::string Out = dispatch(R, Ok);
  double Us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            Start)
          .count());
  obs::histRecord("service.request_us", Us);
  if (R.Error.empty() && obs::telemetryActive())
    obs::histRecord("service.request_us." + R.Op, Us);
  if (obs::eventLogActive())
    obs::logEvent("service.request.respond", obs::provRequest(R.Ordinal),
                  {obs::attr("ok", Ok ? 1.0 : 0.0),
                   obs::attr("bytes", static_cast<double>(Out.size()))});
  return Out;
}

std::string Service::handle(const std::string &Line) {
  detail::Request R = parseRequest(Line);
  R.Ordinal = NextOrdinal.fetch_add(1, std::memory_order_relaxed);
  if (obs::eventLogActive())
    obs::logEvent("service.request.enqueue", obs::provRequest(R.Ordinal),
                  {obs::attr("op", R.Error.empty() ? R.Op.c_str()
                                                   : "invalid"),
                   obs::attr("queue_depth", 1.0)});
  return handleParsed(R);
}

std::vector<std::string>
Service::handleBatch(const std::vector<std::string> &Lines) {
  std::vector<std::string> Out(Lines.size());
  obs::ScopedPhase Phase("service.batch");
  obs::gaugeMax("service.batch.depth",
                static_cast<double>(Lines.size()));
  obs::counterAdd("service.batches");

  // Intake: parse and assign ordinals in request order, and emit every
  // enqueue event before any execution — the serial and parallel paths
  // then produce identical event streams.
  std::vector<detail::Request> Reqs(Lines.size());
  for (size_t I = 0; I < Lines.size(); ++I) {
    Reqs[I] = parseRequest(Lines[I]);
    Reqs[I].Ordinal = NextOrdinal.fetch_add(1, std::memory_order_relaxed);
    if (obs::eventLogActive())
      obs::logEvent(
          "service.request.enqueue", obs::provRequest(Reqs[I].Ordinal),
          {obs::attr("op", Reqs[I].Error.empty() ? Reqs[I].Op.c_str()
                                                 : "invalid"),
           obs::attr("queue_depth", static_cast<double>(Lines.size()))});
  }

  unsigned Jobs = Opts.Jobs == 0
                      ? std::max(1u, std::thread::hardware_concurrency())
                      : Opts.Jobs;
  if (Jobs <= 1 || Lines.size() <= 1) {
    for (size_t I = 0; I < Lines.size(); ++I)
      Out[I] = handleParsed(Reqs[I]);
    return Out;
  }

  // The suite runner's pool shape: workers pull the next request index,
  // each task collects telemetry/events into private contexts on its
  // worker's trace track, and contexts merge back in request order —
  // so the merged report is independent of scheduling. Control ops
  // (stats/metrics/health/shutdown) split the batch: they run on this
  // thread after the preceding sub-batch has fully merged, so their
  // answers see exactly the requests that preceded them in the stream,
  // at every Jobs value.
  auto RunParallel = [&](size_t Begin, size_t End) {
    obs::TaskCapture Cap;
    std::vector<obs::TaskCapture::Slot> Slots(End - Begin);
    std::atomic<size_t> Next{Begin};
    auto Worker = [&](uint32_t Track) {
      std::string Name = "service-" + std::to_string(Track);
      for (size_t I; (I = Next.fetch_add(1)) < End;)
        Cap.run(Slots[I - Begin], Track, Name,
                [&] { Out[I] = handleParsed(Reqs[I]); });
    };
    std::vector<std::thread> Pool;
    unsigned N =
        static_cast<unsigned>(std::min<size_t>(Jobs, End - Begin));
    Pool.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Pool.emplace_back(Worker, I + 1);
    for (std::thread &T : Pool)
      T.join();
    for (obs::TaskCapture::Slot &S : Slots)
      Cap.merge(S);
  };

  size_t Start = 0;
  while (Start < Lines.size()) {
    if (isControlOp(Reqs[Start])) {
      Out[Start] = handleParsed(Reqs[Start]);
      ++Start;
      continue;
    }
    size_t End = Start;
    while (End < Lines.size() && !isControlOp(Reqs[End]))
      ++End;
    if (End - Start == 1)
      Out[Start] = handleParsed(Reqs[Start]);
    else
      RunParallel(Start, End);
    Start = End;
  }
  return Out;
}

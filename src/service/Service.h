//===- service/Service.h - The sestd analysis service -----------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis-as-a-service core behind tools/sestd: newline-delimited
/// JSON requests in, newline-delimited JSON responses out, executed
/// batched on a thread pool and answered from a content-addressed
/// memoization cache so a repeated or overlapping request skips every
/// pipeline stage it has already paid for.
///
/// Protocol (`sest-service/1`, one JSON object per line; see
/// docs/SERVICE.md for the full schema):
///
///   {"op":"parse",    "source":"...", ["id":N]}
///   {"op":"estimate", "source":"...", ["options":{...}, "blocks":true]}
///   {"op":"optimize", "source":"...", ["passes":"layout|inline|all"]}
///   {"op":"report",   "source":"...", ["input":"...", "seed":N,
///                                       "engine":"ast|bytecode|native"]}
///   {"op":"tune",     "source":"...", ["input":"...", "budget":N,
///                                       "seed":N, "oracles":"static,...",
///                                       "engine":"ast|bytecode"]}
///   {"op":"stats"}          -> live telemetry + cache counters
///   {"op":"metrics"}        -> Prometheus text exposition
///                              (["scope":"live"|"deterministic"])
///   {"op":"health"}         -> liveness + config echo
///   {"op":"shutdown"}       -> acknowledge, then the server exits
///
/// stats / metrics / health / shutdown are *control ops*: they are
/// answered on the intake thread between parallel sub-batches, so a
/// metrics answer reflects exactly the requests that preceded it in
/// the stream, at every Jobs value.
///
/// Cache tiers (each a ShardedCache, keyed by support::contentHash64
/// over source text + the options that influence the artifact):
///
///   ast       parsed+analyzed ASTs
///   cfg       CFGs + call graph (co-owns its AST entry)
///   branch    branch-prediction tables
///   solve     sparse-Markov solve results (whole ProgramEstimates)
///   plan      optimizer plans (layout / hints / inline selection) and
///             tune reports (autotuner runs, own key domain)
///   native    loaded compile-to-C artifacts for engine:"native" reports
///             (compile failures are cached too — rejecting is as
///             deterministic as accepting)
///   response  rendered response bodies, keyed by the raw request line
///
/// Determinism contract (extends the repo-wide one to the service
/// layer): a request's response is byte-identical whether it is served
/// cold, warm, after any eviction history, at any batch split, and at
/// any Jobs value. This holds because every cached artifact is a
/// deterministic pure function of its key's content, responses embed no
/// wall-clock or cache-provenance data, and `stats` (the one
/// intentionally live, non-deterministic answer) is excluded from the
/// contract.
///
//===----------------------------------------------------------------------===//

#ifndef SERVICE_SERVICE_H
#define SERVICE_SERVICE_H

#include "service/Cache.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sest::service {

namespace detail {
struct Request; // One decoded request line (Service.cpp).
}

/// Service configuration.
struct ServiceOptions {
  /// Worker threads per batch (1 = serial, 0 = hardware_concurrency).
  /// Responses are byte-identical for every value.
  unsigned Jobs = 1;
  /// Total cache byte budget, split evenly across the seven tiers
  /// (0 disables memoization entirely — every request recomputes).
  size_t CacheBudgetBytes = 256u << 20;
  /// Mutex stripes per tier.
  unsigned CacheShards = 16;
};

/// The seven cache tiers of one service instance.
struct CacheSet {
  ShardedCache Ast, Cfg, Branch, Solve, Plan, Native, Response;

  CacheSet(size_t BudgetBytes, unsigned Shards);
  /// Tier pointers in stable report order.
  std::vector<const ShardedCache *> all() const;
  void clearAll();
};

/// A long-lived analysis service instance. One Service is driven from
/// one thread (sestd's read loop, a test, a bench); the parallelism is
/// inside handleBatch. See the file comment for the contract.
class Service {
public:
  explicit Service(const ServiceOptions &Options = {});
  ~Service();
  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// Handles one request line; returns the response line (no trailing
  /// newline). Never throws: malformed input becomes an ok:false
  /// response.
  std::string handle(const std::string &Line);

  /// Handles a batch: requests execute concurrently on Jobs workers,
  /// responses come back in request order. Per-task telemetry and event
  /// logs are captured via obs::TaskCapture and merged in task order,
  /// exactly like the suite runner's pool.
  std::vector<std::string> handleBatch(const std::vector<std::string> &Lines);

  /// True once a shutdown request has been acknowledged; the driver
  /// loop should stop reading after draining the current batch.
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_relaxed);
  }

  /// The live stats document (also served as the `stats` op): cache
  /// tier counters plus the ambient telemetry report when a context is
  /// installed on the calling thread.
  std::string statsJson() const;

  /// The Prometheus text exposition (also served as the `metrics` op):
  /// the calling thread's ambient telemetry registry rendered via
  /// obs::renderPrometheus, plus the cache tiers' live atomic totals as
  /// `service.cache.<tier>.{hits,misses,evictions,bytes,entries}`
  /// gauges. With \p DeterministicOnly, only the request-flow counter
  /// families that are byte-identical across Jobs values and cache
  /// states are emitted (see obs::deterministicSeriesName).
  std::string metricsExposition(bool DeterministicOnly) const;

  /// Drops every cached artifact (for tests and benches; counters keep
  /// counting).
  void clearCache();

  const CacheSet &caches() const { return *Caches; }
  const ServiceOptions &options() const { return Opts; }

private:
  std::string dispatch(const detail::Request &R, bool &Ok);
  /// Executes one already-parsed request: span events, latency
  /// histograms, dispatch.
  std::string handleParsed(const detail::Request &R);

  ServiceOptions Opts;
  std::unique_ptr<CacheSet> Caches;
  /// Next request ordinal; assigned at intake, in request order, so
  /// `req:<N>` span provenance is stable across Jobs values.
  std::atomic<uint64_t> NextOrdinal{0};
  /// Atomic: a shutdown request may land on any batch worker.
  std::atomic<bool> Shutdown{false};
};

} // namespace sest::service

#endif // SERVICE_SERVICE_H

//===- suite/Suite.cpp - The 14-program benchmark suite --------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include "support/StringUtils.h"

using namespace sest;

unsigned SuiteProgram::sourceLines() const {
  unsigned Lines = 0;
  for (const std::string &Line : splitString(Source, '\n')) {
    for (char C : Line)
      if (C != ' ' && C != '\t') {
        ++Lines;
        break;
      }
  }
  return Lines;
}

const std::vector<SuiteProgram> &sest::benchmarkSuite() {
  static const std::vector<SuiteProgram> Suite = [] {
    std::vector<SuiteProgram> S;
    S.push_back(makeAlvinn());
    S.push_back(makeCompress());
    S.push_back(makeEar());
    S.push_back(makeEqntott());
    S.push_back(makeEspresso());
    S.push_back(makeGcc());
    S.push_back(makeSc());
    S.push_back(makeXlisp());
    S.push_back(makeAwk());
    S.push_back(makeBison());
    S.push_back(makeCholesky());
    S.push_back(makeGs());
    S.push_back(makeMpeg());
    S.push_back(makeWater());
    return S;
  }();
  return Suite;
}

const SuiteProgram *sest::findSuiteProgram(const std::string &Name) {
  for (const SuiteProgram &P : benchmarkSuite())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

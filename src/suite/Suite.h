//===- suite/Suite.h - The 14-program benchmark suite -----------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation suite: 14 mini-C programs standing in for the paper's
/// Table 1 (the SPEC92 C programs plus six others), each reproducing its
/// model's domain and control-flow idioms, with at least four inputs.
/// See DESIGN.md for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef SUITE_SUITE_H
#define SUITE_SUITE_H

#include "interp/Interp.h"

#include <string>
#include <vector>

namespace sest {

/// One benchmark program.
struct SuiteProgram {
  /// Short name ("compress", "xlisp", ...).
  std::string Name;
  /// The Table 1 program this one stands in for.
  std::string PaperAnalogue;
  /// One-line description (the Table 1 column).
  std::string Description;
  /// Mini-C source text.
  std::string Source;
  /// At least four inputs.
  std::vector<ProgramInput> Inputs;

  /// Number of non-blank source lines (the Table 1 "Lines" column).
  unsigned sourceLines() const;
};

/// The full suite in Table 1 order.
const std::vector<SuiteProgram> &benchmarkSuite();

/// Finds a program by name; null when absent.
const SuiteProgram *findSuiteProgram(const std::string &Name);

// One factory per program (suite/programs/*.cpp).
SuiteProgram makeAlvinn();
SuiteProgram makeCompress();
SuiteProgram makeEar();
SuiteProgram makeEqntott();
SuiteProgram makeEspresso();
SuiteProgram makeGcc();
SuiteProgram makeSc();
SuiteProgram makeXlisp();
SuiteProgram makeAwk();
SuiteProgram makeBison();
SuiteProgram makeCholesky();
SuiteProgram makeGs();
SuiteProgram makeMpeg();
SuiteProgram makeWater();

} // namespace sest

#endif // SUITE_SUITE_H

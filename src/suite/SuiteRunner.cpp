//===- suite/SuiteRunner.cpp - Compile & profile suite programs ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "suite/SuiteRunner.h"

#include "obs/Telemetry.h"
#include "support/Json.h"

#include <chrono>

using namespace sest;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

} // namespace

CompiledSuiteProgram sest::compileProgramOnly(const SuiteProgram &Program) {
  obs::ScopedPhase Phase("suite.compile", Program.Name);
  Clock::time_point Start = Clock::now();
  CompiledSuiteProgram Out;
  Out.Spec = &Program;
  Out.Ctx = std::make_unique<AstContext>();
  DiagnosticEngine Diags;
  if (!parseAndAnalyze(Program.Source, *Out.Ctx, Diags)) {
    Out.Error = Program.Name + ": compile error:\n" + Diags.str();
    return Out;
  }
  Out.Cfgs = std::make_unique<CfgModule>(
      CfgModule::build(Out.Ctx->unit(), Diags));
  if (Diags.hasErrors()) {
    Out.Error = Program.Name + ": CFG error:\n" + Diags.str();
    return Out;
  }
  Out.CG = std::make_unique<CallGraph>(
      CallGraph::build(Out.Ctx->unit(), *Out.Cfgs));
  Out.Ok = true;
  Out.CompileMs = msSince(Start);
  return Out;
}

CompiledSuiteProgram
sest::compileAndProfileProgram(const SuiteProgram &Program,
                               const InterpOptions &Options) {
  obs::ScopedPhase Phase("suite.program", Program.Name);
  CompiledSuiteProgram Out = compileProgramOnly(Program);
  if (!Out.Ok)
    return Out;

  for (const ProgramInput &Input : Program.Inputs) {
    Clock::time_point Start = Clock::now();
    RunResult R = runProgram(Out.unit(), *Out.Cfgs, Input, Options);
    SuiteRunStats Stats;
    Stats.InputName = Input.Name;
    Stats.WallMs = msSince(Start);
    Stats.Steps = R.StepsExecuted;
    Stats.Cycles = R.TheProfile.TotalCycles;
    Stats.HeapCellsHighWater = R.HeapCellsHighWater;
    Stats.CallDepthHighWater = R.CallDepthHighWater;
    Stats.ExitCode = R.ExitCode;
    Out.RunStats.push_back(std::move(Stats));
    if (!R.Ok) {
      Out.Ok = false;
      Out.Error = Program.Name + " on input '" + Input.Name +
                  "': " + R.Error;
      return Out;
    }
    R.TheProfile.ProgramName = Program.Name;
    Out.Profiles.push_back(std::move(R.TheProfile));
  }
  return Out;
}

std::vector<CompiledSuiteProgram>
sest::compileAndProfileSuite(const InterpOptions &Options) {
  obs::ScopedPhase Phase("suite.run");
  std::vector<CompiledSuiteProgram> Out;
  for (const SuiteProgram &P : benchmarkSuite())
    Out.push_back(compileAndProfileProgram(P, Options));
  return Out;
}

std::string
sest::suiteReportJson(const std::vector<CompiledSuiteProgram> &Programs) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", "sest-suite-report/1");

  unsigned NumOk = 0, NumRuns = 0;
  double TotalWallMs = 0.0, TotalCompileMs = 0.0;
  uint64_t TotalSteps = 0;

  W.key("programs");
  W.beginArray();
  for (const CompiledSuiteProgram &P : Programs) {
    W.beginObject();
    W.member("name", P.Spec ? P.Spec->Name : "");
    W.member("ok", P.Ok);
    if (!P.Ok)
      W.member("error", P.Error);
    W.member("compile_ms", P.CompileMs);
    if (P.Ctx) {
      W.member("functions",
               static_cast<uint64_t>(P.unit().Functions.size()));
      if (P.Cfgs) {
        uint64_t Blocks = 0;
        for (const auto &[F, G] : P.Cfgs->all())
          Blocks += G->size();
        W.member("blocks", Blocks);
      }
    }
    W.key("runs");
    W.beginArray();
    for (const SuiteRunStats &S : P.RunStats) {
      W.beginObject();
      W.member("input", S.InputName);
      W.member("wall_ms", S.WallMs);
      W.member("steps", S.Steps);
      W.member("cycles", S.Cycles);
      W.member("heap_cells_high_water", S.HeapCellsHighWater);
      W.member("call_depth_high_water",
               static_cast<uint64_t>(S.CallDepthHighWater));
      W.member("exit_code", S.ExitCode);
      W.endObject();
      ++NumRuns;
      TotalWallMs += S.WallMs;
      TotalSteps += S.Steps;
    }
    W.endArray();
    W.endObject();
    if (P.Ok)
      ++NumOk;
    TotalCompileMs += P.CompileMs;
  }
  W.endArray();

  W.key("totals");
  W.beginObject();
  W.member("programs", static_cast<uint64_t>(Programs.size()));
  W.member("ok", static_cast<uint64_t>(NumOk));
  W.member("runs", static_cast<uint64_t>(NumRuns));
  W.member("compile_ms", TotalCompileMs);
  W.member("wall_ms", TotalWallMs);
  W.member("steps", TotalSteps);
  W.endObject();

  if (obs::Telemetry *T = obs::Telemetry::active()) {
    W.key("telemetry");
    T->writeReport(W);
  }

  W.endObject();
  assert(W.complete() && "unbalanced suite report document");
  return W.take();
}

//===- suite/SuiteRunner.cpp - Compile & profile suite programs ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "suite/SuiteRunner.h"

#include "interp/bytecode/BytecodeCompiler.h"
#include "interp/bytecode/BytecodeVM.h"
#include "obs/EventLog.h"
#include "obs/Telemetry.h"
#include "support/Hash.h"
#include "support/Json.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace sest;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Lowers a successfully compiled program to bytecode. The module is
/// read-only at run time, so every input (possibly on several threads)
/// executes against this one copy.
void prepareEngine(CompiledSuiteProgram &P, const InterpOptions &Options) {
  if (P.Ok && Options.Engine == InterpEngine::Bytecode)
    P.Bc = std::make_unique<bc::BcModule>(
        bc::compileBytecode(P.unit(), *P.Cfgs));
  if (P.Ok && Options.Engine == InterpEngine::Native) {
    P.Bc = std::make_unique<bc::BcModule>(
        bc::compileBytecode(P.unit(), *P.Cfgs));
    std::string Err;
    P.Native = backend::cBackend().compile(
        P.unit(), *P.Cfgs, *P.Bc, backend::planFromOptions(Options), &Err);
    if (!P.Native) {
      P.Ok = false;
      P.Error = P.Spec->Name + ": native compile failed: " + Err;
    }
  }
}

/// One timed input execution on whichever engine was prepared.
struct RunOutcome {
  RunResult R;
  double WallMs = 0.0;
};

RunOutcome timedRun(const CompiledSuiteProgram &P, const ProgramInput &Input,
                    const InterpOptions &Options) {
  Clock::time_point Start = Clock::now();
  RunOutcome O;
  O.R = P.Native ? P.Native->run(P.unit(), *P.Cfgs, Input, Options)
        : P.Bc   ? bc::runProgramBytecode(P.unit(), *P.Cfgs, *P.Bc, Input,
                                          Options)
                 : runProgram(P.unit(), *P.Cfgs, Input, Options);
  O.WallMs = msSince(Start);
  return O;
}

/// Folds one run into its program's stats/profiles. Returns false when
/// the run failed — the program's remaining inputs must be discarded.
bool absorbRun(CompiledSuiteProgram &Out, const ProgramInput &Input,
               RunOutcome O) {
  SuiteRunStats Stats;
  Stats.InputName = Input.Name;
  Stats.WallMs = O.WallMs;
  Stats.Steps = O.R.StepsExecuted;
  Stats.Cycles = O.R.TheProfile.TotalCycles;
  Stats.HeapCellsHighWater = O.R.HeapCellsHighWater;
  Stats.CallDepthHighWater = O.R.CallDepthHighWater;
  Stats.ExitCode = O.R.ExitCode;
  Out.RunStats.push_back(std::move(Stats));
  if (!O.R.Ok) {
    Out.Ok = false;
    Out.Error = Out.Spec->Name + " on input '" + Input.Name +
                "': " + O.R.Error;
    return false;
  }
  O.R.TheProfile.ProgramName = Out.Spec->Name;
  Out.Profiles.push_back(std::move(O.R.TheProfile));
  return true;
}

} // namespace

CompiledSuiteProgram sest::compileProgramOnly(const SuiteProgram &Program) {
  obs::ScopedPhase Phase("suite.compile", Program.Name);
  Clock::time_point Start = Clock::now();
  CompiledSuiteProgram Out;
  Out.Spec = &Program;
  Out.Ctx = std::make_unique<AstContext>();
  DiagnosticEngine Diags;
  if (!parseAndAnalyze(Program.Source, *Out.Ctx, Diags)) {
    Out.Error = Program.Name + ": compile error:\n" + Diags.str();
    return Out;
  }
  Out.Cfgs = std::make_unique<CfgModule>(
      CfgModule::build(Out.Ctx->unit(), Diags));
  if (Diags.hasErrors()) {
    Out.Error = Program.Name + ": CFG error:\n" + Diags.str();
    return Out;
  }
  Out.CG = std::make_unique<CallGraph>(
      CallGraph::build(Out.Ctx->unit(), *Out.Cfgs));
  obs::gaugeMax("frontend.arena.bytes.high_water",
                static_cast<double>(Out.Ctx->arenaBytes()));
  Out.Ok = true;
  Out.CompileMs = msSince(Start);
  return Out;
}

CompiledSuiteProgram
sest::compileAndProfileProgram(const SuiteProgram &Program,
                               const InterpOptions &Options) {
  obs::ScopedPhase Phase("suite.program", Program.Name);
  CompiledSuiteProgram Out = compileProgramOnly(Program);
  prepareEngine(Out, Options);
  if (!Out.Ok)
    return Out;

  for (const ProgramInput &Input : Program.Inputs)
    if (!absorbRun(Out, Input, timedRun(Out, Input, Options)))
      break;
  return Out;
}

std::vector<CompiledSuiteProgram>
sest::compileAndProfileSuite(const InterpOptions &Options, unsigned Jobs) {
  obs::ScopedPhase Phase("suite.run");

  // Compile (and lower) every program once, up front and serially —
  // compilation is a sliver of the suite's wall time.
  std::vector<CompiledSuiteProgram> Out;
  for (const SuiteProgram &P : benchmarkSuite()) {
    obs::ScopedPhase ProgPhase("suite.program", P.Name);
    Out.push_back(compileProgramOnly(P));
    prepareEngine(Out.back(), Options);
  }

  // Fan the (program, input) runs out over a small thread pool. Every
  // run collects into private per-task contexts (TaskCapture) so worker
  // threads never touch the ambient ones; each worker gets its own
  // trace track so --trace shows real per-worker timelines.
  struct Task {
    size_t Prog;
    const ProgramInput *Input;
  };
  std::vector<Task> Tasks;
  for (size_t I = 0; I < Out.size(); ++I)
    if (Out[I].Ok)
      for (const ProgramInput &Input : Out[I].Spec->Inputs)
        Tasks.push_back({I, &Input});

  std::vector<RunOutcome> Results(Tasks.size());
  obs::TaskCapture Cap;
  std::vector<obs::TaskCapture::Slot> Slots(Tasks.size());

  auto RunTask = [&](size_t I, uint32_t Track,
                     std::string_view TrackName) {
    Cap.run(Slots[I], Track, TrackName, [&] {
      obs::ScopedPhase TaskPhase("suite.task",
                                 Out[Tasks[I].Prog].Spec->Name + "/" +
                                     Tasks[I].Input->Name);
      Results[I] = timedRun(Out[Tasks[I].Prog], *Tasks[I].Input, Options);
      // Worker busy time: the _us suffix marks it timing-valued, so the
      // serial/parallel counter-equality contract skips its value.
      obs::counterAdd("suite.pool.busy_us", Results[I].WallMs * 1000.0);
      obs::histRecord("suite.pool.task_us", Results[I].WallMs * 1000.0);
    });
  };

  if (Jobs == 0)
    Jobs = std::max(1u, std::thread::hardware_concurrency());
  // Pool shape metrics, emitted identically by the serial and parallel
  // paths (only the worker gauge value differs; gauges are not part of
  // the serial/parallel equality contract).
  obs::counterAdd("suite.pool.tasks", static_cast<double>(Tasks.size()));
  obs::gaugeMax("suite.pool.queue_depth.high_water",
                static_cast<double>(Tasks.size()));
  if (Jobs <= 1 || Tasks.size() <= 1) {
    obs::gaugeMax("suite.pool.workers", 1.0);
    // Serial: run on the spawning thread, keeping the main trace track.
    for (size_t I = 0; I < Tasks.size(); ++I)
      RunTask(I, 0, {});
  } else {
    unsigned N = std::min<size_t>(Jobs, Tasks.size());
    obs::gaugeMax("suite.pool.workers", static_cast<double>(N));
    std::atomic<size_t> Next{0};
    auto Worker = [&](uint32_t Track) {
      std::string Name = "worker-" + std::to_string(Track);
      for (size_t I; (I = Next.fetch_add(1)) < Tasks.size();)
        RunTask(I, Track, Name);
    };
    std::vector<std::thread> Pool;
    Pool.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Pool.emplace_back(Worker, I + 1);
    for (std::thread &T : Pool)
      T.join();
  }

  // Fold results back in input order. A failing input ends its program
  // exactly like a serial run: later inputs' results and telemetry are
  // dropped, so the report is independent of the job count.
  for (size_t I = 0; I < Tasks.size(); ++I) {
    CompiledSuiteProgram &P = Out[Tasks[I].Prog];
    if (!P.Ok)
      continue;
    Cap.merge(Slots[I]);
    absorbRun(P, *Tasks[I].Input, std::move(Results[I]));
  }
  return Out;
}

std::vector<obs::AccuracyReport>
sest::computeSuiteAccuracy(const std::vector<CompiledSuiteProgram> &Programs,
                           const EstimatorOptions &EstOpts, unsigned Jobs) {
  obs::ScopedPhase Phase("suite.accuracy");

  std::vector<const CompiledSuiteProgram *> Scored;
  for (const CompiledSuiteProgram &P : Programs)
    if (P.Ok && !P.Profiles.empty())
      Scored.push_back(&P);

  // Estimation + attribution for one program. Parallelism is across
  // programs, so each estimate itself runs serially (nested pools would
  // oversubscribe without helping wall time).
  EstimatorOptions InnerOpts = EstOpts;
  InnerOpts.Jobs = 1;
  auto ScoreOne = [&](const CompiledSuiteProgram &P) -> obs::AccuracyReport {
    Profile Aggregate = aggregateProfiles(P.Profiles);
    Aggregate.ProgramName = P.Spec->Name;
    Aggregate.InputName =
        "aggregate(" + std::to_string(P.Profiles.size()) + ")";
    ProgramEstimate Estimate =
        estimateProgram(P.unit(), *P.Cfgs, *P.CG, InnerOpts);
    obs::AccuracyReport Rep = obs::computeAccuracy(
        P.unit(), *P.Cfgs, *P.CG, Estimate, Aggregate, InnerOpts);
    Rep.ProgramHash = hashHex(contentHash64(P.Spec->Source));
    return Rep;
  };

  if (Jobs == 0)
    Jobs = std::max(1u, std::thread::hardware_concurrency());
  std::vector<obs::AccuracyReport> Reports(Scored.size());
  if (Jobs <= 1 || Scored.size() <= 1) {
    for (size_t I = 0; I < Scored.size(); ++I)
      Reports[I] = ScoreOne(*Scored[I]);
    return Reports;
  }

  // Per-program private contexts (telemetry on a per-worker trace
  // track, plus the decision log), merged back in program order: the
  // report (and any embedded telemetry or logged decisions) is
  // identical for every Jobs. With no ambient context TaskCapture
  // skips the private contexts so parallelism costs nothing extra.
  obs::TaskCapture Cap;
  std::vector<obs::TaskCapture::Slot> Slots(Scored.size());
  std::atomic<size_t> Next{0};
  auto Worker = [&](uint32_t Track) {
    std::string Name = "worker-" + std::to_string(Track);
    for (size_t I; (I = Next.fetch_add(1)) < Scored.size();)
      Cap.run(Slots[I], Track, Name,
              [&] { Reports[I] = ScoreOne(*Scored[I]); });
  };
  std::vector<std::thread> Pool;
  unsigned N = std::min<size_t>(Jobs, Scored.size());
  Pool.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Pool.emplace_back(Worker, I + 1);
  for (std::thread &T : Pool)
    T.join();
  for (obs::TaskCapture::Slot &S : Slots)
    Cap.merge(S);
  return Reports;
}

std::string sest::suiteAccuracyReportJson(
    const std::vector<CompiledSuiteProgram> &Programs, size_t MaxEntities,
    unsigned Jobs) {
  return obs::accuracyReportJson(
      computeSuiteAccuracy(Programs, {}, Jobs), MaxEntities);
}

std::string
sest::suiteReportJson(const std::vector<CompiledSuiteProgram> &Programs,
                      InterpEngine Engine, unsigned Jobs) {
  std::vector<obs::AccuracyReport> Accuracy =
      computeSuiteAccuracy(Programs, {}, Jobs);
  auto AccuracyFor = [&](const CompiledSuiteProgram &P)
      -> const obs::AccuracyReport * {
    if (!P.Spec)
      return nullptr;
    for (const obs::AccuracyReport &R : Accuracy)
      if (R.Program == P.Spec->Name)
        return &R;
    return nullptr;
  };

  JsonWriter W;
  W.beginObject();
  W.member("schema", "sest-suite-report/4");
  W.member("engine", interpEngineName(Engine));

  unsigned NumOk = 0, NumRuns = 0;
  double TotalWallMs = 0.0, TotalCompileMs = 0.0;
  uint64_t TotalSteps = 0;

  W.key("programs");
  W.beginArray();
  for (const CompiledSuiteProgram &P : Programs) {
    W.beginObject();
    W.member("name", P.Spec ? P.Spec->Name : "");
    W.member("ok", P.Ok);
    if (!P.Ok)
      W.member("error", P.Error);
    W.member("compile_ms", P.CompileMs);
    if (const obs::AccuracyReport *R = AccuracyFor(P)) {
      W.key("accuracy");
      W.beginObject();
      W.member("profile", R->ProfileName);
      W.member("block_score", R->Blocks.Score);
      W.member("function_score", R->Functions.Score);
      W.member("call_site_score", R->CallSites.Score);
      W.member("intra_score", R->IntraScore);
      W.member("branch_miss_rate", R->Miss.rate());
      W.endObject();
    }
    if (P.Ctx) {
      W.member("functions",
               static_cast<uint64_t>(P.unit().Functions.size()));
      if (P.Cfgs) {
        uint64_t Blocks = 0;
        for (const auto &[F, G] : P.Cfgs->all())
          Blocks += G->size();
        W.member("blocks", Blocks);
      }
    }
    W.key("runs");
    W.beginArray();
    for (const SuiteRunStats &S : P.RunStats) {
      W.beginObject();
      W.member("input", S.InputName);
      W.member("wall_ms", S.WallMs);
      W.member("steps", S.Steps);
      W.member("cycles", S.Cycles);
      W.member("heap_cells_high_water", S.HeapCellsHighWater);
      W.member("call_depth_high_water",
               static_cast<uint64_t>(S.CallDepthHighWater));
      W.member("exit_code", S.ExitCode);
      W.endObject();
      ++NumRuns;
      TotalWallMs += S.WallMs;
      TotalSteps += S.Steps;
    }
    W.endArray();
    W.endObject();
    if (P.Ok)
      ++NumOk;
    TotalCompileMs += P.CompileMs;
  }
  W.endArray();

  W.key("totals");
  W.beginObject();
  W.member("programs", static_cast<uint64_t>(Programs.size()));
  W.member("ok", static_cast<uint64_t>(NumOk));
  W.member("runs", static_cast<uint64_t>(NumRuns));
  W.member("compile_ms", TotalCompileMs);
  W.member("wall_ms", TotalWallMs);
  W.member("steps", TotalSteps);
  if (!Accuracy.empty()) {
    double Block = 0, Function = 0, CallSite = 0, Intra = 0, Miss = 0;
    for (const obs::AccuracyReport &R : Accuracy) {
      Block += R.Blocks.Score;
      Function += R.Functions.Score;
      CallSite += R.CallSites.Score;
      Intra += R.IntraScore;
      Miss += R.Miss.rate();
    }
    double N = static_cast<double>(Accuracy.size());
    W.key("accuracy_means");
    W.beginObject();
    W.member("programs", static_cast<uint64_t>(Accuracy.size()));
    W.member("block_score", Block / N);
    W.member("function_score", Function / N);
    W.member("call_site_score", CallSite / N);
    W.member("intra_score", Intra / N);
    W.member("branch_miss_rate", Miss / N);
    W.endObject();
  }
  W.endObject();

  if (obs::Telemetry *T = obs::Telemetry::active()) {
    W.key("telemetry");
    T->writeReport(W);
  }

  W.endObject();
  assert(W.complete() && "unbalanced suite report document");
  return W.take();
}

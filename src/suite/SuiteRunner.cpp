//===- suite/SuiteRunner.cpp - Compile & profile suite programs ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "suite/SuiteRunner.h"

using namespace sest;

CompiledSuiteProgram sest::compileProgramOnly(const SuiteProgram &Program) {
  CompiledSuiteProgram Out;
  Out.Spec = &Program;
  Out.Ctx = std::make_unique<AstContext>();
  DiagnosticEngine Diags;
  if (!parseAndAnalyze(Program.Source, *Out.Ctx, Diags)) {
    Out.Error = Program.Name + ": compile error:\n" + Diags.str();
    return Out;
  }
  Out.Cfgs = std::make_unique<CfgModule>(
      CfgModule::build(Out.Ctx->unit(), Diags));
  if (Diags.hasErrors()) {
    Out.Error = Program.Name + ": CFG error:\n" + Diags.str();
    return Out;
  }
  Out.CG = std::make_unique<CallGraph>(
      CallGraph::build(Out.Ctx->unit(), *Out.Cfgs));
  Out.Ok = true;
  return Out;
}

CompiledSuiteProgram
sest::compileAndProfileProgram(const SuiteProgram &Program,
                               const InterpOptions &Options) {
  CompiledSuiteProgram Out = compileProgramOnly(Program);
  if (!Out.Ok)
    return Out;

  for (const ProgramInput &Input : Program.Inputs) {
    RunResult R = runProgram(Out.unit(), *Out.Cfgs, Input, Options);
    if (!R.Ok) {
      Out.Ok = false;
      Out.Error = Program.Name + " on input '" + Input.Name +
                  "': " + R.Error;
      return Out;
    }
    R.TheProfile.ProgramName = Program.Name;
    Out.Profiles.push_back(std::move(R.TheProfile));
  }
  return Out;
}

std::vector<CompiledSuiteProgram>
sest::compileAndProfileSuite(const InterpOptions &Options) {
  std::vector<CompiledSuiteProgram> Out;
  for (const SuiteProgram &P : benchmarkSuite())
    Out.push_back(compileAndProfileProgram(P, Options));
  return Out;
}

//===- suite/SuiteRunner.h - Compile & profile suite programs ---*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives one suite program through the whole substrate: compile (lex /
/// parse / sema), build CFGs and the call graph, and execute every input
/// collecting profiles — the "instrument and run on several inputs" leg
/// of the paper's methodology (§2, §3).
///
//===----------------------------------------------------------------------===//

#ifndef SUITE_SUITERUNNER_H
#define SUITE_SUITERUNNER_H

#include "backend/Native.h"
#include "callgraph/CallGraph.h"
#include "cfg/Cfg.h"
#include "interp/Interp.h"
#include "interp/bytecode/Bytecode.h"
#include "lang/Parser.h"
#include "obs/Accuracy.h"
#include "profile/Profile.h"
#include "suite/Suite.h"

#include <memory>
#include <string>
#include <vector>

namespace sest {

/// Timing and resource usage of one profiled input run.
struct SuiteRunStats {
  std::string InputName;
  double WallMs = 0.0;             ///< Wall time of the interpreter run.
  uint64_t Steps = 0;              ///< Evaluation steps executed.
  double Cycles = 0.0;             ///< Cost-model cycles (Profile.TotalCycles).
  int64_t HeapCellsHighWater = 0;  ///< Peak live heap cells.
  unsigned CallDepthHighWater = 0; ///< Peak mini-C call depth.
  int64_t ExitCode = 0;
};

/// A suite program compiled and profiled on all its inputs.
struct CompiledSuiteProgram {
  const SuiteProgram *Spec = nullptr;
  std::unique_ptr<AstContext> Ctx;
  std::unique_ptr<CfgModule> Cfgs;
  std::unique_ptr<CallGraph> CG;
  /// The program lowered to bytecode, compiled once and shared (it is
  /// read-only at run time) by every input run — including concurrent
  /// ones. Null when the AST engine is selected.
  std::unique_ptr<bc::BcModule> Bc;
  /// The loaded native artifact (shared object) when the native engine
  /// is selected: compiled once per (program, layout plan) and shared by
  /// every input run, concurrent ones included (run state lives in the
  /// callee). Null for the interpreter engines.
  std::shared_ptr<const backend::NativeArtifact> Native;
  /// One profile per input, in input order.
  std::vector<Profile> Profiles;
  /// Wall time / usage per input, parallel to Profiles.
  std::vector<SuiteRunStats> RunStats;
  /// Wall time of compile + CFG + call-graph construction.
  double CompileMs = 0.0;

  bool Ok = false;
  std::string Error;

  const TranslationUnit &unit() const { return Ctx->unit(); }
};

/// Compiles \p Program and runs every input. On any compile or runtime
/// error, \c Ok is false and \c Error says what failed.
CompiledSuiteProgram
compileAndProfileProgram(const SuiteProgram &Program,
                         const InterpOptions &Options = {});

/// Compiles only (no execution) — used by analysis-time benchmarks.
CompiledSuiteProgram compileProgramOnly(const SuiteProgram &Program);

/// Compiles and profiles the entire suite (in Table 1 order). Programs
/// that fail are still present with Ok == false.
///
/// Each program is compiled (and lowered to bytecode) once; the
/// (program, input) runs are then executed by a pool of \p Jobs worker
/// threads (0 = hardware_concurrency). Every run collects into its own
/// Telemetry context; the contexts are merged into the ambient one in
/// input order, and a program's inputs after its first failing one are
/// discarded, so results and telemetry are identical to a serial run
/// regardless of the job count.
std::vector<CompiledSuiteProgram>
compileAndProfileSuite(const InterpOptions &Options = {}, unsigned Jobs = 0);

/// Renders compiled-suite results as the machine-readable
/// suite_report.json document (per-program compile time, per-input wall
/// time and resource usage, suite totals, and per-program accuracy
/// summaries under "accuracy"). When a telemetry context is installed on
/// this thread its full report is embedded under "telemetry". \p Engine
/// names the interpreter tier that produced the runs. The embedded
/// accuracy summaries are computed by \p Jobs worker threads (see
/// computeSuiteAccuracy).
std::string
suiteReportJson(const std::vector<CompiledSuiteProgram> &Programs,
                InterpEngine Engine = InterpEngine::Bytecode,
                unsigned Jobs = 1);

/// Scores the default estimator configuration (or \p EstOpts) on every
/// profiled suite program: each program's estimate is attributed against
/// the aggregate of all its input profiles (ProfileName "aggregate(N)").
/// Programs with Ok == false or no profiles are skipped.
///
/// The per-program estimation + attribution passes are fanned out over
/// \p Jobs worker threads (1 = serial, 0 = hardware_concurrency), each
/// collecting into a private Telemetry context merged back in program
/// order. Profiles are bit-identical across engines and job counts, and
/// the attribution uses no wall-clock inputs, so reports and telemetry
/// are identical for every job count.
std::vector<obs::AccuracyReport>
computeSuiteAccuracy(const std::vector<CompiledSuiteProgram> &Programs,
                     const EstimatorOptions &EstOpts = {},
                     unsigned Jobs = 1);

/// The full sest-accuracy-report/1 document over the suite, with each
/// family capped to its worst \p MaxEntities divergence records (the
/// checked-in bench/accuracy_report.json baseline shape). \p Jobs as in
/// computeSuiteAccuracy.
std::string
suiteAccuracyReportJson(const std::vector<CompiledSuiteProgram> &Programs,
                        size_t MaxEntities = 20, unsigned Jobs = 1);

} // namespace sest

#endif // SUITE_SUITERUNNER_H

//===- suite/Synthetic.cpp - Synthetic mini-C program generator ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "suite/Synthetic.h"

#include "support/Prng.h"

#include <algorithm>
#include <vector>

using namespace sest;

namespace {

/// Source builder plus the running CFG-block estimate that drives the
/// TargetBlocks budget. The estimate uses coarse per-construct costs
/// (loop = 3 blocks, if/else = 3, case = 1, goto segment = 2); it only
/// needs to be proportional, not exact.
struct Gen {
  std::string Out;
  Prng R;
  size_t Blocks = 0;
  int NextFn = 0;

  explicit Gen(uint64_t Seed) : R(Seed) {}

  void line(int Indent, const std::string &S) {
    Out.append(static_cast<size_t>(Indent) * 2, ' ');
    Out += S;
    Out += '\n';
  }
};

std::string num(uint64_t V) { return std::to_string(V); }

/// Serial counted loop nests with embedded two-way branches. Each nest
/// is its own chain of small cyclic SCCs (one per loop level).
std::string emitLoopNestFn(Gen &G, size_t Budget) {
  std::string Name = "fn" + num(G.NextFn++);
  int MaxDepth = 2 + static_cast<int>(G.R.nextBelow(3)); // 2..4
  G.line(0, "int " + Name + "(int n) {");
  G.line(1, "int acc = 0;");
  for (int D = 0; D < MaxDepth; ++D)
    G.line(1, "int i" + num(D) + ";");
  size_t Used = 2;
  while (Used < Budget) {
    int Depth = 1 + static_cast<int>(G.R.nextBelow(MaxDepth));
    for (int D = 0; D < Depth; ++D) {
      std::string V = "i" + num(D);
      std::string Bound = D == 0 ? "n" : num(2 + G.R.nextBelow(3));
      G.line(1 + D, "for (" + V + " = 0; " + V + " < " + Bound + "; " +
                        V + "++) {");
    }
    uint64_t Mod = 2 + G.R.nextBelow(4);
    G.line(1 + Depth, "if ((acc + i0 * 2) % " + num(Mod) + " == 0)");
    G.line(2 + Depth, "acc = acc + " + num(1 + G.R.nextBelow(5)) + ";");
    G.line(1 + Depth, "else");
    G.line(2 + Depth, "acc = acc - 1;");
    for (int D = Depth - 1; D >= 0; --D)
      G.line(1 + D, "}");
    Used += static_cast<size_t>(Depth) * 3 + 3;
  }
  G.line(1, "return acc;");
  G.line(0, "}");
  G.Out += '\n';
  G.Blocks += Used + 2;
  return Name;
}

/// Interpreter-style dispatch: a while loop around a big switch whose
/// cases rewrite the state. Every case lives in the loop's SCC, so each
/// dispatch loop is one wide cyclic component; case width is capped so
/// the dense sub-blocks the sparse solver carves out stay moderate.
std::string emitSwitchDispatchFn(Gen &G, size_t Budget) {
  std::string Name = "fn" + num(G.NextFn++);
  G.line(0, "int " + Name + "(int n) {");
  G.line(1, "int state = 0;");
  G.line(1, "int acc = 0;");
  G.line(1, "int step = 0;");
  size_t Used = 3;
  while (Used < Budget) {
    size_t Cases = std::min<size_t>(
        std::max<size_t>(8, (Budget - Used) / 2), 64);
    G.line(1, "while (step < n * 4) {");
    G.line(2, "switch (state % " + num(Cases) + ") {");
    for (size_t C = 0; C < Cases; ++C) {
      G.line(2, "case " + num(C) + ":");
      if (G.R.nextBelow(3) == 0) {
        G.line(3, "if (acc % 2 == 0)");
        G.line(4, "acc = acc + " + num(1 + C % 7) + ";");
        Used += 3;
      } else {
        G.line(3, "acc = acc + " + num(1 + C % 5) + ";");
      }
      G.line(3, "state = " + num(G.R.nextBelow(Cases * 2)) + " + step;");
      G.line(3, "break;");
      Used += 1;
    }
    G.line(2, "default:");
    G.line(3, "state = acc % " + num(Cases) + ";");
    G.line(3, "break;");
    G.line(2, "}");
    G.line(2, "step++;");
    G.line(1, "}");
    Used += 6;
  }
  G.line(1, "return acc;");
  G.line(0, "}");
  G.Out += '\n';
  G.Blocks += Used + 2;
  return Name;
}

/// Label/goto soup. Segments fall through in order; each may jump
/// backward (bounded window, guarded by the strictly-increasing budget
/// counter, so every cycle terminates) or forward. The entry jump lands
/// mid-sequence — together with backward jumps that is the classic
/// irreducible region no structured construct produces.
std::string emitGotoCyclesFn(Gen &G, size_t Budget) {
  // Each segment collapses into a single block (statements + the
  // conditional jump), so segments ≈ blocks.
  std::string Name = "fn" + num(G.NextFn++);
  size_t K = std::max<size_t>(4, Budget);
  G.line(0, "int " + Name + "(int n) {");
  G.line(1, "int i = 0;");
  G.line(1, "int acc = 0;");
  G.line(1, "if (n % 3 == 1)");
  G.line(2, "goto L" + num(K / 2) + ";");
  for (size_t J = 0; J < K; ++J) {
    G.line(0, "L" + num(J) + ":");
    G.line(1, "i++;");
    G.line(1, "acc = acc + (i % " + num(2 + J % 5) + ");");
    // Backward within a small window keeps SCCs real but bounded;
    // forward jumps skip ahead without creating cycles.
    size_t Lo = J > 6 ? J - 6 : 0;
    size_t Hi = std::min(K - 1, J + 9);
    size_t Target = Lo + G.R.nextBelow(Hi - Lo + 1);
    G.line(1, "if (i < n)");
    G.line(2, "goto L" + num(Target) + ";");
  }
  G.line(1, "return acc;");
  G.line(0, "}");
  G.Out += '\n';
  G.Blocks += K + 4;
  return Name;
}

/// Leaf functions under fan-out callers, plus one mutually recursive
/// pair — a wide, cyclic call graph for the inter-procedural model.
/// Returns the caller functions (the leaves are only reached through
/// them).
std::vector<std::string> emitWideCallsFns(Gen &G, size_t Budget) {
  std::vector<std::string> Roots;
  int Tag = G.NextFn++;
  size_t NumLeaves = std::max<size_t>(4, Budget / 8);
  std::vector<std::string> Leaves;
  for (size_t L = 0; L < NumLeaves; ++L) {
    std::string Name = "leaf" + num(Tag) + "_" + num(L);
    Leaves.push_back(Name);
    G.line(0, "int " + Name + "(int x) {");
    G.line(1, "if (x % " + num(2 + L % 3) + " == 0)");
    G.line(2, "return x / 2 + " + num(L) + ";");
    G.line(1, "return x * 3 - " + num(L % 11) + ";");
    G.line(0, "}");
    G.Blocks += 4;
  }
  G.Out += '\n';

  // A mutually recursive pair: a call-graph SCC the §5.2.2 repair
  // ladder has to handle.
  std::string Odd = "odd" + num(Tag), Even = "even" + num(Tag);
  G.line(0, "int " + Odd + "(int n);");
  G.line(0, "int " + Even + "(int n) {");
  G.line(1, "if (n <= 0)");
  G.line(2, "return 1;");
  G.line(1, "return " + Odd + "(n - 1);");
  G.line(0, "}");
  G.line(0, "int " + Odd + "(int n) {");
  G.line(1, "if (n <= 0)");
  G.line(2, "return 0;");
  G.line(1, "return " + Even + "(n - 1);");
  G.line(0, "}");
  G.Out += '\n';
  G.Blocks += 8;

  size_t NumMids = std::max<size_t>(2, NumLeaves / 8);
  for (size_t M = 0; M < NumMids; ++M) {
    std::string Name = "mid" + num(Tag) + "_" + num(M);
    Roots.push_back(Name);
    G.line(0, "int " + Name + "(int n) {");
    G.line(1, "int s = 0;");
    G.line(1, "int k;");
    G.line(1, "for (k = 0; k < n; k++) {");
    size_t Fan = 4 + G.R.nextBelow(5);
    for (size_t F = 0; F < Fan; ++F) {
      const std::string &Callee = Leaves[G.R.nextBelow(Leaves.size())];
      G.line(2, "s = s + " + Callee + "(k + " + num(F) + ");");
    }
    G.line(2, "s = s + " + Even + "(k % 5);");
    G.line(1, "}");
    G.line(1, "return s;");
    G.line(0, "}");
    G.Out += '\n';
    G.Blocks += 5 + Fan;
  }
  return Roots;
}

/// Emits one function (or function family) of roughly \p Budget blocks
/// in the given shape, appending every generated root to \p Roots.
void emitShape(Gen &G, SyntheticShape S, size_t Budget,
               std::vector<std::string> &Roots) {
  switch (S) {
  case SyntheticShape::LoopNest:
    Roots.push_back(emitLoopNestFn(G, Budget));
    break;
  case SyntheticShape::SwitchDispatch:
    Roots.push_back(emitSwitchDispatchFn(G, Budget));
    break;
  case SyntheticShape::GotoCycles:
    Roots.push_back(emitGotoCyclesFn(G, Budget));
    break;
  case SyntheticShape::WideCalls: {
    std::vector<std::string> R = emitWideCallsFns(G, Budget);
    Roots.insert(Roots.end(), R.begin(), R.end());
    break;
  }
  case SyntheticShape::Mixed:
    break; // handled by the caller's round-robin
  }
}

} // namespace

const char *sest::syntheticShapeName(SyntheticShape S) {
  switch (S) {
  case SyntheticShape::LoopNest:
    return "loop-nest";
  case SyntheticShape::SwitchDispatch:
    return "switch-dispatch";
  case SyntheticShape::GotoCycles:
    return "goto-cycles";
  case SyntheticShape::WideCalls:
    return "wide-calls";
  case SyntheticShape::Mixed:
    return "mixed";
  }
  return "?";
}

bool sest::parseSyntheticShape(const std::string &Name,
                               SyntheticShape &Out) {
  for (SyntheticShape S :
       {SyntheticShape::LoopNest, SyntheticShape::SwitchDispatch,
        SyntheticShape::GotoCycles, SyntheticShape::WideCalls,
        SyntheticShape::Mixed}) {
    if (Name == syntheticShapeName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

std::string sest::generateSyntheticSource(const SyntheticConfig &Config) {
  Gen G(Config.Seed);
  G.line(0, std::string("/* synthetic ") +
                syntheticShapeName(Config.Shape) + " program: ~" +
                num(Config.TargetBlocks) + " CFG blocks, seed " +
                num(Config.Seed) + " (generated; do not edit) */");
  G.Out += '\n';

  const SyntheticShape RoundRobin[] = {
      SyntheticShape::LoopNest, SyntheticShape::SwitchDispatch,
      SyntheticShape::GotoCycles, SyntheticShape::WideCalls};
  std::vector<std::string> Roots;
  size_t Pick = 0;
  while (G.Blocks < Config.TargetBlocks) {
    size_t Budget =
        Config.FunctionBlocks
            ? Config.FunctionBlocks
            : 20 + G.R.nextBelow(40);
    Budget = std::min(Budget,
                      Config.TargetBlocks - G.Blocks + 16);
    SyntheticShape S = Config.Shape == SyntheticShape::Mixed
                           ? RoundRobin[Pick++ % 4]
                           : Config.Shape;
    emitShape(G, S, Budget, Roots);
  }

  G.line(0, "int main() {");
  G.line(1, "int n = 4 + rand() % 5;");
  G.line(1, "int sum = 0;");
  for (const std::string &F : Roots)
    G.line(1, "sum = sum + " + F + "(n);");
  G.line(1, "print_int(sum);");
  G.line(1, "return 0;");
  G.line(0, "}");
  return G.Out;
}

SuiteProgram sest::makeSyntheticProgram(const SyntheticConfig &Config) {
  SuiteProgram P;
  P.Name = std::string("synthetic-") + syntheticShapeName(Config.Shape) +
           "-" + std::to_string(Config.TargetBlocks) + "-s" +
           std::to_string(Config.Seed);
  P.PaperAnalogue = "(synthetic)";
  P.Description = "generated scaling program";
  P.Source = generateSyntheticSource(Config);
  for (uint64_t I = 1; I <= 4; ++I)
    P.Inputs.push_back({"seed" + std::to_string(I), "", I});
  return P;
}

//===- suite/Synthetic.h - Synthetic mini-C program generator ---*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of synthetic mini-C programs for scaling
/// benchmarks and property tests. The hand-written suite tops out at a
/// few hundred CFG blocks per program; the solver-scaling story (sparse
/// SCC-structured vs dense Gaussian elimination) needs CFGs and call
/// graphs orders of magnitude larger, with the control-flow idioms that
/// stress each part of the solver:
///
///  - LoopNest:        deep counted loop nests with embedded branches
///                     (many small cyclic SCCs);
///  - SwitchDispatch:  big switch-in-a-loop interpreter dispatch (one
///                     wide SCC per dispatch loop);
///  - GotoCycles:      label/goto soup with backward jumps and jumps
///                     into loop bodies (irreducible SCCs no structured
///                     construct produces);
///  - WideCalls:       many small functions under fan-out callers plus
///                     mutually recursive pairs (wide, cyclic call
///                     graphs for the inter-procedural model);
///  - Mixed:           round-robin of all of the above.
///
/// Generated programs always parse, pass sema (every path returns), and
/// terminate when executed: loops are counter-bounded and every goto
/// cycle strictly increases a budget counter. Generation is a pure
/// function of the config — same config, same bytes, on every platform.
///
//===----------------------------------------------------------------------===//

#ifndef SUITE_SYNTHETIC_H
#define SUITE_SYNTHETIC_H

#include "suite/Suite.h"

#include <cstdint>
#include <string>

namespace sest {

/// Control-flow idiom the generated program is built from.
enum class SyntheticShape {
  LoopNest,
  SwitchDispatch,
  GotoCycles,
  WideCalls,
  Mixed,
};

/// CLI / table name ("loop-nest", "switch-dispatch", ...).
const char *syntheticShapeName(SyntheticShape S);

/// Parses a shape name; false when \p Name is unknown.
bool parseSyntheticShape(const std::string &Name, SyntheticShape &Out);

/// Knobs for one generated program.
struct SyntheticConfig {
  SyntheticShape Shape = SyntheticShape::Mixed;
  /// Approximate total CFG blocks across the whole program (the
  /// generator stops adding functions once it crosses this).
  size_t TargetBlocks = 200;
  /// Approximate CFG blocks per generated function — the dimension of
  /// each intra-procedural Markov solve. 0 picks varied small sizes;
  /// set it equal to TargetBlocks to concentrate everything in one
  /// giant CFG.
  size_t FunctionBlocks = 0;
  /// PRNG seed; every structural choice derives from it.
  uint64_t Seed = 1;
};

/// Renders the mini-C source text for \p Config.
std::string generateSyntheticSource(const SyntheticConfig &Config);

/// Wraps the generated source as a runnable SuiteProgram (named
/// "synthetic-<shape>-<blocks>-s<seed>") with four rand-seed inputs, so
/// it can go through the same compile/profile/estimate machinery as the
/// hand-written suite.
SuiteProgram makeSyntheticProgram(const SyntheticConfig &Config);

} // namespace sest

#endif // SUITE_SYNTHETIC_H

//===- suite/programs/Alvinn.cpp - Neural-net back-propagation ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for SPEC92 "alvinn" (back-propagation on a neural net): a
/// small MLP trained on synthetic patterns. Numerical code with simple
/// control flow whose only branches are long-running loops — the paper
/// notes alvinn's miss rates are "uniformly low (0.23%), because its only
/// branches are for loops that iterate many times".
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

using namespace sest;

namespace {

const char *Source = R"MC(
/* back-propagation training of an 8-12-4 multilayer perceptron */

double in_units[8];
double hid_units[12];
double out_units[4];
double target[4];

double w_ih[8][12];
double w_ho[12][4];
double delta_out[4];
double delta_hid[12];

double patterns[32][8];
double labels[32][4];
int n_patterns = 32;

double squash(double x) {
  /* fast sigmoid: 0.5 * x / (1 + |x|) + 0.5 */
  return 0.5 * x / (1.0 + fabs(x)) + 0.5;
}

double rand_unit() {
  return (rand() % 2000) / 1000.0 - 1.0;
}

void init_weights() {
  int i;
  int j;
  for (i = 0; i < 8; i++)
    for (j = 0; j < 12; j++)
      w_ih[i][j] = rand_unit() * 0.5;
  for (i = 0; i < 12; i++)
    for (j = 0; j < 4; j++)
      w_ho[i][j] = rand_unit() * 0.5;
}

void make_patterns() {
  int p;
  int i;
  int cls;
  for (p = 0; p < n_patterns; p++) {
    cls = p % 4;
    for (i = 0; i < 8; i++)
      patterns[p][i] = rand_unit() * 0.2 + ((i % 4 == cls) ? 0.8 : -0.8);
    for (i = 0; i < 4; i++)
      labels[p][i] = (i == cls) ? 0.9 : 0.1;
  }
}

void forward(int p) {
  int i;
  int j;
  double sum;
  for (i = 0; i < 8; i++)
    in_units[i] = patterns[p][i];
  for (j = 0; j < 12; j++) {
    sum = 0.0;
    for (i = 0; i < 8; i++)
      sum += in_units[i] * w_ih[i][j];
    hid_units[j] = squash(sum);
  }
  for (j = 0; j < 4; j++) {
    sum = 0.0;
    for (i = 0; i < 12; i++)
      sum += hid_units[i] * w_ho[i][j];
    out_units[j] = squash(sum);
  }
}

double backward(int p, double rate) {
  int i;
  int j;
  double err = 0.0;
  double diff;
  double back;
  for (i = 0; i < 4; i++)
    target[i] = labels[p][i];
  for (j = 0; j < 4; j++) {
    diff = target[j] - out_units[j];
    err += diff * diff;
    delta_out[j] = diff * out_units[j] * (1.0 - out_units[j]);
  }
  for (i = 0; i < 12; i++) {
    back = 0.0;
    for (j = 0; j < 4; j++)
      back += delta_out[j] * w_ho[i][j];
    delta_hid[i] = back * hid_units[i] * (1.0 - hid_units[i]);
  }
  for (i = 0; i < 12; i++)
    for (j = 0; j < 4; j++)
      w_ho[i][j] += rate * delta_out[j] * hid_units[i];
  for (i = 0; i < 8; i++)
    for (j = 0; j < 12; j++)
      w_ih[i][j] += rate * delta_hid[j] * in_units[i];
  return err;
}

double train_epoch(double rate) {
  int p;
  double total = 0.0;
  for (p = 0; p < n_patterns; p++) {
    forward(p);
    total += backward(p, rate);
  }
  return total;
}

int classify(int p) {
  int j;
  int best = 0;
  forward(p);
  for (j = 1; j < 4; j++)
    if (out_units[j] > out_units[best])
      best = j;
  return best;
}

int count_correct() {
  int p;
  int good = 0;
  for (p = 0; p < n_patterns; p++)
    if (classify(p) == p % 4)
      good++;
  return good;
}

int main() {
  int seed = read_int();
  int epochs = read_int();
  int e;
  double err = 0.0;
  srand(seed);
  init_weights();
  make_patterns();
  for (e = 0; e < epochs; e++)
    err = train_epoch(0.35);
  print_str("epochs=");
  print_int(epochs);
  print_str(" err1000=");
  print_int((int)(err * 1000.0));
  print_str(" correct=");
  print_int(count_correct());
  print_char('\n');
  return 0;
}
)MC";

} // namespace

SuiteProgram sest::makeAlvinn() {
  SuiteProgram P;
  P.Name = "alvinn";
  P.PaperAnalogue = "alvinn (SPEC92)";
  P.Description = "Back-propagation on a neural net";
  P.Source = Source;
  P.Inputs = {
      {"train20", "3 20", 3},
      {"train35", "17 35", 17},
      {"train12", "29 12", 29},
      {"train28", "41 28", 41},
      {"train16", "53 16", 53},
  };
  return P;
}

//===- suite/programs/Awk.cpp - Pattern matching utility -------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for "awk" (Unix pattern-matching utility): a grep-style
/// regular-expression matcher (literals, '.', '*' closure, '^'/'$'
/// anchors, character classes) run over input lines — the classic
/// Kernighan/Pike recursive matchhere structure, plus per-line field
/// splitting and counting.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include "support/Prng.h"

#include <string>

using namespace sest;

namespace {

const char *Source = R"MC(
/* rematch0: count pattern matches and fields over input lines */

char patterns[8][32];
int n_patterns = 0;
int match_counts[8];

char line_buf[256];
int line_len = 0;

int total_lines = 0;
int total_fields = 0;

int match_here(char *pat, char *text);

/* matches a single pattern element (c, '.', or [abc]) */
int match_one(char *pat, int c) {
  int i;
  int negate = 0;
  if (c == 0)
    return 0;
  if (pat[0] == '.')
    return 1;
  if (pat[0] == '[') {
    i = 1;
    if (pat[i] == '^') {
      negate = 1;
      i++;
    }
    while (pat[i] != ']' && pat[i] != 0) {
      if (pat[i] == c)
        return !negate;
      i++;
    }
    return negate;
  }
  return pat[0] == c;
}

/* length of one pattern element */
int elem_len(char *pat) {
  int n = 1;
  if (pat[0] == '[') {
    while (pat[n] != ']' && pat[n] != 0)
      n++;
    n++;
  }
  return n;
}

/* closure: e* followed by rest */
int match_star(char *elem, char *rest, char *text) {
  char *t = text;
  for (;;) {
    if (match_here(rest, t))
      return 1;
    if (!match_one(elem, *t))
      return 0;
    t++;
  }
}

int match_here(char *pat, char *text) {
  int n;
  if (pat[0] == 0)
    return 1;
  if (pat[0] == '$' && pat[1] == 0)
    return *text == 0;
  n = elem_len(pat);
  if (pat[n] == '*')
    return match_star(pat, pat + n + 1, text);
  if (*text != 0 && match_one(pat, *text))
    return match_here(pat + n, text + 1);
  return 0;
}

int match_anywhere(char *pat, char *text) {
  if (pat[0] == '^')
    return match_here(pat + 1, text);
  /* try every start position, even for empty text */
  do {
    if (match_here(pat, text))
      return 1;
    text++;
  } while (text[-1] != 0);
  return 0;
}

int read_line() {
  int c = read_char();
  int n = 0;
  if (c == -1)
    return -1;
  while (c != -1 && c != '\n' && n < 255) {
    line_buf[n] = c;
    n++;
    c = read_char();
  }
  line_buf[n] = 0;
  line_len = n;
  return n;
}

int count_fields() {
  int i = 0;
  int fields = 0;
  int in_field = 0;
  while (line_buf[i] != 0) {
    if (line_buf[i] == ' ') {
      in_field = 0;
    } else if (!in_field) {
      in_field = 1;
      fields++;
    }
    i++;
  }
  return fields;
}

void load_patterns() {
  int n = read_int();
  int i;
  int c;
  int k;
  read_char(); /* trailing newline */
  if (n > 8)
    n = 8;
  n_patterns = n;
  for (i = 0; i < n; i++) {
    k = 0;
    c = read_char();
    while (c != -1 && c != '\n' && k < 31) {
      patterns[i][k] = c;
      k++;
      c = read_char();
    }
    patterns[i][k] = 0;
    match_counts[i] = 0;
  }
}

int main() {
  int i;
  load_patterns();
  while (read_line() != -1) {
    total_lines++;
    total_fields += count_fields();
    for (i = 0; i < n_patterns; i++)
      if (match_anywhere(patterns[i], line_buf))
        match_counts[i]++;
  }
  print_str("lines=");
  print_int(total_lines);
  print_str(" fields=");
  print_int(total_fields);
  print_str(" matches:");
  for (i = 0; i < n_patterns; i++) {
    print_char(' ');
    print_int(match_counts[i]);
  }
  print_char('\n');
  return 0;
}
)MC";

/// Input: pattern count, patterns, then text lines.
std::string makeMatchInput(uint64_t Seed, int Lines) {
  Prng R(Seed);
  static const char *Patterns[] = {
      "^the",      "ing$",    "a.b",     "ab*c",
      "[aeiou][aeiou]", "^[^t]", "qu",   "z*end$",
  };
  static const char *Words[] = {
      "the",   "thing",  "abacus", "abbbc", "cab",    "aerie",
      "queen", "zzend",  "end",    "string", "táil",  "aab",
      "quilt", "running", "axb",   "banana", "loop",  "testing"};
  std::string S = "8\n";
  for (const char *P : Patterns)
    S += std::string(P) + "\n";
  for (int L = 0; L < Lines; ++L) {
    unsigned N = 2 + static_cast<unsigned>(R.nextBelow(6));
    for (unsigned W = 0; W < N; ++W) {
      S += Words[R.nextBelow(18)];
      S += W + 1 == N ? "" : " ";
    }
    S += "\n";
  }
  return S;
}

} // namespace

SuiteProgram sest::makeAwk() {
  SuiteProgram P;
  P.Name = "awk";
  P.PaperAnalogue = "awk";
  P.Description = "Unix pattern-matching utility (regex over lines)";
  P.Source = Source;
  P.Inputs = {
      {"l60", makeMatchInput(15, 60), 15},
      {"l90", makeMatchInput(35, 90), 35},
      {"l40", makeMatchInput(55, 40), 55},
      {"l120", makeMatchInput(77, 120), 77},
      {"l75", makeMatchInput(93, 75), 93},
  };
  return P;
}

//===- suite/programs/Bison.cpp - Parser-table generator -------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for "bison" (LALR(1) parser generator): an LL(1) table
/// generator — nullable/FIRST/FOLLOW computation by fixpoint iteration
/// over bitmask sets, parse-table construction, and conflict counting.
/// Grammar-processing control flow: nested loops over rules and symbols
/// with data-dependent convergence.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include "support/Prng.h"

#include <string>

using namespace sest;

namespace {

const char *Source = R"MC(
/* ll1gen: nullable / FIRST / FOLLOW and an LL(1) parse table.
   symbols: 0..n_nts-1 are nonterminals, 64..64+n_ts-1 are terminals. */

int rule_lhs[64];
int rule_len[64];
int rule_sym[64][8];
int n_rules = 0;
int n_nts = 0;
int n_ts = 0;

int nullable[32];
int first_set[32];    /* bitmask over terminals 0..n_ts-1 */
int follow_set[32];

int table_rule[32][32]; /* [nonterminal][terminal] -> rule or -1 */
int conflicts = 0;

int is_terminal(int s) {
  return s >= 64;
}

int term_bit(int s) {
  return 1 << (s - 64);
}

void read_grammar() {
  int r;
  int k;
  n_nts = read_int();
  n_ts = read_int();
  n_rules = read_int();
  for (r = 0; r < n_rules; r++) {
    rule_lhs[r] = read_int();
    rule_len[r] = read_int();
    for (k = 0; k < rule_len[r]; k++)
      rule_sym[r][k] = read_int();
  }
}

int compute_nullable() {
  int changed = 1;
  int passes = 0;
  int r;
  int k;
  int all_null;
  while (changed) {
    changed = 0;
    passes++;
    for (r = 0; r < n_rules; r++) {
      if (nullable[rule_lhs[r]])
        continue;
      all_null = 1;
      for (k = 0; k < rule_len[r]; k++) {
        if (is_terminal(rule_sym[r][k]) || !nullable[rule_sym[r][k]]) {
          all_null = 0;
          break;
        }
      }
      if (all_null) {
        nullable[rule_lhs[r]] = 1;
        changed = 1;
      }
    }
  }
  return passes;
}

/* FIRST of the suffix rule_sym[r][from..] */
int first_of_suffix(int r, int from) {
  int k;
  int set = 0;
  for (k = from; k < rule_len[r]; k++) {
    int s = rule_sym[r][k];
    if (is_terminal(s)) {
      set |= term_bit(s);
      return set;
    }
    set |= first_set[s];
    if (!nullable[s])
      return set;
  }
  return set | (1 << 30); /* bit 30: the suffix can derive epsilon */
}

int compute_first() {
  int changed = 1;
  int passes = 0;
  int r;
  int add;
  while (changed) {
    changed = 0;
    passes++;
    for (r = 0; r < n_rules; r++) {
      add = first_of_suffix(r, 0) & ~(1 << 30);
      if ((first_set[rule_lhs[r]] | add) != first_set[rule_lhs[r]]) {
        first_set[rule_lhs[r]] |= add;
        changed = 1;
      }
    }
  }
  return passes;
}

int compute_follow() {
  int changed = 1;
  int passes = 0;
  int r;
  int k;
  int s;
  int tail;
  follow_set[0] |= 1; /* end marker = terminal bit 0 */
  while (changed) {
    changed = 0;
    passes++;
    for (r = 0; r < n_rules; r++) {
      for (k = 0; k < rule_len[r]; k++) {
        s = rule_sym[r][k];
        if (is_terminal(s))
          continue;
        tail = first_of_suffix(r, k + 1);
        if ((follow_set[s] | (tail & ~(1 << 30))) != follow_set[s]) {
          follow_set[s] |= tail & ~(1 << 30);
          changed = 1;
        }
        if (tail & (1 << 30)) {
          if ((follow_set[s] | follow_set[rule_lhs[r]]) != follow_set[s]) {
            follow_set[s] |= follow_set[rule_lhs[r]];
            changed = 1;
          }
        }
      }
    }
  }
  return passes;
}

void build_table() {
  int nt;
  int t;
  int r;
  int predict;
  for (nt = 0; nt < n_nts; nt++)
    for (t = 0; t < n_ts; t++)
      table_rule[nt][t] = -1;
  for (r = 0; r < n_rules; r++) {
    predict = first_of_suffix(r, 0);
    if (predict & (1 << 30))
      predict |= follow_set[rule_lhs[r]];
    predict &= ~(1 << 30);
    for (t = 0; t < n_ts; t++) {
      if (!(predict & (1 << t)))
        continue;
      if (table_rule[rule_lhs[r]][t] != -1)
        conflicts++;
      else
        table_rule[rule_lhs[r]][t] = r;
    }
  }
}

int table_entries() {
  int nt;
  int t;
  int n = 0;
  for (nt = 0; nt < n_nts; nt++)
    for (t = 0; t < n_ts; t++)
      if (table_rule[nt][t] != -1)
        n++;
  return n;
}

int first_checksum() {
  int i;
  int h = 0;
  for (i = 0; i < n_nts; i++)
    h = (h * 131 + first_set[i] + follow_set[i] * 3 + nullable[i]) %
        1000000007;
  return h;
}

int main() {
  int p1;
  int p2;
  int p3;
  read_grammar();
  p1 = compute_nullable();
  p2 = compute_first();
  p3 = compute_follow();
  build_table();
  print_str("passes=");
  print_int(p1 + p2 + p3);
  print_str(" entries=");
  print_int(table_entries());
  print_str(" conflicts=");
  print_int(conflicts);
  print_str(" check=");
  print_int(first_checksum());
  print_char('\n');
  return 0;
}
)MC";

/// Random grammar: n_nts, n_ts, n_rules, then rules (lhs len syms...).
std::string makeGrammar(uint64_t Seed, int Nts, int Ts, int Rules) {
  Prng R(Seed);
  std::string S = std::to_string(Nts) + " " + std::to_string(Ts) + " " +
                  std::to_string(Rules) + "\n";
  for (int I = 0; I < Rules; ++I) {
    int Lhs = static_cast<int>(R.nextBelow(Nts));
    int Len = static_cast<int>(R.nextBelow(5)); // 0..4, epsilon allowed
    S += std::to_string(Lhs) + " " + std::to_string(Len);
    for (int K = 0; K < Len; ++K) {
      // Bias towards terminals so derivations terminate.
      bool Terminal = R.nextBelow(3) != 0;
      int Sym = Terminal ? 64 + static_cast<int>(R.nextBelow(Ts))
                         : static_cast<int>(R.nextBelow(Nts));
      S += " " + std::to_string(Sym);
    }
    S += "\n";
  }
  return S;
}

} // namespace

SuiteProgram sest::makeBison() {
  SuiteProgram P;
  P.Name = "bison";
  P.PaperAnalogue = "bison";
  P.Description = "LALR(1) parser generator (LL(1) table construction)";
  P.Source = Source;
  P.Inputs = {
      {"g8t10r30", makeGrammar(25, 8, 10, 30), 25},
      {"g12t14r48", makeGrammar(49, 12, 14, 48), 49},
      {"g6t8r22", makeGrammar(67, 6, 8, 22), 67},
      {"g16t18r60", makeGrammar(91, 16, 18, 60), 91},
      {"g10t12r36", makeGrammar(113, 10, 12, 36), 113},
  };
  return P;
}

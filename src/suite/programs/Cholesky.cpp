//===- suite/programs/Cholesky.cpp - Cholesky factorization ---------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for "cholesky" (Cholesky-factorize a sparse matrix): build a
/// banded symmetric positive-definite system, factorize it skipping
/// zero entries outside the band (the sparse twist), solve by forward /
/// backward substitution, and verify the residual.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

using namespace sest;

namespace {

const char *Source = R"MC(
/* banded sparse Cholesky: A = L·Lᵀ, solve A x = b, check residual */

double a_mat[40][40];
double l_mat[40][40];
double b_vec[40];
double y_vec[40];
double x_vec[40];
int n_dim = 0;
int bandwidth = 0;

void build_matrix(int n, int band) {
  int i;
  int j;
  n_dim = n;
  bandwidth = band;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      a_mat[i][j] = 0.0;
  for (i = 0; i < n; i++) {
    a_mat[i][i] = 4.0 + (rand() % 100) / 50.0;
    for (j = i + 1; j < n && j <= i + band; j++) {
      a_mat[i][j] = 0.0 - (rand() % 100) / 120.0;
      a_mat[j][i] = a_mat[i][j];
    }
  }
  for (i = 0; i < n; i++)
    b_vec[i] = 1.0 + (rand() % 100) / 100.0;
}

int is_zero(double v) {
  if (fabs(v) < 1e-12)
    return 1;
  return 0;
}

/* column-oriented factorization; skips zero (out-of-band) entries */
int factorize() {
  int i;
  int j;
  int k;
  double sum;
  for (j = 0; j < n_dim; j++) {
    sum = a_mat[j][j];
    for (k = 0; k < j; k++) {
      if (is_zero(l_mat[j][k]))
        continue;
      sum -= l_mat[j][k] * l_mat[j][k];
    }
    if (sum <= 0.0)
      return 0; /* not positive definite */
    l_mat[j][j] = sqrt(sum);
    for (i = j + 1; i < n_dim; i++) {
      if (i > j + bandwidth + 2) {
        l_mat[i][j] = 0.0;
        continue;
      }
      sum = a_mat[i][j];
      for (k = 0; k < j; k++) {
        if (is_zero(l_mat[i][k]) || is_zero(l_mat[j][k]))
          continue;
        sum -= l_mat[i][k] * l_mat[j][k];
      }
      l_mat[i][j] = sum / l_mat[j][j];
    }
  }
  return 1;
}

void forward_solve() {
  int i;
  int k;
  double sum;
  for (i = 0; i < n_dim; i++) {
    sum = b_vec[i];
    for (k = 0; k < i; k++)
      sum -= l_mat[i][k] * y_vec[k];
    y_vec[i] = sum / l_mat[i][i];
  }
}

void backward_solve() {
  int i;
  int k;
  double sum;
  for (i = n_dim - 1; i >= 0; i--) {
    sum = y_vec[i];
    for (k = i + 1; k < n_dim; k++)
      sum -= l_mat[k][i] * x_vec[k];
    x_vec[i] = sum / l_mat[i][i];
  }
}

double residual() {
  int i;
  int j;
  double r = 0.0;
  double row;
  for (i = 0; i < n_dim; i++) {
    row = 0.0 - b_vec[i];
    for (j = 0; j < n_dim; j++)
      row += a_mat[i][j] * x_vec[j];
    r += row * row;
  }
  return r;
}

int count_nonzeros() {
  int i;
  int j;
  int nz = 0;
  for (i = 0; i < n_dim; i++)
    for (j = 0; j <= i; j++)
      if (!is_zero(l_mat[i][j]))
        nz++;
  return nz;
}

int main() {
  int seed = read_int();
  int n = read_int();
  int band = read_int();
  double r;
  if (n > 40)
    n = 40;
  srand(seed);
  build_matrix(n, band);
  if (!factorize()) {
    print_str("not positive definite\n");
    abort();
  }
  forward_solve();
  backward_solve();
  r = residual();
  print_str("n=");
  print_int(n_dim);
  print_str(" nz=");
  print_int(count_nonzeros());
  print_str(" resid_ok=");
  print_int(r < 1e-12);
  print_char('\n');
  return 0;
}
)MC";

} // namespace

SuiteProgram sest::makeCholesky() {
  SuiteProgram P;
  P.Name = "cholesky";
  P.PaperAnalogue = "cholesky";
  P.Description = "Cholesky-factorize a sparse (banded) matrix";
  P.Source = Source;
  P.Inputs = {
      {"n24b3", "3 24 3", 3},
      {"n32b4", "13 32 4", 13},
      {"n28b2", "27 28 2", 27},
      {"n36b5", "31 36 5", 31},
      {"n20b6", "43 20 6", 43},
  };
  return P;
}

//===- suite/programs/Compress.cpp - LZW compression stand-in --------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for SPEC92 "compress" (Unix compression utility): LZW
/// compression and decompression with verification. Deliberately
/// structured as 16 functions, of which roughly four dominate the run
/// time — the property the paper's selective-optimization experiment
/// (§6, Fig. 10) relies on ("The run time of the program is dominated by
/// 4 of its 16 functions").
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include "support/Prng.h"

using namespace sest;

namespace {

const char *Source = R"MC(
/* lzw compress + decompress with verification; 16 functions */

int in_buf[4200];
int in_len = 0;

int code_buf[4200];
int n_codes = 0;

int out_buf[8400];
int out_len = 0;

/* open-addressing hash table for (prefix, char) -> code */
int hash_code[4099];
int hash_prefix[4099];
int hash_char[4099];

/* decoder dictionary */
int dict_prefix[4096];
int dict_char[4096];
int next_code = 256;

int total_bits = 0;
int check_in = 0;
int check_out = 0;

int hash_key(int prefix, int ch) {
  int h = (prefix * 31 + ch * 7) % 4099;
  if (h < 0)
    h += 4099;
  return h;
}

void table_reset() {
  int i;
  for (i = 0; i < 4099; i++)
    hash_code[i] = -1;
  next_code = 256;
}

int table_lookup(int prefix, int ch) {
  int h = hash_key(prefix, ch);
  while (hash_code[h] != -1) {
    if (hash_prefix[h] == prefix && hash_char[h] == ch)
      return hash_code[h];
    h++;
    if (h == 4099)
      h = 0;
  }
  return -1;
}

void table_insert(int prefix, int ch, int code) {
  int h = hash_key(prefix, ch);
  while (hash_code[h] != -1) {
    h++;
    if (h == 4099)
      h = 0;
  }
  hash_code[h] = code;
  hash_prefix[h] = prefix;
  hash_char[h] = ch;
}

int code_length(int code) {
  int bits = 1;
  int top = 2;
  while (top <= code) {
    top = top * 2;
    bits++;
  }
  if (bits < 9)
    return 9;
  return bits;
}

void put_code(int code) {
  code_buf[n_codes] = code;
  n_codes++;
  total_bits += code_length(code);
}

int read_input() {
  int c = read_char();
  int n = 0;
  while (c != -1 && n < 4096) {
    in_buf[n] = c;
    n++;
    c = read_char();
  }
  return n;
}

void checksum_in(int c) {
  check_in = (check_in * 131 + c) % 1000000007;
}

void checksum_out(int c) {
  check_out = (check_out * 131 + c) % 1000000007;
}

void lzw_compress() {
  int w;
  int i;
  int c;
  int found;
  if (in_len == 0)
    return;
  table_reset();
  w = in_buf[0];
  checksum_in(w);
  for (i = 1; i < in_len; i++) {
    c = in_buf[i];
    checksum_in(c);
    found = table_lookup(w, c);
    if (found != -1) {
      w = found;
    } else {
      put_code(w);
      if (next_code < 4096) {
        table_insert(w, c, next_code);
        next_code++;
      }
      w = c;
    }
  }
  put_code(w);
}

int first_char_of(int code) {
  while (code >= 256)
    code = dict_prefix[code];
  return code;
}

void emit_expansion(int code) {
  if (code >= 256)
    emit_expansion(dict_prefix[code]);
  if (code >= 256)
    out_buf[out_len] = dict_char[code];
  else
    out_buf[out_len] = code;
  checksum_out(out_buf[out_len]);
  out_len++;
}

void lzw_decompress() {
  int i;
  int prev;
  int code;
  int dnext = 256;
  if (n_codes == 0)
    return;
  prev = code_buf[0];
  emit_expansion(prev);
  for (i = 1; i < n_codes; i++) {
    code = code_buf[i];
    if (code < dnext) {
      emit_expansion(code);
    } else {
      /* the KwKwK special case */
      emit_expansion(prev);
      out_buf[out_len] = first_char_of(prev);
      checksum_out(out_buf[out_len]);
      out_len++;
    }
    if (dnext < 4096) {
      dict_prefix[dnext] = prev;
      if (code < dnext)
        dict_char[dnext] = first_char_of(code);
      else
        dict_char[dnext] = first_char_of(prev);
      dnext++;
    }
    prev = code;
  }
}

int verify_roundtrip() {
  int i;
  if (out_len != in_len)
    return 0;
  for (i = 0; i < in_len; i++)
    if (out_buf[i] != in_buf[i])
      return 0;
  return 1;
}

void print_summary(int ok) {
  print_str("in=");
  print_int(in_len);
  print_str(" codes=");
  print_int(n_codes);
  print_str(" bits=");
  print_int(total_bits);
  print_str(" ratio100=");
  if (total_bits > 0)
    print_int(in_len * 800 / total_bits);
  else
    print_int(0);
  print_str(" ok=");
  print_int(ok);
  print_str(" check=");
  print_int(check_in == check_out);
  print_char('\n');
}

int main() {
  int ok;
  in_len = read_input();
  lzw_compress();
  lzw_decompress();
  ok = verify_roundtrip();
  print_summary(ok);
  if (!ok)
    abort();
  return 0;
}
)MC";

/// Deterministic English-like text with enough repetition to compress.
std::string makeText(uint64_t Seed, size_t Words) {
  static const char *Vocab[] = {
      "the",  "quick", "brown",  "fox",   "jumps", "over",  "lazy",
      "dog",  "pack",  "my",     "box",   "with",  "five",  "dozen",
      "jugs", "of",    "liquor", "state", "zip",   "code"};
  Prng R(Seed);
  std::string Out;
  for (size_t I = 0; I < Words; ++I) {
    Out += Vocab[R.nextBelow(20)];
    Out += R.nextBelow(12) == 0 ? '\n' : ' ';
  }
  return Out;
}

} // namespace

SuiteProgram sest::makeCompress() {
  SuiteProgram P;
  P.Name = "compress";
  P.PaperAnalogue = "compress (SPEC92)";
  P.Description = "Unix compression utility (LZW round trip)";
  P.Source = Source;
  P.Inputs = {
      {"text1", makeText(11, 700), 1},
      {"text2", makeText(23, 1100), 2},
      {"text3", makeText(37, 500), 3},
      {"text4", makeText(51, 900), 4},
      {"text5", makeText(71, 1300), 5},
  };
  return P;
}

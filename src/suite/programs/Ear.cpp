//===- suite/programs/Ear.cpp - Cochlea / filter-bank simulation ----------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for SPEC92 "ear" (simulate sound processing in the ear): a
/// bank of second-order resonators over a synthesized signal, half-wave
/// rectification, leaky integration, and channel-energy reporting.
/// Numerical, loop-dominated control flow.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

using namespace sest;

namespace {

const char *Source = R"MC(
/* cochlear filter bank: 16 resonator channels over a synthetic signal */

double signal[2048];
int n_samples = 0;

double f_b0[16];
double f_a1[16];
double f_a2[16];
double state1[16];
double state2[16];
double energy[16];
double envelope[16];

double osc_phase = 0.0;

/* triangle-wave oscillator: cheap deterministic "sine" */
double osc_next(double freq) {
  double v;
  osc_phase += freq;
  while (osc_phase >= 1.0)
    osc_phase -= 1.0;
  if (osc_phase < 0.5)
    v = 4.0 * osc_phase - 1.0;
  else
    v = 3.0 - 4.0 * osc_phase;
  return v;
}

void synthesize(int n, int tone_a, int tone_b) {
  int i;
  double fa = tone_a / 4096.0;
  double fb = tone_b / 4096.0;
  double noise;
  for (i = 0; i < n; i++) {
    noise = (rand() % 200) / 1000.0 - 0.1;
    signal[i] = 0.6 * osc_next(fa) + 0.3 * osc_next(fb) + noise;
  }
  n_samples = n;
}

void design_bank() {
  int c;
  double f;
  double q;
  for (c = 0; c < 16; c++) {
    f = 0.02 + 0.025 * c;       /* normalized center frequency */
    q = 0.9 - 0.02 * c;         /* pole radius */
    f_b0[c] = 1.0 - q;
    f_a1[c] = 2.0 * q * (1.0 - 2.0 * f);
    f_a2[c] = 0.0 - q * q;
    state1[c] = 0.0;
    state2[c] = 0.0;
    energy[c] = 0.0;
    envelope[c] = 0.0;
  }
}

double filter_sample(int c, double x) {
  double y = f_b0[c] * x + f_a1[c] * state1[c] + f_a2[c] * state2[c];
  state2[c] = state1[c];
  state1[c] = y;
  return y;
}

double rectify(double x) {
  if (x < 0.0)
    return 0.0;
  return x;
}

void run_bank() {
  int i;
  int c;
  double y;
  double r;
  for (i = 0; i < n_samples; i++) {
    for (c = 0; c < 16; c++) {
      y = filter_sample(c, signal[i]);
      r = rectify(y);
      envelope[c] = 0.995 * envelope[c] + 0.005 * r;
      energy[c] += y * y;
    }
  }
}

int loudest_channel() {
  int c;
  int best = 0;
  for (c = 1; c < 16; c++)
    if (energy[c] > energy[best])
      best = c;
  return best;
}

void report() {
  int c;
  print_str("channels:");
  for (c = 0; c < 16; c++) {
    print_char(' ');
    print_int((int)(energy[c] * 10.0));
  }
  print_str(" loudest=");
  print_int(loudest_channel());
  print_char('\n');
}

int main() {
  int seed = read_int();
  int n = read_int();
  int tone_a = read_int();
  int tone_b = read_int();
  if (n > 2048)
    n = 2048;
  srand(seed);
  design_bank();
  synthesize(n, tone_a, tone_b);
  run_bank();
  report();
  return 0;
}
)MC";

} // namespace

SuiteProgram sest::makeEar() {
  SuiteProgram P;
  P.Name = "ear";
  P.PaperAnalogue = "ear (SPEC92)";
  P.Description = "Simulate sound processing in the ear";
  P.Source = Source;
  P.Inputs = {
      {"low", "5 1400 90 180", 5},
      {"mid", "9 1800 200 340", 9},
      {"high", "13 1100 380 520", 13},
      {"mixed", "21 2000 120 480", 21},
      {"short", "27 900 260 70", 27},
  };
  return P;
}

//===- suite/programs/Eqntott.cpp - Boolean functions to truth tables ------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for SPEC92 "eqntott" (translate boolean functions to truth
/// tables): parse boolean equations over variables a..e (recursive
/// descent into malloc'd AST nodes), enumerate all assignments to build
/// the truth table, and sort the rows with a quicksort driven by a
/// comparison *function pointer* — eqntott's famously hot "cmppt"
/// pattern.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include "support/Prng.h"

#include <functional>
#include <string>

using namespace sest;

namespace {

const char *Source = R"MC(
/* eqntott: boolean equations -> sorted truth tables */

struct node {
  int op;            /* 0 var, 1 not, 2 and, 3 or */
  int var;
  struct node *left;
  struct node *right;
};

char expr_buf[256];
int expr_len = 0;
int expr_pos = 0;
int n_vars = 0;

int table_rows[1024];  /* packed: (assignment << 1) | output */
int n_rows = 0;

int read_line() {
  int c = read_char();
  int n = 0;
  while (c != -1 && c != '\n' && n < 255) {
    if (c != ' ') {
      expr_buf[n] = c;
      n++;
    }
    c = read_char();
  }
  expr_buf[n] = 0;
  expr_len = n;
  expr_pos = 0;
  return n;
}

int peek_ch() {
  if (expr_pos >= expr_len)
    return 0;
  return expr_buf[expr_pos];
}

struct node *new_node(int op, int var, struct node *l, struct node *r) {
  struct node *n = (struct node *)malloc(sizeof(struct node));
  if (n == NULL)
    abort();
  n->op = op;
  n->var = var;
  n->left = l;
  n->right = r;
  return n;
}

struct node *parse_or();

struct node *parse_atom() {
  int c = peek_ch();
  struct node *n;
  if (c == '(') {
    expr_pos++;
    n = parse_or();
    if (peek_ch() == ')')
      expr_pos++;
    return n;
  }
  if (c == '!') {
    expr_pos++;
    return new_node(1, 0, parse_atom(), NULL);
  }
  if (c >= 'a' && c <= 'e') {
    expr_pos++;
    if (c - 'a' + 1 > n_vars)
      n_vars = c - 'a' + 1;
    return new_node(0, c - 'a', NULL, NULL);
  }
  /* malformed input */
  abort();
  return NULL;
}

struct node *parse_and() {
  struct node *l = parse_atom();
  while (peek_ch() == '&') {
    expr_pos++;
    l = new_node(2, 0, l, parse_atom());
  }
  return l;
}

struct node *parse_or() {
  struct node *l = parse_and();
  while (peek_ch() == '|') {
    expr_pos++;
    l = new_node(3, 0, l, parse_and());
  }
  return l;
}

int eval_node(struct node *n, int assignment) {
  if (n->op == 0)
    return (assignment >> n->var) & 1;
  if (n->op == 1)
    return !eval_node(n->left, assignment);
  if (n->op == 2) {
    if (!eval_node(n->left, assignment))
      return 0;
    return eval_node(n->right, assignment);
  }
  if (!eval_node(n->left, assignment))
    return eval_node(n->right, assignment);
  return 1;
}

void free_tree(struct node *n) {
  if (n == NULL)
    return;
  free_tree(n->left);
  free_tree(n->right);
  free(n);
}

void build_table(struct node *root) {
  int a;
  int total = 1 << n_vars;
  n_rows = 0;
  for (a = 0; a < total; a++) {
    table_rows[n_rows] = (a << 1) | eval_node(root, a);
    n_rows++;
  }
}

/* comparison functions, selected by pointer like eqntott's cmppt */
int cmp_output_first(int x, int y) {
  int ox = x & 1;
  int oy = y & 1;
  if (ox != oy)
    return oy - ox; /* rows with output 1 first */
  return x - y;
}

int cmp_assignment(int x, int y) {
  return (x >> 1) - (y >> 1);
}

void quicksort(int lo, int hi, int (*cmp)(int, int)) {
  int pivot;
  int i;
  int j;
  int tmp;
  if (lo >= hi)
    return;
  pivot = table_rows[(lo + hi) / 2];
  i = lo;
  j = hi;
  while (i <= j) {
    while (cmp(table_rows[i], pivot) < 0)
      i++;
    while (cmp(table_rows[j], pivot) > 0)
      j--;
    if (i <= j) {
      tmp = table_rows[i];
      table_rows[i] = table_rows[j];
      table_rows[j] = tmp;
      i++;
      j--;
    }
  }
  quicksort(lo, j, cmp);
  quicksort(i, hi, cmp);
}

int count_minterms() {
  int i;
  int ones = 0;
  for (i = 0; i < n_rows; i++)
    ones += table_rows[i] & 1;
  return ones;
}

int table_checksum() {
  int i;
  int h = 0;
  for (i = 0; i < n_rows; i++)
    h = (h * 31 + table_rows[i] * (i + 1)) % 1000000007;
  return h;
}

int main() {
  int n_eqns = read_int();
  int e;
  struct node *root;
  read_char(); /* newline after the count */
  for (e = 0; e < n_eqns; e++) {
    if (read_line() == 0)
      break;
    n_vars = 1;
    root = parse_or();
    build_table(root);
    quicksort(0, n_rows - 1, cmp_output_first);
    print_str("minterms=");
    print_int(count_minterms());
    quicksort(0, n_rows - 1, cmp_assignment);
    print_str(" check=");
    print_int(table_checksum());
    print_char('\n');
    free_tree(root);
  }
  return 0;
}
)MC";

/// Random boolean expressions over a..e.
std::string makeEquations(uint64_t Seed, int Count, int Depth) {
  Prng R(Seed);
  std::function<std::string(int)> Gen = [&](int D) -> std::string {
    if (D == 0 || R.nextBelow(4) == 0) {
      std::string V(1, static_cast<char>('a' + R.nextBelow(5)));
      return R.nextBelow(3) == 0 ? "!" + V : V;
    }
    std::string L = Gen(D - 1);
    std::string Rhs = Gen(D - 1);
    const char *Op = R.nextBelow(2) == 0 ? "&" : "|";
    return "(" + L + Op + Rhs + ")";
  };
  std::string Out = std::to_string(Count) + "\n";
  for (int I = 0; I < Count; ++I)
    Out += Gen(Depth) + "\n";
  return Out;
}

} // namespace

SuiteProgram sest::makeEqntott() {
  SuiteProgram P;
  P.Name = "eqntott";
  P.PaperAnalogue = "eqntott (SPEC92)";
  P.Description = "Translate boolean functions to truth tables";
  P.Source = Source;
  P.Inputs = {
      {"eq8d3", makeEquations(7, 8, 3), 7},
      {"eq12d4", makeEquations(19, 12, 4), 19},
      {"eq6d5", makeEquations(37, 6, 5), 37},
      {"eq10d3", makeEquations(53, 10, 3), 53},
      {"eq9d4", makeEquations(71, 9, 4), 71},
  };
  return P;
}

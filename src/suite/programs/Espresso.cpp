//===- suite/programs/Espresso.cpp - Boolean minimization ------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for SPEC92 "espresso" (minimize boolean functions): a
/// Quine-McCluskey-style two-level minimizer over cube lists — pairwise
/// merging of implicants that differ in one literal, prime-implicant
/// extraction, and a greedy cover. Bit-twiddling inner loops with
/// data-dependent branches.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include "support/Prng.h"

#include <string>

using namespace sest;

namespace {

const char *Source = R"MC(
/* two-level boolean minimization over cubes (value, care-mask) */

int cube_val[2048];
int cube_mask[2048];
int cube_used[2048];
int n_cubes = 0;

int prime_val[1024];
int prime_mask[1024];
int n_primes = 0;

int minterms[256];
int n_minterms = 0;
int n_bits = 0;

int popcount(int x) {
  int n = 0;
  while (x) {
    n += x & 1;
    x >>= 1;
  }
  return n;
}

void add_cube(int val, int mask) {
  int i;
  /* suppress duplicates */
  for (i = 0; i < n_cubes; i++)
    if (cube_val[i] == val && cube_mask[i] == mask)
      return;
  if (n_cubes >= 2048)
    return;
  cube_val[n_cubes] = val;
  cube_mask[n_cubes] = mask;
  cube_used[n_cubes] = 0;
  n_cubes++;
}

void add_prime(int val, int mask) {
  int i;
  for (i = 0; i < n_primes; i++)
    if (prime_val[i] == val && prime_mask[i] == mask)
      return;
  if (n_primes >= 1024)
    return;
  prime_val[n_primes] = val;
  prime_mask[n_primes] = mask;
  n_primes++;
}

/* one merging generation: cubes differing in exactly one cared bit */
int merge_generation() {
  int i;
  int j;
  int diff;
  int merged_any = 0;
  int start = 0;
  int end = n_cubes;
  for (i = start; i < end; i++) {
    for (j = i + 1; j < end; j++) {
      if (cube_mask[i] != cube_mask[j])
        continue;
      diff = (cube_val[i] ^ cube_val[j]) & cube_mask[i];
      if (popcount(diff) != 1)
        continue;
      add_cube(cube_val[i] & ~diff, cube_mask[i] & ~diff);
      cube_used[i] = 1;
      cube_used[j] = 1;
      merged_any = 1;
    }
  }
  for (i = start; i < end; i++)
    if (!cube_used[i])
      add_prime(cube_val[i], cube_mask[i]);
  /* drop the old generation */
  j = 0;
  for (i = end; i < n_cubes; i++) {
    cube_val[j] = cube_val[i];
    cube_mask[j] = cube_mask[i];
    cube_used[j] = 0;
    j++;
  }
  n_cubes = j;
  return merged_any;
}

int cube_covers(int val, int mask, int minterm) {
  return (minterm & mask) == (val & mask);
}

int count_covered(int p, int *covered) {
  int m;
  int n = 0;
  for (m = 0; m < n_minterms; m++) {
    if (covered[m])
      continue;
    if (cube_covers(prime_val[p], prime_mask[p], minterms[m]))
      n++;
  }
  return n;
}

/* greedy set cover over the primes */
int select_cover() {
  int covered[256];
  int m;
  int p;
  int best;
  int best_gain;
  int gain;
  int selected = 0;
  int left = n_minterms;
  for (m = 0; m < n_minterms; m++)
    covered[m] = 0;
  while (left > 0) {
    best = -1;
    best_gain = 0;
    for (p = 0; p < n_primes; p++) {
      gain = count_covered(p, covered);
      if (gain > best_gain) {
        best_gain = gain;
        best = p;
      }
    }
    if (best == -1)
      break; /* should not happen: primes cover all minterms */
    for (m = 0; m < n_minterms; m++)
      if (!covered[m] &&
          cube_covers(prime_val[best], prime_mask[best], minterms[m])) {
        covered[m] = 1;
        left--;
      }
    selected++;
  }
  if (left > 0)
    abort();
  return selected;
}

int literal_count() {
  int p;
  int lits = 0;
  for (p = 0; p < n_primes; p++)
    lits += popcount(prime_mask[p]);
  return lits;
}

int main() {
  int full_mask;
  int m;
  int generations = 0;
  int cover;
  n_bits = read_int();
  n_minterms = read_int();
  full_mask = (1 << n_bits) - 1;
  for (m = 0; m < n_minterms; m++) {
    minterms[m] = read_int() & full_mask;
    add_cube(minterms[m], full_mask);
  }
  while (merge_generation()) {
    generations++;
    if (generations > 20)
      break;
  }
  cover = select_cover();
  print_str("minterms=");
  print_int(n_minterms);
  print_str(" primes=");
  print_int(n_primes);
  print_str(" cover=");
  print_int(cover);
  print_str(" lits=");
  print_int(literal_count());
  print_char('\n');
  return 0;
}
)MC";

/// n_bits, n_minterms, then distinct minterm values.
std::string makeMinterms(uint64_t Seed, int Bits, int Count) {
  Prng R(Seed);
  std::vector<int> All;
  for (int I = 0; I < (1 << Bits); ++I)
    All.push_back(I);
  // Fisher-Yates shuffle, take the first Count.
  for (size_t I = All.size(); I > 1; --I)
    std::swap(All[I - 1], All[R.nextBelow(I)]);
  std::string S = std::to_string(Bits) + " " + std::to_string(Count) + "\n";
  for (int I = 0; I < Count; ++I)
    S += std::to_string(All[I]) + " ";
  S += "\n";
  return S;
}

} // namespace

SuiteProgram sest::makeEspresso() {
  SuiteProgram P;
  P.Name = "espresso";
  P.PaperAnalogue = "espresso (SPEC92)";
  P.Description = "Minimize boolean functions";
  P.Source = Source;
  P.Inputs = {
      {"b6m28", makeMinterms(5, 6, 28), 5},
      {"b7m52", makeMinterms(17, 7, 52), 17},
      {"b6m40", makeMinterms(23, 6, 40), 23},
      {"b8m70", makeMinterms(47, 8, 70), 47},
      {"b7m36", makeMinterms(61, 7, 36), 61},
  };
  return P;
}

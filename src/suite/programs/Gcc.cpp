//===- suite/programs/Gcc.cpp - Tiny optimizing compiler ------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for SPEC92 "gcc" (the GNU C compiler): a miniature compiler
/// pipeline for assignment/expression statements — tokenizer, recursive
/// descent parser into malloc'd trees, constant folding and algebraic
/// simplification passes, stack-code generation, and a verifying VM that
/// executes the emitted code. Irregular, pointer-rich control flow with
/// deep recursion — the gcc-ish profile.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include "support/Prng.h"

#include <functional>
#include <string>

using namespace sest;

namespace {

const char *Source = R"MC(
/* cc0: compile "v = expr;" statements to stack code, then execute them */

struct tree {
  int kind;          /* 0 num, 1 var, 2 add, 3 sub, 4 mul, 5 div, 6 neg */
  int value;         /* number, or variable index */
  struct tree *left;
  struct tree *right;
};

/* token stream */
int tok_kind[4096];  /* 0 num, 1 var, 2 op, 3 end-of-statement, 4 eof */
int tok_val[4096];
int n_toks = 0;
int tok_pos = 0;

int var_values[26];
int code_ops[8192];  /* 0 push, 1 load, 2 add, 3 sub, 4 mul, 5 div, 6 neg, 7 store */
int code_args[8192];
int n_code = 0;

int stats_folded = 0;
int stats_nodes = 0;
int checksum = 0;

struct tree *new_tree(int kind, int value, struct tree *l, struct tree *r) {
  struct tree *t = (struct tree *)malloc(sizeof(struct tree));
  if (t == NULL)
    abort();
  t->kind = kind;
  t->value = value;
  t->left = l;
  t->right = r;
  stats_nodes++;
  return t;
}

void free_tree(struct tree *t) {
  if (t == NULL)
    return;
  free_tree(t->left);
  free_tree(t->right);
  free(t);
}

int is_digit(int c) {
  return c >= '0' && c <= '9';
}

int is_lower(int c) {
  return c >= 'a' && c <= 'z';
}

/* tokenize the whole input */
void tokenize() {
  int c = read_char();
  int v;
  n_toks = 0;
  while (c != -1 && n_toks < 4094) {
    if (c == ' ' || c == '\n' || c == '\t') {
      c = read_char();
      continue;
    }
    if (is_digit(c)) {
      v = 0;
      while (is_digit(c)) {
        v = v * 10 + c - '0';
        c = read_char();
      }
      tok_kind[n_toks] = 0;
      tok_val[n_toks] = v;
      n_toks++;
      continue;
    }
    if (is_lower(c)) {
      tok_kind[n_toks] = 1;
      tok_val[n_toks] = c - 'a';
      n_toks++;
      c = read_char();
      continue;
    }
    if (c == ';') {
      tok_kind[n_toks] = 3;
      n_toks++;
      c = read_char();
      continue;
    }
    tok_kind[n_toks] = 2;
    tok_val[n_toks] = c;
    n_toks++;
    c = read_char();
  }
  tok_kind[n_toks] = 4;
  n_toks++;
}

int peek_kind() { return tok_kind[tok_pos]; }
int peek_val() { return tok_val[tok_pos]; }

int at_op(int ch) {
  return tok_kind[tok_pos] == 2 && tok_val[tok_pos] == ch;
}

struct tree *parse_expr();

struct tree *parse_primary() {
  struct tree *t;
  if (peek_kind() == 0) {
    t = new_tree(0, peek_val(), NULL, NULL);
    tok_pos++;
    return t;
  }
  if (peek_kind() == 1) {
    t = new_tree(1, peek_val(), NULL, NULL);
    tok_pos++;
    return t;
  }
  if (at_op('(')) {
    tok_pos++;
    t = parse_expr();
    if (at_op(')'))
      tok_pos++;
    return t;
  }
  if (at_op('-')) {
    tok_pos++;
    return new_tree(6, 0, parse_primary(), NULL);
  }
  abort(); /* syntax error */
  return NULL;
}

struct tree *parse_term() {
  struct tree *l = parse_primary();
  while (at_op('*') || at_op('/')) {
    int op = peek_val();
    tok_pos++;
    if (op == '*')
      l = new_tree(4, 0, l, parse_primary());
    else
      l = new_tree(5, 0, l, parse_primary());
  }
  return l;
}

struct tree *parse_expr() {
  struct tree *l = parse_term();
  while (at_op('+') || at_op('-')) {
    int op = peek_val();
    tok_pos++;
    if (op == '+')
      l = new_tree(2, 0, l, parse_term());
    else
      l = new_tree(3, 0, l, parse_term());
  }
  return l;
}

int both_const(struct tree *t) {
  if (t->left == NULL || t->left->kind != 0)
    return 0;
  if (t->right == NULL || t->right->kind != 0)
    return 0;
  return 1;
}

/* bottom-up constant folding + algebraic identities */
struct tree *fold(struct tree *t) {
  int v;
  if (t == NULL)
    return NULL;
  t->left = fold(t->left);
  t->right = fold(t->right);
  if (t->kind == 6 && t->left->kind == 0) {
    v = -t->left->value;
    free_tree(t->left);
    t->kind = 0;
    t->value = v;
    t->left = NULL;
    stats_folded++;
    return t;
  }
  if (t->kind >= 2 && t->kind <= 5 && both_const(t)) {
    if (t->kind == 2)
      v = t->left->value + t->right->value;
    else if (t->kind == 3)
      v = t->left->value - t->right->value;
    else if (t->kind == 4)
      v = t->left->value * t->right->value;
    else if (t->right->value != 0)
      v = t->left->value / t->right->value;
    else
      v = 0;
    free_tree(t->left);
    free_tree(t->right);
    t->kind = 0;
    t->value = v;
    t->left = NULL;
    t->right = NULL;
    stats_folded++;
    return t;
  }
  /* x*1 = x, x+0 = x, x*0 = 0 */
  if ((t->kind == 4 || t->kind == 2) && t->right != NULL &&
      t->right->kind == 0) {
    if (t->kind == 4 && t->right->value == 1) {
      struct tree *keep = t->left;
      free(t->right);
      free(t);
      stats_folded++;
      return keep;
    }
    if (t->kind == 2 && t->right->value == 0) {
      struct tree *keep2 = t->left;
      free(t->right);
      free(t);
      stats_folded++;
      return keep2;
    }
    if (t->kind == 4 && t->right->value == 0) {
      free_tree(t->left);
      free(t->right);
      t->kind = 0;
      t->value = 0;
      t->left = NULL;
      t->right = NULL;
      stats_folded++;
      return t;
    }
  }
  return t;
}

void emit(int op, int arg) {
  if (n_code >= 8192)
    abort();
  code_ops[n_code] = op;
  code_args[n_code] = arg;
  n_code++;
}

void gen_code(struct tree *t) {
  if (t->kind == 0) {
    emit(0, t->value);
    return;
  }
  if (t->kind == 1) {
    emit(1, t->value);
    return;
  }
  if (t->kind == 6) {
    gen_code(t->left);
    emit(6, 0);
    return;
  }
  gen_code(t->left);
  gen_code(t->right);
  emit(t->kind, 0);
}

/* stack VM over the generated code */
int run_code(int start, int end) {
  int stack[64];
  int sp = 0;
  int pc;
  int a;
  int b;
  for (pc = start; pc < end; pc++) {
    int op = code_ops[pc];
    switch (op) {
    case 0:
      stack[sp] = code_args[pc];
      sp++;
      break;
    case 1:
      stack[sp] = var_values[code_args[pc]];
      sp++;
      break;
    case 6:
      stack[sp - 1] = -stack[sp - 1];
      break;
    case 7:
      sp--;
      var_values[code_args[pc]] = stack[sp];
      break;
    default:
      sp--;
      b = stack[sp];
      a = stack[sp - 1];
      if (op == 2)
        stack[sp - 1] = a + b;
      else if (op == 3)
        stack[sp - 1] = a - b;
      else if (op == 4)
        stack[sp - 1] = a * b;
      else if (b != 0)
        stack[sp - 1] = a / b;
      else
        stack[sp - 1] = 0;
      break;
    }
  }
  if (sp != 0)
    abort();
  return 0;
}

/* interpret the tree directly, to check the generated code */
int eval_tree(struct tree *t) {
  int l;
  int r;
  if (t->kind == 0)
    return t->value;
  if (t->kind == 1)
    return var_values[t->value];
  if (t->kind == 6)
    return -eval_tree(t->left);
  l = eval_tree(t->left);
  r = eval_tree(t->right);
  if (t->kind == 2)
    return l + r;
  if (t->kind == 3)
    return l - r;
  if (t->kind == 4)
    return l * r;
  if (r != 0)
    return l / r;
  return 0;
}

/* compile one "v = expr ;" statement; returns 0 at eof */
int compile_statement() {
  int target;
  int expected;
  int start;
  struct tree *t;
  if (peek_kind() == 4)
    return 0;
  if (peek_kind() != 1)
    abort();
  target = peek_val();
  tok_pos++;
  if (!at_op('='))
    abort();
  tok_pos++;
  t = parse_expr();
  if (peek_kind() == 3)
    tok_pos++;
  t = fold(t);
  expected = eval_tree(t);
  start = n_code;
  gen_code(t);
  emit(7, target);
  run_code(start, n_code);
  if (var_values[target] != expected)
    abort();
  checksum = (checksum * 37 + var_values[target]) % 1000000007;
  free_tree(t);
  return 1;
}

int main() {
  int n_stmts = 0;
  tokenize();
  while (compile_statement())
    n_stmts++;
  print_str("stmts=");
  print_int(n_stmts);
  print_str(" nodes=");
  print_int(stats_nodes);
  print_str(" folded=");
  print_int(stats_folded);
  print_str(" code=");
  print_int(n_code);
  print_str(" check=");
  print_int(checksum % 100000);
  print_char('\n');
  return 0;
}
)MC";

/// Generates "v = expr;" statements with nested arithmetic.
std::string makeStatements(uint64_t Seed, int Count, int Depth) {
  Prng R(Seed);
  std::function<std::string(int)> Gen = [&](int D) -> std::string {
    if (D == 0 || R.nextBelow(3) == 0) {
      if (R.nextBelow(2) == 0)
        return std::string(1, static_cast<char>('a' + R.nextBelow(8)));
      return std::to_string(R.nextBelow(50));
    }
    std::string L = Gen(D - 1);
    std::string Rhs = Gen(D - 1);
    const char *Ops[] = {"+", "-", "*", "/", "+", "*"};
    std::string E = "(" + L + Ops[R.nextBelow(6)] + Rhs + ")";
    if (R.nextBelow(8) == 0)
      E = "-" + E;
    return E;
  };
  std::string Out;
  for (int I = 0; I < Count; ++I) {
    Out += std::string(1, static_cast<char>('a' + R.nextBelow(8)));
    Out += " = " + Gen(Depth) + ";\n";
  }
  return Out;
}

} // namespace

SuiteProgram sest::makeGcc() {
  SuiteProgram P;
  P.Name = "gcc";
  P.PaperAnalogue = "gcc (SPEC92)";
  P.Description = "GNU C compiler (mini compile-fold-codegen-verify)";
  P.Source = Source;
  P.Inputs = {
      {"s12d4", makeStatements(3, 12, 4), 3},
      {"s20d3", makeStatements(29, 20, 3), 29},
      {"s8d5", makeStatements(59, 8, 5), 59},
      {"s16d4", makeStatements(83, 16, 4), 83},
      {"s24d3", makeStatements(97, 24, 3), 97},
  };
  return P;
}

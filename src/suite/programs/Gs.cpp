//===- suite/programs/Gs.cpp - PostScript-style interpreter ----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for "gs" (PostScript previewer): a stack-machine interpreter
/// whose operators are *all* dispatched through a function-pointer table
/// — about half of this program's functions are referenced indirectly,
/// reproducing the case where the paper's pointer-node approximation
/// breaks down ("the only one of the programs in which a complex system
/// of function pointers is used heavily enough for this analysis to fail
/// is gs, in which some 650 functions (about half the functions in the
/// program) are referenced indirectly", §5.2.1).
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include "support/Prng.h"

#include <string>

using namespace sest;

namespace {

const char *Source = R"MC(
/* psvm: a postscript-flavored stack machine. lowercase letters are
   operators dispatched through op_table; digits push values. */

int stack_[256];
int sp = 0;
int page_x = 0;
int page_y = 0;
int ink = 0;
int path_len = 0;
int ops_run = 0;
int checksum = 0;

void vm_fault() {
  print_str("vm fault\n");
  abort();
}

void push(int v) {
  if (sp >= 256)
    vm_fault();
  stack_[sp] = v;
  sp++;
}

int pop() {
  if (sp <= 0)
    vm_fault();
  sp--;
  return stack_[sp];
}

void note(int v) {
  checksum = (checksum * 33 + v + 7) % 1000000007;
}

/* ---- operators (all called through the dispatch table) ---- */

void op_add() { push(pop() + pop()); }

void op_sub() {
  int b = pop();
  push(pop() - b);
}

void op_mul() { push(pop() * pop()); }

void op_div() {
  int b = pop();
  int a = pop();
  if (b == 0)
    push(0);
  else
    push(a / b);
}

void op_dup() {
  int a = pop();
  push(a);
  push(a);
}

void op_exch() {
  int b = pop();
  int a = pop();
  push(b);
  push(a);
}

void op_pop() { note(pop()); }

void op_neg() { push(-pop()); }

void op_abs() {
  int a = pop();
  if (a < 0)
    a = -a;
  push(a);
}

void op_moveto() {
  page_y = pop();
  page_x = pop();
  note(page_x * 31 + page_y);
}

void op_lineto() {
  int y = pop();
  int x = pop();
  int dx = x - page_x;
  int dy = y - page_y;
  if (dx < 0)
    dx = -dx;
  if (dy < 0)
    dy = -dy;
  path_len += dx + dy;
  page_x = x;
  page_y = y;
}

void op_setink() {
  ink = pop() % 256;
  if (ink < 0)
    ink += 256;
}

void op_fill() {
  note(path_len * (ink + 1));
  path_len = 0;
}

void op_index() {
  int n = pop();
  if (n < 0 || n >= sp)
    vm_fault();
  push(stack_[sp - 1 - n]);
}

void op_roll() {
  int b = pop();
  int a = pop();
  int t;
  push(a);
  push(b);
  if (sp >= 3) {
    t = stack_[sp - 3];
    stack_[sp - 3] = stack_[sp - 1];
    stack_[sp - 1] = t;
  }
}

void op_min() {
  int b = pop();
  int a = pop();
  push(a < b ? a : b);
}

void op_max() {
  int b = pop();
  int a = pop();
  push(a > b ? a : b);
}

void op_mod() {
  int b = pop();
  int a = pop();
  if (b == 0)
    push(0);
  else
    push(a % b);
}

void op_clear() {
  while (sp > 0)
    note(pop());
}

void op_count() { push(sp); }

/* ---- dispatch: 20 operators, indexed 'a'..'t' ---- */

void (*op_table[20])() = {
  op_add,    op_sub,   op_mul,  op_div,  op_dup,
  op_exch,   op_pop,   op_neg,  op_abs,  op_moveto,
  op_lineto, op_setink, op_fill, op_index, op_roll,
  op_min,    op_max,   op_mod,  op_clear, op_count };

void run_program() {
  int c = read_char();
  int v;
  while (c != -1) {
    if (c >= '0' && c <= '9') {
      v = 0;
      while (c >= '0' && c <= '9') {
        v = v * 10 + c - '0';
        c = read_char();
      }
      push(v);
      continue;
    }
    if (c >= 'a' && c <= 't') {
      op_table[c - 'a']();
      ops_run++;
      c = read_char();
      continue;
    }
    c = read_char();
  }
}

int main() {
  run_program();
  print_str("ops=");
  print_int(ops_run);
  print_str(" sp=");
  print_int(sp);
  print_str(" path=");
  print_int(path_len);
  print_str(" check=");
  print_int(checksum % 100000);
  print_char('\n');
  return 0;
}
)MC";

/// Generates a token stream that keeps the stack healthy: tracks an
/// approximate stack depth and only emits operators that have enough
/// operands.
std::string makeProgram(uint64_t Seed, int Tokens) {
  Prng R(Seed);
  std::string S;
  int Depth = 0;
  for (int I = 0; I < Tokens; ++I) {
    if (Depth < 2 || R.nextBelow(3) == 0) {
      S += std::to_string(R.nextBelow(100)) + " ";
      ++Depth;
      continue;
    }
    // Operators by effect on depth. Letters: a..t.
    // -1: a(add) b(sub) c(mul) d(div) g(pop) p(min) q(max) r(mod)
    //  0: f(exch) h(neg) i(abs) l(setink needs 1) o(roll)
    // +1: e(dup) t(count)
    // -2: j(moveto) k(lineto)
    static const char Minus1[] = {'a', 'b', 'c', 'd', 'g', 'p', 'q', 'r'};
    static const char Zero[] = {'f', 'h', 'i', 'o'};
    unsigned Pick = static_cast<unsigned>(R.nextBelow(16));
    if (Pick < 7) {
      S += Minus1[R.nextBelow(8)];
      --Depth;
    } else if (Pick < 10 && Depth >= 2) {
      S += Zero[R.nextBelow(4)];
    } else if (Pick < 12) {
      S += 'e'; // dup
      ++Depth;
    } else if (Pick < 14 && Depth >= 2) {
      S += R.nextBelow(2) == 0 ? 'j' : 'k'; // moveto/lineto
      Depth -= 2;
    } else if (Pick == 14 && Depth >= 1) {
      S += 'l'; // setink
      --Depth;
    } else {
      S += 'm'; // fill
    }
    S += " ";
    if (R.nextBelow(40) == 0) {
      S += "s "; // clear
      Depth = 0;
    }
  }
  return S;
}

} // namespace

SuiteProgram sest::makeGs() {
  SuiteProgram P;
  P.Name = "gs";
  P.PaperAnalogue = "gs";
  P.Description = "PostScript previewer (pointer-dispatched stack machine)";
  P.Source = Source;
  P.Inputs = {
      {"t400", makeProgram(27, 400), 27},
      {"t700", makeProgram(53, 700), 53},
      {"t300", makeProgram(79, 300), 79},
      {"t900", makeProgram(97, 900), 97},
      {"t550", makeProgram(131, 550), 131},
  };
  return P;
}

//===- suite/programs/Mpeg.cpp - Block transform decoder ------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for "mpeg" (play MPEG video files): a block-based decoder —
/// run-length/entropy decode of coefficient blocks from the input
/// stream, dequantization, a separable 8×8 butterfly transform (a
/// Walsh-Hadamard transform standing in for the IDCT), pixel clamping,
/// and frame differencing. Mixed loop and data-dependent branch
/// behavior.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include "support/Prng.h"

#include <string>

using namespace sest;

namespace {

const char *Source = R"MC(
/* block decoder: RLE -> dequant -> 8x8 WHT -> clamp -> frame update */

int zigzag[64] = {
   0,  1,  8, 16,  9,  2,  3, 10,
  17, 24, 32, 25, 18, 11,  4,  5,
  12, 19, 26, 33, 40, 48, 41, 34,
  27, 20, 13,  6,  7, 14, 21, 28,
  35, 42, 49, 56, 57, 50, 43, 36,
  29, 22, 15, 23, 30, 37, 44, 51,
  58, 59, 52, 45, 38, 31, 39, 46,
  53, 60, 61, 54, 47, 55, 62, 63 };

int quant[64];
int coeffs[64];
int block[64];
int frame[1024];   /* 4x4 blocks of 8x8 = 32x32 pixels */
int n_blocks_decoded = 0;
int checksum = 0;

void init_quant(int quality) {
  int i;
  for (i = 0; i < 64; i++)
    quant[i] = 1 + (i * quality) / 32;
}

/* read one run-length pair list from input; returns 0 at end of stream */
int read_block_coeffs() {
  int pos = 0;
  int run;
  int level;
  int i;
  for (i = 0; i < 64; i++)
    coeffs[i] = 0;
  run = read_int();
  if (run == -9999)
    return 0;
  while (run != -1) {
    level = read_int();
    pos += run;
    if (pos >= 64)
      break;
    coeffs[zigzag[pos]] = level;
    pos++;
    run = read_int();
  }
  return 1;
}

void dequantize() {
  int i;
  for (i = 0; i < 64; i++) {
    if (coeffs[i] == 0)
      continue; /* sparse blocks: most coefficients are zero */
    block[i] = coeffs[i] * quant[i];
  }
  for (i = 0; i < 64; i++)
    if (coeffs[i] == 0)
      block[i] = 0;
}

/* 8-point butterfly (Walsh-Hadamard) on a strided vector */
void butterfly8(int base, int stride) {
  int tmp[8];
  int i;
  int half;
  int step;
  for (i = 0; i < 8; i++)
    tmp[i] = block[base + i * stride];
  for (step = 1; step < 8; step = step * 2) {
    for (i = 0; i < 8; i++) {
      half = i / step % 2;
      if (half == 0)
        tmp[i] = tmp[i] + tmp[i + step];
      else
        tmp[i] = tmp[i - step] - 2 * tmp[i];
    }
  }
  for (i = 0; i < 8; i++)
    block[base + i * stride] = tmp[i];
}

void transform_block() {
  int r;
  int c;
  for (r = 0; r < 8; r++)
    butterfly8(r * 8, 1);
  for (c = 0; c < 8; c++)
    butterfly8(c, 8);
}

int clamp_pixel(int v) {
  if (v < 0)
    return 0;
  if (v > 255)
    return 255;
  return v;
}

void add_to_frame(int bx, int by) {
  int r;
  int c;
  int pix;
  for (r = 0; r < 8; r++) {
    for (c = 0; c < 8; c++) {
      pix = frame[(by * 8 + r) * 32 + bx * 8 + c];
      pix = clamp_pixel(pix + block[r * 8 + c] / 16);
      frame[(by * 8 + r) * 32 + bx * 8 + c] = pix;
      checksum = (checksum * 17 + pix) % 1000000007;
    }
  }
}

int frame_energy() {
  int i;
  int e = 0;
  for (i = 0; i < 1024; i++)
    e += frame[i] * frame[i] / 1024;
  return e;
}

int main() {
  int quality = read_int();
  int bx = 0;
  int by = 0;
  init_quant(quality);
  while (read_block_coeffs()) {
    dequantize();
    transform_block();
    add_to_frame(bx, by);
    n_blocks_decoded++;
    bx++;
    if (bx == 4) {
      bx = 0;
      by = (by + 1) % 4;
    }
  }
  print_str("blocks=");
  print_int(n_blocks_decoded);
  print_str(" energy=");
  print_int(frame_energy());
  print_str(" check=");
  print_int(checksum % 100000);
  print_char('\n');
  return 0;
}
)MC";

/// Builds an input stream: quality, then blocks of (run, level) pairs
/// each terminated by -1, and a -9999 end marker.
std::string makeStream(uint64_t Seed, int Quality, int Blocks) {
  Prng R(Seed);
  std::string S = std::to_string(Quality) + "\n";
  for (int B = 0; B < Blocks; ++B) {
    int Pos = 0;
    // Sparse coefficient blocks: a handful of nonzeros early in zigzag
    // order, like real DCT data.
    while (Pos < 64) {
      int Run = static_cast<int>(R.nextBelow(9));
      Pos += Run + 1;
      if (Pos >= 64 || R.nextBelow(5) == 0)
        break;
      int Level = static_cast<int>(R.nextInRange(-40, 40));
      if (Level == 0)
        Level = 7;
      S += std::to_string(Run) + " " + std::to_string(Level) + " ";
    }
    S += "-1\n";
  }
  S += "-9999\n";
  return S;
}

} // namespace

SuiteProgram sest::makeMpeg() {
  SuiteProgram P;
  P.Name = "mpeg";
  P.PaperAnalogue = "mpeg";
  P.Description = "Play MPEG video files (block transform decoder)";
  P.Source = Source;
  P.Inputs = {
      {"q8x48", makeStream(101, 8, 48), 101},
      {"q16x64", makeStream(103, 16, 64), 103},
      {"q4x32", makeStream(107, 4, 32), 107},
      {"q24x56", makeStream(109, 24, 56), 109},
      {"q12x40", makeStream(127, 12, 40), 127},
  };
  return P;
}

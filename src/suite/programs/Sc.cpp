//===- suite/programs/Sc.cpp - Spreadsheet evaluator ----------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for SPEC92 "sc" (Unix spreadsheet): a cell grid where each
/// cell is a constant or a small formula over other cells (binary op of
/// two references / constants, or a range SUM). Recursive dependency
/// evaluation with memoization and cycle detection, plus a recalculation
/// loop after cell updates.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include "support/Prng.h"

#include <string>

using namespace sest;

namespace {

const char *Source = R"MC(
/* sc0: 16x8 spreadsheet with formulas and recalculation */

/* cell kinds: 0 empty, 1 constant, 2 binop, 3 range sum */
int cell_kind[128];
double cell_const[128];
int cell_op[128];      /* 0 + , 1 - , 2 * , 3 safediv */
int cell_ref1[128];
int cell_ref2[128];

double cell_value[128];
int cell_state[128];   /* 0 unevaluated, 1 in progress, 2 done */
int eval_count = 0;
int cycle_errors = 0;

int cell_index(int row, int col) {
  return row * 8 + col;
}

double eval_cell(int idx);

double ref_value(int idx) {
  if (idx < 0 || idx >= 128)
    return 0.0;
  return eval_cell(idx);
}

double apply_op(int op, double a, double b) {
  if (op == 0)
    return a + b;
  if (op == 1)
    return a - b;
  if (op == 2)
    return a * b;
  if (b < 0.0001 && b > -0.0001)
    return 0.0;
  return a / b;
}

double sum_range(int from, int to) {
  int i;
  double s = 0.0;
  if (from > to) {
    int t = from;
    from = to;
    to = t;
  }
  for (i = from; i <= to; i++)
    s += ref_value(i);
  return s;
}

double eval_cell(int idx) {
  double v;
  eval_count++;
  if (cell_state[idx] == 2)
    return cell_value[idx];
  if (cell_state[idx] == 1) {
    /* dependency cycle: sc treats it as an error value */
    cycle_errors++;
    return 0.0;
  }
  cell_state[idx] = 1;
  if (cell_kind[idx] == 0)
    v = 0.0;
  else if (cell_kind[idx] == 1)
    v = cell_const[idx];
  else if (cell_kind[idx] == 2)
    v = apply_op(cell_op[idx], ref_value(cell_ref1[idx]),
                 ref_value(cell_ref2[idx]));
  else
    v = sum_range(cell_ref1[idx], cell_ref2[idx]);
  cell_value[idx] = v;
  cell_state[idx] = 2;
  return v;
}

void invalidate_all() {
  int i;
  for (i = 0; i < 128; i++)
    cell_state[i] = 0;
}

void recalculate() {
  int i;
  invalidate_all();
  for (i = 0; i < 128; i++)
    eval_cell(i);
}

void load_sheet() {
  int n = read_int();
  int i;
  int idx;
  int kind;
  for (i = 0; i < n; i++) {
    idx = read_int() % 128;
    kind = read_int();
    if (kind == 1) {
      cell_kind[idx] = 1;
      cell_const[idx] = read_int() / 10.0;
    } else if (kind == 2) {
      cell_kind[idx] = 2;
      cell_op[idx] = read_int() % 4;
      cell_ref1[idx] = read_int() % 128;
      cell_ref2[idx] = read_int() % 128;
    } else {
      cell_kind[idx] = 3;
      cell_ref1[idx] = read_int() % 128;
      cell_ref2[idx] = read_int() % 128;
    }
  }
}

void apply_updates() {
  int n = read_int();
  int i;
  int idx;
  for (i = 0; i < n; i++) {
    idx = read_int() % 128;
    cell_kind[idx] = 1;
    cell_const[idx] = read_int() / 10.0;
    recalculate();
  }
}

double sheet_total() {
  int i;
  double t = 0.0;
  for (i = 0; i < 128; i++)
    t += cell_value[i];
  return t;
}

int count_nonzero() {
  int i;
  int n = 0;
  for (i = 0; i < 128; i++)
    if (cell_value[i] > 0.0001 || cell_value[i] < -0.0001)
      n++;
  return n;
}

int main() {
  load_sheet();
  recalculate();
  apply_updates();
  print_str("total10=");
  print_int((int)(sheet_total() * 10.0));
  print_str(" nonzero=");
  print_int(count_nonzero());
  print_str(" evals=");
  print_int(eval_count);
  print_str(" cycles=");
  print_int(cycle_errors);
  print_char('\n');
  return 0;
}
)MC";

/// Sheet definition + update stream.
std::string makeSheet(uint64_t Seed, int Defs, int Updates) {
  Prng R(Seed);
  std::string S = std::to_string(Defs) + "\n";
  for (int I = 0; I < Defs; ++I) {
    int Idx = static_cast<int>(R.nextBelow(128));
    int Kind = 1 + static_cast<int>(R.nextBelow(3));
    S += std::to_string(Idx) + " " + std::to_string(Kind) + " ";
    if (Kind == 1) {
      S += std::to_string(R.nextInRange(-500, 500));
    } else if (Kind == 2) {
      S += std::to_string(R.nextBelow(4)) + " " +
           std::to_string(R.nextBelow(128)) + " " +
           std::to_string(R.nextBelow(128));
    } else {
      // Ranges kept short so evaluation stays fast.
      int From = static_cast<int>(R.nextBelow(120));
      S += std::to_string(From) + " " +
           std::to_string(From + R.nextBelow(8));
    }
    S += "\n";
  }
  S += std::to_string(Updates) + "\n";
  for (int I = 0; I < Updates; ++I)
    S += std::to_string(R.nextBelow(128)) + " " +
         std::to_string(R.nextInRange(-300, 300)) + "\n";
  return S;
}

} // namespace

SuiteProgram sest::makeSc() {
  SuiteProgram P;
  P.Name = "sc";
  P.PaperAnalogue = "sc (SPEC92)";
  P.Description = "Unix spreadsheet (formula evaluation)";
  P.Source = Source;
  P.Inputs = {
      {"d60u12", makeSheet(9, 60, 12), 9},
      {"d90u8", makeSheet(21, 90, 8), 21},
      {"d40u20", makeSheet(33, 40, 20), 33},
      {"d75u15", makeSheet(57, 75, 15), 57},
      {"d55u10", makeSheet(73, 55, 10), 73},
  };
  return P;
}

//===- suite/programs/Water.cpp - Molecular dynamics ----------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for "water" (simulate a system of water molecules): an
/// O(n²) molecular-dynamics kernel with a Lennard-Jones-like potential,
/// cutoff tests, and velocity-Verlet integration.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

using namespace sest;

namespace {

const char *Source = R"MC(
/* molecular dynamics of n point "molecules" in a periodic box */

double px[32]; double py[32]; double pz[32];
double vx[32]; double vy[32]; double vz[32];
double fx[32]; double fy[32]; double fz[32];
int n_mol = 0;
double box = 10.0;
double pot_energy = 0.0;

double wrap(double x) {
  while (x >= box)
    x -= box;
  while (x < 0.0)
    x += box;
  return x;
}

double min_image(double d) {
  if (d > box * 0.5)
    return d - box;
  if (d < 0.0 - box * 0.5)
    return d + box;
  return d;
}

void init_system(int n) {
  int i;
  n_mol = n;
  for (i = 0; i < n; i++) {
    px[i] = (rand() % 1000) / 100.0;
    py[i] = (rand() % 1000) / 100.0;
    pz[i] = (rand() % 1000) / 100.0;
    vx[i] = (rand() % 200) / 1000.0 - 0.1;
    vy[i] = (rand() % 200) / 1000.0 - 0.1;
    vz[i] = (rand() % 200) / 1000.0 - 0.1;
  }
}

void zero_forces() {
  int i;
  for (i = 0; i < n_mol; i++) {
    fx[i] = 0.0;
    fy[i] = 0.0;
    fz[i] = 0.0;
  }
}

/* pair force with a cutoff; soft-core to avoid singularities */
void pair_force(int i, int j) {
  double dx = min_image(px[i] - px[j]);
  double dy = min_image(py[i] - py[j]);
  double dz = min_image(pz[i] - pz[j]);
  double r2 = dx * dx + dy * dy + dz * dz + 0.2;
  double inv2;
  double inv6;
  double f;
  if (r2 > 9.0)
    return; /* beyond cutoff */
  inv2 = 1.0 / r2;
  inv6 = inv2 * inv2 * inv2;
  f = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
  pot_energy += 4.0 * inv6 * (inv6 - 1.0);
  fx[i] += f * dx;
  fy[i] += f * dy;
  fz[i] += f * dz;
  fx[j] -= f * dx;
  fy[j] -= f * dy;
  fz[j] -= f * dz;
}

void compute_forces() {
  int i;
  int j;
  pot_energy = 0.0;
  zero_forces();
  for (i = 0; i < n_mol; i++)
    for (j = i + 1; j < n_mol; j++)
      pair_force(i, j);
}

void integrate(double dt) {
  int i;
  for (i = 0; i < n_mol; i++) {
    vx[i] += fx[i] * dt;
    vy[i] += fy[i] * dt;
    vz[i] += fz[i] * dt;
    px[i] = wrap(px[i] + vx[i] * dt);
    py[i] = wrap(py[i] + vy[i] * dt);
    pz[i] = wrap(pz[i] + vz[i] * dt);
  }
}

double kinetic_energy() {
  int i;
  double k = 0.0;
  for (i = 0; i < n_mol; i++)
    k += 0.5 * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
  return k;
}

int main() {
  int seed = read_int();
  int n = read_int();
  int steps = read_int();
  int s;
  if (n > 32)
    n = 32;
  srand(seed);
  init_system(n);
  for (s = 0; s < steps; s++) {
    compute_forces();
    integrate(0.004);
  }
  print_str("n=");
  print_int(n_mol);
  print_str(" ke1000=");
  print_int((int)(kinetic_energy() * 1000.0));
  print_str(" pe1000=");
  print_int((int)(pot_energy * 1000.0));
  print_char('\n');
  return 0;
}
)MC";

} // namespace

SuiteProgram sest::makeWater() {
  SuiteProgram P;
  P.Name = "water";
  P.PaperAnalogue = "water";
  P.Description = "Simulate a system of water molecules";
  P.Source = Source;
  P.Inputs = {
      {"n16s40", "7 16 40", 7},
      {"n24s30", "11 24 30", 11},
      {"n20s50", "19 20 50", 19},
      {"n28s25", "23 28 25", 23},
      {"n18s35", "37 18 35", 37},
  };
  return P;
}

//===- suite/programs/Xlisp.cpp - Lisp interpreter -------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stand-in for SPEC92 "xlisp" (a Lisp interpreter): an s-expression
/// read/eval/print loop over a cons-cell heap with mark-sweep garbage
/// collection, where *every builtin is dispatched through a function
/// pointer table* — the paper's key case for the Markov pointer node
/// ("all the 173 built-in Lisp functions are called by pointer. In
/// practice ... the Lisp interpreter spends most of its time in the
/// read/eval/print loop and in garbage collection", §5.2.1).
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include "support/Prng.h"

#include <functional>
#include <string>

using namespace sest;

namespace {

const char *Source = R"MC(
/* xlisp0: s-expression REPL with mark-sweep GC and pointer-dispatched
   builtins. value encoding: -1 = nil, otherwise a cell index. */

int tag_[4096];   /* 0 free, 1 cons, 2 int, 3 opcode */
int car_[4096];
int cdr_[4096];
int marked[4096];
int free_head = -1;
int cells_in_use = 0;
int gc_runs = 0;
int gc_freed = 0;
int eval_calls = 0;

int cur_ch = -2;  /* lookahead; -2 = not primed */

void heap_init() {
  int i;
  free_head = -1;
  for (i = 4095; i >= 0; i--) {
    tag_[i] = 0;
    cdr_[i] = free_head;
    free_head = i;
  }
  cells_in_use = 0;
}

void mark(int c) {
  if (c < 0)
    return;
  if (marked[c])
    return;
  marked[c] = 1;
  if (tag_[c] == 1) {
    mark(car_[c]);
    mark(cdr_[c]);
  }
}

void sweep() {
  int i;
  for (i = 0; i < 4096; i++) {
    if (tag_[i] != 0 && !marked[i]) {
      tag_[i] = 0;
      cdr_[i] = free_head;
      free_head = i;
      cells_in_use--;
      gc_freed++;
    }
  }
}

void gc(int root) {
  int i;
  gc_runs++;
  for (i = 0; i < 4096; i++)
    marked[i] = 0;
  mark(root);
  sweep();
}

int alloc_cell(int t, int a, int d) {
  int c;
  if (free_head == -1) {
    print_str("heap exhausted\n");
    abort();
  }
  c = free_head;
  free_head = cdr_[c];
  tag_[c] = t;
  car_[c] = a;
  cdr_[c] = d;
  cells_in_use++;
  return c;
}

int make_int(int v) { return alloc_cell(2, v, -1); }
int make_op(int code) { return alloc_cell(3, code, -1); }
int cons(int a, int d) { return alloc_cell(1, a, d); }

int int_of(int c) {
  if (c < 0 || tag_[c] != 2)
    return 0;
  return car_[c];
}

/* ---- reader ---- */

int next_ch() {
  int c = cur_ch;
  cur_ch = read_char();
  return c;
}

void prime() {
  if (cur_ch == -2)
    cur_ch = read_char();
}

void skip_spaces() {
  while (cur_ch == ' ' || cur_ch == '\n' || cur_ch == '\t')
    next_ch();
}

/* opcodes: 0 add, 1 sub, 2 mul, 3 div, 4 car, 5 cdr, 6 cons, 7 eq,
   8 lt, 9 len, 10 sum, 11 max, 12 if (special form) */
int name_code(int c0, int c1, int c2) {
  if (c0 == 'a')
    return 0;
  if (c0 == 's') {
    if (c1 == 'u' && c2 == 'b')
      return 1;
    return 10; /* sum */
  }
  if (c0 == 'm') {
    if (c1 == 'u')
      return 2;
    return 11; /* max */
  }
  if (c0 == 'd')
    return 3;
  if (c0 == 'c') {
    if (c1 == 'a')
      return 4;
    if (c1 == 'd')
      return 5;
    return 6; /* cons */
  }
  if (c0 == 'e')
    return 7;
  if (c0 == 'l') {
    if (c1 == 't')
      return 8;
    return 9; /* len */
  }
  if (c0 == 'i')
    return 12;
  print_str("unknown name\n");
  abort();
  return -1;
}

int read_form();

int read_list() {
  int head;
  int rest;
  skip_spaces();
  if (cur_ch == ')') {
    next_ch();
    return -1;
  }
  if (cur_ch == -1) {
    print_str("unterminated list\n");
    abort();
  }
  head = read_form();
  rest = read_list();
  return cons(head, rest);
}

int read_form() {
  int neg = 0;
  int v = 0;
  int c0;
  int c1;
  int c2;
  skip_spaces();
  if (cur_ch == -1)
    return -2; /* eof marker */
  if (cur_ch == '(') {
    next_ch();
    return read_list();
  }
  if (cur_ch == '-' || (cur_ch >= '0' && cur_ch <= '9')) {
    if (cur_ch == '-') {
      neg = 1;
      next_ch();
    }
    while (cur_ch >= '0' && cur_ch <= '9') {
      v = v * 10 + cur_ch - '0';
      next_ch();
    }
    if (neg)
      v = -v;
    return make_int(v);
  }
  /* a name: letters only, at most 4 matter */
  c0 = cur_ch;
  next_ch();
  c1 = 0;
  c2 = 0;
  if (cur_ch >= 'a' && cur_ch <= 'z') {
    c1 = cur_ch;
    next_ch();
  }
  if (cur_ch >= 'a' && cur_ch <= 'z') {
    c2 = cur_ch;
    next_ch();
  }
  while (cur_ch >= 'a' && cur_ch <= 'z')
    next_ch();
  return make_op(name_code(c0, c1, c2));
}

/* ---- evaluator with pointer-dispatched builtins ---- */

int eval(int form);

int fn_add(int args) {
  int s = 0;
  while (args != -1) {
    s += int_of(car_[args]);
    args = cdr_[args];
  }
  return make_int(s);
}

int fn_sub(int args) {
  int s;
  if (args == -1)
    return make_int(0);
  s = int_of(car_[args]);
  args = cdr_[args];
  while (args != -1) {
    s -= int_of(car_[args]);
    args = cdr_[args];
  }
  return make_int(s);
}

int fn_mul(int args) {
  int p = 1;
  while (args != -1) {
    p *= int_of(car_[args]);
    args = cdr_[args];
  }
  return make_int(p);
}

int fn_div(int args) {
  int s;
  int d;
  if (args == -1)
    return make_int(0);
  s = int_of(car_[args]);
  args = cdr_[args];
  while (args != -1) {
    d = int_of(car_[args]);
    if (d == 0)
      d = 1;
    s /= d;
    args = cdr_[args];
  }
  return make_int(s);
}

int fn_car(int args) {
  int v;
  if (args == -1)
    return -1;
  v = car_[args];
  if (v < 0 || tag_[v] != 1)
    return v;
  return car_[v];
}

int fn_cdr(int args) {
  int v;
  if (args == -1)
    return -1;
  v = car_[args];
  if (v < 0 || tag_[v] != 1)
    return -1;
  return cdr_[v];
}

int fn_cons(int args) {
  int a = -1;
  int d = -1;
  if (args != -1) {
    a = car_[args];
    if (cdr_[args] != -1)
      d = car_[cdr_[args]];
  }
  return cons(a, d);
}

int fn_eq(int args) {
  int a;
  int b;
  if (args == -1 || cdr_[args] == -1)
    return make_int(0);
  a = int_of(car_[args]);
  b = int_of(car_[cdr_[args]]);
  return make_int(a == b);
}

int fn_lt(int args) {
  int a;
  int b;
  if (args == -1 || cdr_[args] == -1)
    return make_int(0);
  a = int_of(car_[args]);
  b = int_of(car_[cdr_[args]]);
  return make_int(a < b);
}

int fn_len(int args) {
  int v;
  int n = 0;
  if (args == -1)
    return make_int(0);
  v = car_[args];
  while (v != -1 && tag_[v] == 1) {
    n++;
    v = cdr_[v];
  }
  return make_int(n);
}

int fn_sum(int args) {
  int v;
  int s = 0;
  if (args == -1)
    return make_int(0);
  v = car_[args];
  while (v != -1 && tag_[v] == 1) {
    s += int_of(car_[v]);
    v = cdr_[v];
  }
  return make_int(s);
}

int fn_max(int args) {
  int best = -999999;
  int v;
  while (args != -1) {
    v = int_of(car_[args]);
    if (v > best)
      best = v;
    args = cdr_[args];
  }
  return make_int(best);
}

/* every builtin call goes through this table */
int (*builtins[12])(int) = {
  fn_add, fn_sub, fn_mul, fn_div, fn_car, fn_cdr,
  fn_cons, fn_eq, fn_lt, fn_len, fn_sum, fn_max };

int eval_args(int list) {
  int head;
  if (list == -1)
    return -1;
  head = eval(car_[list]);
  return cons(head, eval_args(cdr_[list]));
}

int eval(int form) {
  int op;
  int code;
  eval_calls++;
  if (form < 0)
    return -1;
  if (tag_[form] == 2)
    return form;
  if (tag_[form] == 3)
    return form;
  /* a list: (op args...) */
  op = car_[form];
  if (op < 0 || tag_[op] != 3) {
    /* a plain data list: evaluate elements */
    return eval_args(form);
  }
  code = car_[op];
  if (code == 12) {
    /* (if cond then else) */
    int rest = cdr_[form];
    int cond = eval(car_[rest]);
    if (int_of(cond) != 0)
      return eval(car_[cdr_[rest]]);
    if (cdr_[cdr_[rest]] == -1)
      return -1;
    return eval(car_[cdr_[cdr_[rest]]]);
  }
  return builtins[code](eval_args(cdr_[form]));
}

void print_value(int v) {
  int first = 1;
  if (v == -1) {
    print_str("nil");
    return;
  }
  if (tag_[v] == 2) {
    print_int(car_[v]);
    return;
  }
  if (tag_[v] == 3) {
    print_str("#op");
    print_int(car_[v]);
    return;
  }
  print_char('(');
  while (v != -1 && tag_[v] == 1) {
    if (!first)
      print_char(' ');
    print_value(car_[v]);
    first = 0;
    v = cdr_[v];
  }
  print_char(')');
}

int main() {
  int form;
  int result;
  int n_forms = 0;
  heap_init();
  prime();
  for (;;) {
    form = read_form();
    if (form == -2)
      break;
    result = eval(form);
    print_value(result);
    print_char('\n');
    n_forms++;
    /* collect everything between top-level forms */
    gc(-1);
  }
  print_str("forms=");
  print_int(n_forms);
  print_str(" evals=");
  print_int(eval_calls);
  print_str(" gcs=");
  print_int(gc_runs);
  print_str(" freed=");
  print_int(gc_freed);
  print_char('\n');
  return 0;
}
)MC";

/// Random s-expressions over the builtin vocabulary.
std::string makeForms(uint64_t Seed, int Count, int Depth) {
  Prng R(Seed);
  std::function<std::string(int)> Gen = [&](int D) -> std::string {
    if (D == 0 || R.nextBelow(3) == 0)
      return std::to_string(R.nextInRange(-20, 20));
    static const char *Ops[] = {"add", "sub", "mul", "div", "eq",
                                "lt",  "max", "add", "mul"};
    unsigned Pick = static_cast<unsigned>(R.nextBelow(10));
    if (Pick == 9) {
      // (if cond then else)
      return "(if " + Gen(D - 1) + " " + Gen(D - 1) + " " + Gen(D - 1) +
             ")";
    }
    std::string S = "(";
    S += Ops[Pick];
    unsigned Args = 2 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned A = 0; A < Args; ++A)
      S += " " + Gen(D - 1);
    return S + ")";
  };
  std::string Out;
  for (int I = 0; I < Count; ++I)
    Out += Gen(Depth) + "\n";
  return Out;
}

} // namespace

SuiteProgram sest::makeXlisp() {
  SuiteProgram P;
  P.Name = "xlisp";
  P.PaperAnalogue = "xlisp (SPEC92)";
  P.Description = "Lisp interpreter (REPL, GC, pointer-dispatched builtins)";
  P.Source = Source;
  P.Inputs = {
      {"f30d4", makeForms(13, 30, 4), 13},
      {"f50d3", makeForms(31, 50, 3), 31},
      {"f20d5", makeForms(61, 20, 5), 61},
      {"f40d4", makeForms(89, 40, 4), 89},
      {"f25d4", makeForms(101, 25, 4), 101},
  };
  return P;
}

//===- support/Arena.h - Bump-pointer allocator ---------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple bump-pointer arena used to own AST nodes, CFG blocks, and other
/// long-lived analysis objects. Objects allocated here are never
/// individually freed; destructors of trivially-destructible payloads are
/// skipped, and non-trivial ones are registered and run when the arena
/// dies.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_ARENA_H
#define SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace sest {

/// A bump-pointer arena allocator.
///
/// Allocation is O(1) amortized; all memory is released at once when the
/// arena is destroyed. Non-trivially-destructible objects created through
/// \c create() have their destructors run in reverse creation order.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  ~Arena() {
    for (auto It = Destructors.rbegin(), E = Destructors.rend(); It != E;
         ++It)
      It->Destroy(It->Object);
  }

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 &&
           "alignment must be a power of two");
    uintptr_t P = reinterpret_cast<uintptr_t>(Next);
    uintptr_t Aligned = (P + Align - 1) & ~(Align - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      grow(Size + Align);
      P = reinterpret_cast<uintptr_t>(Next);
      Aligned = (P + Align - 1) & ~(Align - 1);
    }
    Next = reinterpret_cast<char *>(Aligned + Size);
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a \p T in the arena, forwarding \p Args to its constructor.
  template <typename T, typename... Args> T *create(Args &&...Ts) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(Ts)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Destructors.push_back(
          {Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  /// Total bytes handed out so far (diagnostic only).
  size_t bytesAllocated() const { return TotalAllocated; }

private:
  void grow(size_t MinBytes) {
    size_t SlabSize = Slabs.empty() ? 4096 : Slabs.back().Size * 2;
    if (SlabSize < MinBytes)
      SlabSize = MinBytes;
    Slabs.push_back({std::make_unique<char[]>(SlabSize), SlabSize});
    Next = Slabs.back().Memory.get();
    End = Next + SlabSize;
    TotalAllocated += SlabSize;
  }

  struct Slab {
    std::unique_ptr<char[]> Memory;
    size_t Size;
  };
  struct DtorEntry {
    void *Object;
    void (*Destroy)(void *);
  };

  std::vector<Slab> Slabs;
  std::vector<DtorEntry> Destructors;
  char *Next = nullptr;
  char *End = nullptr;
  size_t TotalAllocated = 0;
};

} // namespace sest

#endif // SUPPORT_ARENA_H

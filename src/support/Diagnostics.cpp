//===- support/Diagnostics.cpp - Error reporting --------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace sest;

std::string Diagnostic::str() const {
  const char *KindName = "error";
  switch (Kind) {
  case DiagKind::Error:
    KindName = "error";
    break;
  case DiagKind::Warning:
    KindName = "warning";
    break;
  case DiagKind::Note:
    KindName = "note";
    break;
  }
  return Loc.str() + ": " + KindName + ": " + Message;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (!Out.empty())
      Out += '\n';
    Out += D.str();
  }
  return Out;
}

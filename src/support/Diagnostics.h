//===- support/Diagnostics.h - Error reporting ------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection for the mini-C frontend. Library code never throws
/// and never writes to std streams; it records diagnostics here and the
/// caller decides what to do with them.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_DIAGNOSTICS_H
#define SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace sest {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported problem.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "line:col: error: message".
  std::string str() const;
};

/// Accumulates diagnostics produced while processing one source buffer.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics joined by newlines; empty when clean.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace sest

#endif // SUPPORT_DIAGNOSTICS_H

//===- support/Hash.cpp - Stable content hashing ---------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "support/Hash.h"

using namespace sest;

std::string sest::hashHex(uint64_t H) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[static_cast<size_t>(I)] = Digits[H & 0xf];
    H >>= 4;
  }
  return Out;
}

//===- support/Hash.h - Stable content hashing ------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable 64-bit content hash (FNV-1a) and a small builder for hashing
/// structured keys. Two contracts matter here:
///
///  1. *Stability.* The hash of a byte sequence is the same on every
///     platform, compiler, and run — it never depends on pointer values,
///     std::hash, or endianness of anything but the bytes themselves.
///     The test suite pins the published FNV-1a test vectors, so the
///     function can never drift silently. Hashes are therefore safe to
///     persist (cache keys, the `program_hash` field of report JSON) and
///     to join across artifacts produced by different builds.
///
///  2. *Canonical field framing.* HashBuilder feeds every field through
///     a fixed little-endian byte encoding and separates variable-length
///     fields by their length, so ("ab","c") and ("a","bc") hash
///     differently and adding a field can never alias an existing key.
///
/// Used for the analysis service's content-addressed memoization cache
/// keys (src/service/) and for the program_hash field that lets accuracy
/// and optimizer reports be joined against cache entries.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_HASH_H
#define SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace sest {

/// FNV-1a offset basis / prime (64-bit variant).
inline constexpr uint64_t ContentHashSeed = 0xcbf29ce484222325ULL;
inline constexpr uint64_t ContentHashPrime = 0x100000001b3ULL;

/// Extends \p H with \p Size bytes of \p Data (FNV-1a step).
inline uint64_t contentHash64Extend(uint64_t H, const void *Data,
                                    size_t Size) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Size; ++I) {
    H ^= static_cast<uint64_t>(P[I]);
    H *= ContentHashPrime;
  }
  return H;
}

/// The stable 64-bit content hash of \p Bytes.
inline uint64_t contentHash64(std::string_view Bytes) {
  return contentHash64Extend(ContentHashSeed, Bytes.data(), Bytes.size());
}

/// Formats a hash the way reports and cache logs spell it: 16 lowercase
/// hex digits, zero-padded, no prefix.
std::string hashHex(uint64_t H);

/// Incremental hasher for structured keys. Every variable-length field
/// is framed by its length, and every scalar goes through a fixed
/// little-endian encoding, so field boundaries can never alias.
class HashBuilder {
public:
  HashBuilder() = default;
  /// Starts from a domain tag so different key spaces (cache tiers)
  /// never collide even over identical field sequences.
  explicit HashBuilder(std::string_view Domain) { add(Domain); }

  HashBuilder &add(std::string_view S) {
    addU64(S.size());
    H = contentHash64Extend(H, S.data(), S.size());
    return *this;
  }

  HashBuilder &addU64(uint64_t V) {
    unsigned char B[8];
    for (int I = 0; I < 8; ++I)
      B[I] = static_cast<unsigned char>(V >> (8 * I));
    H = contentHash64Extend(H, B, sizeof(B));
    return *this;
  }

  HashBuilder &addBool(bool V) { return addU64(V ? 1 : 0); }

  /// Hashes the IEEE-754 bit pattern, so 1.0 and 1.5 (and +0.0 / -0.0)
  /// are distinct fields.
  HashBuilder &addDouble(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V));
    std::memcpy(&Bits, &V, sizeof(Bits));
    return addU64(Bits);
  }

  uint64_t digest() const { return H; }

private:
  uint64_t H = ContentHashSeed;
};

} // namespace sest

#endif // SUPPORT_HASH_H

//===- support/Json.cpp - Minimal JSON writer and reader -------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace sest;

//===----------------------------------------------------------------------===//
// Formatting helpers
//===----------------------------------------------------------------------===//

std::string sest::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string sest::jsonNumber(double Value) {
  if (!std::isfinite(Value))
    return "null";
  // Integral values within int64 range print exactly, without a point.
  if (Value == std::floor(Value) && std::fabs(Value) < 9.0e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(Value));
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  // Prefer the shortest representation that round-trips.
  for (int Prec = 1; Prec < 17; ++Prec) {
    char Short[40];
    std::snprintf(Short, sizeof(Short), "%.*g", Prec, Value);
    if (std::strtod(Short, nullptr) == Value)
      return Short;
  }
  return Buf;
}

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::beforeValue() {
  if (Stack.empty())
    return;
  auto &Top = Stack.back();
  if (Top.first == Scope::Object) {
    assert(PendingKey && "object value written without a key");
    PendingKey = false;
    return;
  }
  if (Top.second > 0)
    Out += ',';
  ++Top.second;
}

JsonWriter &JsonWriter::key(std::string_view K) {
  assert(!Stack.empty() && Stack.back().first == Scope::Object &&
         "key() outside an object");
  assert(!PendingKey && "two keys in a row");
  if (Stack.back().second > 0)
    Out += ',';
  ++Stack.back().second;
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  Out += '{';
  Stack.push_back({Scope::Object, 0});
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back().first == Scope::Object &&
         "endObject() without a matching beginObject()");
  assert(!PendingKey && "object closed after a key with no value");
  Stack.pop_back();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  Out += '[';
  Stack.push_back({Scope::Array, 0});
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back().first == Scope::Array &&
         "endArray() without a matching beginArray()");
  Stack.pop_back();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view S) {
  beforeValue();
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::rawValue(std::string_view Json) {
  beforeValue();
  Out += Json;
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  beforeValue();
  Out += jsonNumber(V);
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  beforeValue();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  beforeValue();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  beforeValue();
  Out += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::nullValue() {
  beforeValue();
  Out += "null";
  return *this;
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Members)
    if (Name == Key)
      return &V;
  return nullptr;
}

double JsonValue::numberOr(std::string_view Key, double Default) const {
  const JsonValue *V = find(Key);
  return V && V->isNumber() ? V->NumberVal : Default;
}

namespace {

class JsonParser {
public:
  explicit JsonParser(std::string_view Text) : Text(Text) {}

  std::optional<JsonValue> parse() {
    std::optional<JsonValue> V = parseValue();
    if (!V)
      return std::nullopt;
    skipWs();
    if (Pos != Text.size())
      return std::nullopt; // trailing garbage
    return V;
  }

private:
  static constexpr unsigned MaxDepth = 256;

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }
  char peek() { return Pos < Text.size() ? Text[Pos] : '\0'; }
  bool consumeLiteral(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  std::optional<JsonValue> parseValue() {
    if (++Depth > MaxDepth)
      return std::nullopt;
    struct DepthGuard {
      unsigned &D;
      ~DepthGuard() { --D; }
    } Guard{Depth};

    skipWs();
    JsonValue V;
    switch (peek()) {
    case '{': {
      ++Pos;
      V.K = JsonValue::Kind::Object;
      skipWs();
      if (peek() == '}') {
        ++Pos;
        return V;
      }
      while (true) {
        skipWs();
        if (peek() != '"')
          return std::nullopt;
        std::optional<std::string> Key = parseString();
        if (!Key)
          return std::nullopt;
        skipWs();
        if (peek() != ':')
          return std::nullopt;
        ++Pos;
        std::optional<JsonValue> Member = parseValue();
        if (!Member)
          return std::nullopt;
        V.Members.emplace_back(std::move(*Key), std::move(*Member));
        skipWs();
        if (peek() == ',') {
          ++Pos;
          continue;
        }
        if (peek() == '}') {
          ++Pos;
          return V;
        }
        return std::nullopt;
      }
    }
    case '[': {
      ++Pos;
      V.K = JsonValue::Kind::Array;
      skipWs();
      if (peek() == ']') {
        ++Pos;
        return V;
      }
      while (true) {
        std::optional<JsonValue> Item = parseValue();
        if (!Item)
          return std::nullopt;
        V.Items.push_back(std::move(*Item));
        skipWs();
        if (peek() == ',') {
          ++Pos;
          continue;
        }
        if (peek() == ']') {
          ++Pos;
          return V;
        }
        return std::nullopt;
      }
    }
    case '"': {
      std::optional<std::string> S = parseString();
      if (!S)
        return std::nullopt;
      V.K = JsonValue::Kind::String;
      V.StringVal = std::move(*S);
      return V;
    }
    case 't':
      if (!consumeLiteral("true"))
        return std::nullopt;
      V.K = JsonValue::Kind::Bool;
      V.BoolVal = true;
      return V;
    case 'f':
      if (!consumeLiteral("false"))
        return std::nullopt;
      V.K = JsonValue::Kind::Bool;
      V.BoolVal = false;
      return V;
    case 'n':
      if (!consumeLiteral("null"))
        return std::nullopt;
      V.K = JsonValue::Kind::Null;
      return V;
    default:
      return parseNumber();
    }
  }

  std::optional<std::string> parseString() {
    // Caller ensured peek() == '"'.
    ++Pos;
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return std::nullopt;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return std::nullopt;
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code += H - '0';
          else if (H >= 'a' && H <= 'f')
            Code += H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code += H - 'A' + 10;
          else
            return std::nullopt;
        }
        // Basic-multilingual-plane only; encode as UTF-8.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return std::nullopt;
      }
    }
    return std::nullopt; // unterminated
  }

  std::optional<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (peek() == '.') {
      ++Pos;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (Pos == Start)
      return std::nullopt;
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      return std::nullopt;
    JsonValue V;
    V.K = JsonValue::Kind::Number;
    V.NumberVal = D;
    return V;
  }

  std::string_view Text;
  size_t Pos = 0;
  unsigned Depth = 0;
};

} // namespace

std::optional<JsonValue> sest::parseJson(std::string_view Text) {
  return JsonParser(Text).parse();
}

//===- support/Json.h - Minimal JSON writer and reader ----------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer and a matching recursive-descent reader.
/// The writer backs every machine-readable artifact the system emits —
/// Chrome trace-event files, telemetry stats, bench result files, and the
/// suite run report — and the reader lets tests (and tools) validate and
/// inspect what was written without an external dependency.
///
/// The writer tracks nesting in a small state stack and inserts commas
/// automatically; misuse (a value where a key is required, unbalanced
/// end calls) trips an assert in debug builds and degrades to garbage
/// JSON, never UB, in release builds.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_JSON_H
#define SUPPORT_JSON_H

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sest {

/// Escapes \p S for use inside a JSON string literal (no quotes added).
std::string jsonEscape(std::string_view S);

/// Formats a double as a JSON number: integral values print without an
/// exponent or decimal point; non-finite values print as null (JSON has
/// no NaN/Infinity).
std::string jsonNumber(double Value);

/// A streaming JSON writer.
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; must be inside an object, before its value.
  JsonWriter &key(std::string_view K);

  JsonWriter &value(std::string_view S);
  JsonWriter &value(const char *S) { return value(std::string_view(S)); }
  JsonWriter &value(double V);
  JsonWriter &value(int64_t V);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(bool V);
  JsonWriter &nullValue();

  /// Splices \p Json — one complete, pre-rendered JSON value — into the
  /// document verbatim. The caller guarantees it is valid JSON; this is
  /// how cached, already-rendered sub-documents (e.g. the analysis
  /// service's memoized result bodies) are embedded without re-parsing.
  JsonWriter &rawValue(std::string_view Json);

  /// Shorthand for key(K).value(V).
  template <typename T> JsonWriter &member(std::string_view K, T &&V) {
    key(K);
    return value(std::forward<T>(V));
  }

  /// True once every container has been closed and a value was written.
  bool complete() const { return Stack.empty() && !Out.empty(); }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  enum class Scope : uint8_t { Object, Array };
  void beforeValue();

  std::string Out;
  /// One entry per open container; .second = number of elements written.
  std::vector<std::pair<Scope, size_t>> Stack;
  bool PendingKey = false;
};

/// A parsed JSON value (reader side).
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool BoolVal = false;
  double NumberVal = 0.0;
  std::string StringVal;
  std::vector<JsonValue> Items; ///< For arrays.
  /// For objects, in document order (duplicate keys keep both).
  std::vector<std::pair<std::string, JsonValue>> Members;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// First member named \p Key, or null when absent / not an object.
  const JsonValue *find(std::string_view Key) const;
  /// Drills through nested objects ("a.b.c" style, one key per call).
  double numberOr(std::string_view Key, double Default) const;
};

/// Parses \p Text as one JSON document (surrounding whitespace allowed).
/// Returns nullopt on any syntax error or trailing garbage.
std::optional<JsonValue> parseJson(std::string_view Text);

} // namespace sest

#endif // SUPPORT_JSON_H

//===- support/LinearSystem.cpp - Dense linear algebra --------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "support/LinearSystem.h"

#include <cmath>
#include <utility>

using namespace sest;

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    M.at(I, I) = 1.0;
  return M;
}

Matrix Matrix::multiply(const Matrix &Rhs) const {
  assert(NumCols == Rhs.NumRows && "dimension mismatch in multiply");
  Matrix Out(NumRows, Rhs.NumCols);
  for (size_t I = 0; I < NumRows; ++I)
    for (size_t K = 0; K < NumCols; ++K) {
      double V = at(I, K);
      if (V == 0.0)
        continue;
      for (size_t J = 0; J < Rhs.NumCols; ++J)
        Out.at(I, J) += V * Rhs.at(K, J);
    }
  return Out;
}

Matrix Matrix::transposed() const {
  Matrix Out(NumCols, NumRows);
  for (size_t I = 0; I < NumRows; ++I)
    for (size_t J = 0; J < NumCols; ++J)
      Out.at(J, I) = at(I, J);
  return Out;
}

SolveResult sest::solveLinearSystem(Matrix A, std::vector<double> B,
                                    double PivotEps) {
  assert(A.rows() == A.cols() && "system matrix must be square");
  assert(A.rows() == B.size() && "rhs size mismatch");
  const size_t N = A.rows();

  // Forward elimination with partial pivoting.
  for (size_t Col = 0; Col < N; ++Col) {
    size_t Pivot = Col;
    double Best = std::fabs(A.at(Col, Col));
    for (size_t R = Col + 1; R < N; ++R) {
      double V = std::fabs(A.at(R, Col));
      if (V > Best) {
        Best = V;
        Pivot = R;
      }
    }
    if (Best < PivotEps)
      return {std::nullopt, /*Singular=*/true};
    if (Pivot != Col) {
      for (size_t C = 0; C < N; ++C)
        std::swap(A.at(Pivot, C), A.at(Col, C));
      std::swap(B[Pivot], B[Col]);
    }
    double Diag = A.at(Col, Col);
    for (size_t R = Col + 1; R < N; ++R) {
      double Factor = A.at(R, Col) / Diag;
      if (Factor == 0.0)
        continue;
      A.at(R, Col) = 0.0;
      for (size_t C = Col + 1; C < N; ++C)
        A.at(R, C) -= Factor * A.at(Col, C);
      B[R] -= Factor * B[Col];
    }
  }

  // Back substitution.
  std::vector<double> X(N, 0.0);
  for (size_t RI = N; RI-- > 0;) {
    double Sum = B[RI];
    for (size_t C = RI + 1; C < N; ++C)
      Sum -= A.at(RI, C) * X[C];
    X[RI] = Sum / A.at(RI, RI);
  }
  return {std::move(X), /*Singular=*/false};
}

std::optional<std::vector<double>>
sest::solveMarkovFrequencies(const Matrix &Prob,
                             const std::vector<double> &Entry,
                             double PivotEps) {
  assert(Prob.rows() == Prob.cols() && "transition matrix must be square");
  assert(Prob.rows() == Entry.size() && "entry vector size mismatch");
  const size_t N = Prob.rows();

  // Build (I - Probᵀ).
  Matrix A(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      A.at(I, J) = (I == J ? 1.0 : 0.0) - Prob.at(J, I);

  SolveResult R = solveLinearSystem(std::move(A), Entry, PivotEps);
  return R.Solution;
}

//===- support/LinearSystem.h - Dense linear algebra ------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense-matrix type and a Gaussian-elimination solver. The Markov
/// frequency models (paper §5, Figure 7) translate a control-flow or call
/// graph into a system (I - Pᵀ)f = e and solve it here. Systems are tiny
/// (one row per basic block or per function), so a dense O(n³) solver with
/// partial pivoting is entirely adequate.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_LINEARSYSTEM_H
#define SUPPORT_LINEARSYSTEM_H

#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

namespace sest {

/// Row-major dense matrix of doubles.
class Matrix {
public:
  Matrix() = default;
  Matrix(size_t Rows, size_t Cols)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, 0.0) {}

  /// Identity matrix of size \p N.
  static Matrix identity(size_t N);

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }

  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  /// Matrix product; dimensions must agree.
  Matrix multiply(const Matrix &Rhs) const;

  /// Transposed copy.
  Matrix transposed() const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

/// Result of a linear solve.
struct SolveResult {
  /// The solution vector if the system was non-singular.
  std::optional<std::vector<double>> Solution;
  /// True when pivoting found a (numerically) zero pivot.
  bool Singular = false;
};

/// Solves A·x = b by Gaussian elimination with partial pivoting.
///
/// \p A must be square and \p B must have A.rows() entries. Returns a
/// result whose \c Solution is empty and \c Singular true when a pivot
/// smaller than \p PivotEps (in absolute value) is encountered.
SolveResult solveLinearSystem(Matrix A, std::vector<double> B,
                              double PivotEps = 1e-12);

/// Convenience wrapper for the Markov frequency equation.
///
/// Given transition probabilities \p Prob where Prob.at(i,j) is the
/// probability-weighted flow from state i to state j, and an external
/// entry vector \p Entry, solves f = Entry + Probᵀ·f, i.e.
/// (I - Probᵀ)·f = Entry. Returns the state frequencies, or nullopt when
/// the system is singular (e.g. a closed cycle with probability 1).
std::optional<std::vector<double>>
solveMarkovFrequencies(const Matrix &Prob, const std::vector<double> &Entry,
                       double PivotEps = 1e-12);

} // namespace sest

#endif // SUPPORT_LINEARSYSTEM_H

//===- support/Prng.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic PRNG (splitmix64 seeding + xoshiro256**)
/// used by the benchmark-suite input generators and property tests. We do
/// not use std::mt19937 so that streams are bit-identical across standard
/// library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_PRNG_H
#define SUPPORT_PRNG_H

#include <cassert>
#include <cstdint>

namespace sest {

/// Deterministic 64-bit PRNG with a tiny state.
class Prng {
public:
  explicit Prng(uint64_t Seed) {
    // splitmix64 to spread the seed over the full state.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Next raw 64-bit value (xoshiro256**).
  uint64_t next() {
    auto Rotl = [](uint64_t V, int K) {
      return (V << K) | (V >> (64 - K));
    };
    uint64_t Result = Rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = Rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "bound must be nonzero");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State[4];
};

} // namespace sest

#endif // SUPPORT_PRNG_H

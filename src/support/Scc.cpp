//===- support/Scc.cpp - Strongly connected components --------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "support/Scc.h"

#include <cassert>
#include <cstdint>

using namespace sest;

namespace {

/// Iterative Tarjan state for one node.
struct NodeState {
  size_t Index = SIZE_MAX;
  size_t LowLink = 0;
  bool OnStack = false;
};

} // namespace

SccResult sest::computeScc(size_t NumNodes,
                           const std::vector<std::vector<size_t>> &Succ) {
  assert(Succ.size() == NumNodes && "adjacency list size mismatch");

  SccResult Result;
  Result.ComponentOf.assign(NumNodes, SIZE_MAX);

  std::vector<NodeState> State(NumNodes);
  std::vector<size_t> Stack;
  size_t NextIndex = 0;

  // Explicit DFS stack: (node, next successor position to visit).
  struct Frame {
    size_t Node;
    size_t SuccPos;
  };
  std::vector<Frame> Dfs;

  for (size_t Root = 0; Root < NumNodes; ++Root) {
    if (State[Root].Index != SIZE_MAX)
      continue;
    Dfs.push_back({Root, 0});
    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      size_t N = F.Node;
      if (F.SuccPos == 0) {
        State[N].Index = NextIndex;
        State[N].LowLink = NextIndex;
        ++NextIndex;
        Stack.push_back(N);
        State[N].OnStack = true;
      }
      bool Descended = false;
      while (F.SuccPos < Succ[N].size()) {
        size_t M = Succ[N][F.SuccPos];
        ++F.SuccPos;
        assert(M < NumNodes && "successor index out of range");
        if (State[M].Index == SIZE_MAX) {
          Dfs.push_back({M, 0});
          Descended = true;
          break;
        }
        if (State[M].OnStack && State[M].Index < State[N].LowLink)
          State[N].LowLink = State[M].Index;
      }
      if (Descended)
        continue;

      // All successors done: maybe emit a component, then propagate the
      // low-link to the parent.
      if (State[N].LowLink == State[N].Index) {
        std::vector<size_t> Component;
        for (;;) {
          size_t M = Stack.back();
          Stack.pop_back();
          State[M].OnStack = false;
          Result.ComponentOf[M] = Result.Components.size();
          Component.push_back(M);
          if (M == N)
            break;
        }
        Result.Components.push_back(std::move(Component));
      }
      Dfs.pop_back();
      if (!Dfs.empty()) {
        size_t Parent = Dfs.back().Node;
        if (State[N].LowLink < State[Parent].LowLink)
          State[Parent].LowLink = State[N].LowLink;
      }
    }
  }
  return Result;
}

//===- support/Scc.h - Strongly connected components ------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tarjan's strongly-connected-components algorithm over graphs given as
/// adjacency lists of dense node indices. Used by the inter-procedural
/// estimators: all_rec multiplies invocation counts of every function in a
/// recursive SCC, and the Markov call-graph repair (paper §5.2.2) isolates
/// offending SCCs into subproblems.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_SCC_H
#define SUPPORT_SCC_H

#include <cstddef>
#include <vector>

namespace sest {

/// The strongly connected components of a directed graph.
struct SccResult {
  /// Components in reverse topological order (callees before callers for a
  /// call graph); each is a list of node indices.
  std::vector<std::vector<size_t>> Components;
  /// Maps each node to the index of its component in \c Components.
  std::vector<size_t> ComponentOf;

  /// True when node \p N is in a component of size > 1, or has a self-arc
  /// recorded by the caller (self-arcs must be checked separately since the
  /// adjacency list alone distinguishes them; see \c computeScc).
  bool inNontrivialComponent(size_t N) const {
    return Components[ComponentOf[N]].size() > 1;
  }
};

/// Computes SCCs of the graph with \p NumNodes nodes and successor lists
/// \p Succ (Succ.size() == NumNodes; entries are node indices < NumNodes).
///
/// Components are emitted in Tarjan's natural order, i.e. reverse
/// topological order of the condensation.
SccResult computeScc(size_t NumNodes,
                     const std::vector<std::vector<size_t>> &Succ);

} // namespace sest

#endif // SUPPORT_SCC_H

//===- support/SourceLoc.h - Source locations -------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight (line, column) source location used by the lexer, parser,
/// diagnostics, and to label basic blocks with their originating syntax.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_SOURCELOC_H
#define SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace sest {

/// A 1-based (line, column) position; (0, 0) means "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &Rhs) const {
    return Line == Rhs.Line && Column == Rhs.Column;
  }

  /// Renders as "line:col" (or "<unknown>").
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

} // namespace sest

#endif // SUPPORT_SOURCELOC_H

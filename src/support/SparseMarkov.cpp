//===- support/SparseMarkov.cpp - Sparse SCC-structured solver ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "support/SparseMarkov.h"

#include "support/LinearSystem.h"
#include "support/Scc.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace sest;

SparseMarkovResult
sest::solveSparseMarkov(size_t NumNodes, const std::vector<SparseArc> &Arcs,
                        const std::vector<double> &Entry,
                        const SparseMarkovConfig &Config) {
  assert(Entry.size() == NumNodes && "entry vector size mismatch");

  SparseMarkovResult Result;
  Result.EffectiveProb.reserve(Arcs.size());
  for (const SparseArc &A : Arcs) {
    assert(A.From < NumNodes && A.To < NumNodes && "arc index out of range");
    Result.EffectiveProb.push_back(A.Prob);
  }
  std::vector<double> &Eff = Result.EffectiveProb;

  // Arc indices grouped by target (CSR by column): InStart[v]..InStart[v+1]
  // index InArcs with every arc flowing into v. Counting sort, O(N + E).
  std::vector<size_t> InStart(NumNodes + 1, 0);
  for (const SparseArc &A : Arcs)
    ++InStart[A.To + 1];
  for (size_t V = 0; V < NumNodes; ++V)
    InStart[V + 1] += InStart[V];
  std::vector<size_t> InArcs(Arcs.size());
  {
    std::vector<size_t> Fill(InStart.begin(), InStart.end() - 1);
    for (size_t I = 0; I < Arcs.size(); ++I)
      InArcs[Fill[Arcs[I].To]++] = I;
  }

  // Condense into SCCs. Zero-probability arcs carry no flow, so they are
  // excluded from the structure — splitting a component along them leaves
  // the solution unchanged.
  std::vector<std::vector<size_t>> Succ(NumNodes);
  std::vector<bool> HasSelfArc(NumNodes, false);
  for (const SparseArc &A : Arcs) {
    if (A.Prob == 0.0)
      continue;
    Succ[A.From].push_back(A.To);
    if (A.From == A.To)
      HasSelfArc[A.From] = true;
  }
  SccResult Scc = computeScc(NumNodes, Succ);
  Result.Stats.SccCount = Scc.Components.size();

  std::vector<double> F(NumNodes, 0.0);
  // Local index of each node within the component currently being
  // solved; stale entries are never read (guarded by ComponentOf).
  std::vector<size_t> Local(NumNodes, 0);
  const bool RepairEnabled = Config.MaxRepairIterations > 0;

  // Tarjan emits components in reverse topological order (successors
  // first), so iterating backwards visits every component after all of
  // its predecessors — external inflow is always already solved.
  for (size_t CI = Scc.Components.size(); CI-- > 0;) {
    const std::vector<size_t> &Members = Scc.Components[CI];
    Result.Stats.MaxSccSize =
        std::max(Result.Stats.MaxSccSize, Members.size());

    bool Cyclic = Members.size() > 1 || HasSelfArc[Members[0]];
    if (!Cyclic) {
      // Acyclic singleton: pure forward propagation, O(in-degree).
      size_t V = Members[0];
      double Flow = Entry[V];
      for (size_t P = InStart[V]; P < InStart[V + 1]; ++P) {
        const SparseArc &A = Arcs[InArcs[P]];
        Flow += Eff[InArcs[P]] * F[A.From];
      }
      F[V] = Flow;
      continue;
    }

    // Cyclic component: solve f_S = b + P_Sᵀ f_S as a small dense block,
    // where b carries the entry flow plus all external inflow.
    const size_t K = Members.size();
    for (size_t I = 0; I < K; ++I)
      Local[Members[I]] = I;

    std::vector<double> B(K, 0.0);
    std::vector<size_t> Internal; // arc indices internal to the block
    for (size_t I = 0; I < K; ++I) {
      size_t V = Members[I];
      double Flow = Entry[V];
      for (size_t P = InStart[V]; P < InStart[V + 1]; ++P) {
        size_t ArcIdx = InArcs[P];
        const SparseArc &A = Arcs[ArcIdx];
        if (Scc.ComponentOf[A.From] == CI)
          Internal.push_back(ArcIdx);
        else
          Flow += Eff[ArcIdx] * F[A.From];
      }
      B[I] = Flow;
    }

    ++Result.Stats.CyclicSccCount;
    Result.Stats.DenseDim += K;
    uint32_t MinNode = static_cast<uint32_t>(
        *std::min_element(Members.begin(), Members.end()));

    for (unsigned Attempt = 0;; ++Attempt) {
      Matrix A(K, K);
      for (size_t I = 0; I < K; ++I)
        A.at(I, I) = 1.0;
      for (size_t ArcIdx : Internal)
        A.at(Local[Arcs[ArcIdx].To], Local[Arcs[ArcIdx].From]) -=
            Eff[ArcIdx];
      SolveResult S = solveLinearSystem(std::move(A), B, Config.PivotEps);

      bool Ok = S.Solution.has_value();
      if (Ok && RepairEnabled) {
        for (double V : *S.Solution)
          if (!std::isfinite(V) || V < -Config.NegativeTolerance ||
              V > Config.ValueCeiling)
            Ok = false;
      }
      if (Ok) {
        for (size_t I = 0; I < K; ++I)
          F[Members[I]] = (*S.Solution)[I];
        if (Attempt > 0)
          Result.Stats.Repairs.push_back(
              {MinNode, static_cast<uint32_t>(K), Attempt});
        break;
      }
      if (Attempt >= Config.MaxRepairIterations) {
        // Unrepairable probability-1 cycle (or repair disabled): report
        // singular like the dense solver would for the whole system.
        Result.Stats.Repairs.push_back(
            {MinNode, static_cast<uint32_t>(K), Attempt + 1});
        Result.Frequencies = std::nullopt;
        return Result;
      }
      // The per-component repair: scale only this block's internal arcs
      // so flow leaks out of the cycle, then re-solve just this block.
      for (size_t ArcIdx : Internal)
        Eff[ArcIdx] *= Config.SingularScale;
      Result.Stats.Repaired = true;
      ++Result.Stats.RepairIterations;
    }
  }

  Result.Frequencies = std::move(F);
  return Result;
}

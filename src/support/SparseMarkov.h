//===- support/SparseMarkov.h - Sparse SCC-structured solver ----*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse, SCC-structured solver for the Markov frequency equation
/// f = e + Pᵀf (paper §5, Figure 7). The dense Gaussian elimination in
/// LinearSystem.h is O(N³) and rebuilds the whole matrix on every
/// singular repair; real control-flow and call graphs are overwhelmingly
/// sparse and mostly acyclic, so this solver:
///
///  1. stores transitions as an arc list indexed in CSR form (both by
///     source and by target),
///  2. condenses the graph into its strongly connected components
///     (support/Scc) — a DAG by construction,
///  3. forward-propagates frequencies through acyclic components in
///     topological order in O(E), and
///  4. solves only the cyclic components as small dense subsystems, with
///     singular-repair scaling applied *per component* instead of
///     globally, so a repair re-solves one small block rather than
///     re-factorizing the whole system.
///
/// Because (I - Pᵀ) is block-triangular under the condensation order,
/// the block-wise solution equals the whole-matrix solution exactly (up
/// to rounding); tests/test_sparse_markov.cpp pins the two solvers
/// together to 1e-9. The dense solver stays available as the
/// differential oracle (MarkovSolverKind::Dense).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_SPARSEMARKOV_H
#define SUPPORT_SPARSEMARKOV_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace sest {

/// Which linear-solver tier a Markov model runs on. Sparse is the
/// default; Dense is the original O(N³) Gaussian elimination, kept as
/// the differential oracle (the same tiering pattern as the bytecode VM
/// vs. the AST walker).
enum class MarkovSolverKind { Sparse, Dense };

/// One probability-weighted arc of a sparse transition graph. Parallel
/// arcs between the same pair are allowed; their flows sum.
struct SparseArc {
  uint32_t From = 0;
  uint32_t To = 0;
  double Prob = 0.0;
};

/// Tuning for the sparse solver.
struct SparseMarkovConfig {
  /// Pivot threshold forwarded to the dense subsystem solves.
  double PivotEps = 1e-12;
  /// When a cyclic component's subsystem is singular (a probability-1
  /// cycle) or its solution insane, its *internal* arc probabilities are
  /// scaled by this factor and only that block is re-solved.
  double SingularScale = 0.9;
  /// Maximum repair iterations per cyclic component. 0 disables repair:
  /// a singular component then fails the whole solve, exactly like the
  /// dense solver reporting Singular (used by callers that own their own
  /// repair ladder, e.g. the §5.2.2 call-graph repair).
  unsigned MaxRepairIterations = 0;
  /// Repair acceptance: component solutions must lie in
  /// [-NegativeTolerance, ValueCeiling] (matching the sanity window the
  /// dense intra-procedural path enforced globally).
  double NegativeTolerance = 1e-9;
  double ValueCeiling = 1e15;
};

/// One cyclic component that needed singular-repair scaling, for the
/// decision log: which component (identified by its smallest member
/// node id), how big it was, and how many scalings it took. A component
/// whose repair budget was exhausted reports Iterations one past the
/// budget.
struct SparseSccRepair {
  uint32_t Node = 0;       ///< Smallest node id in the component.
  uint32_t Size = 0;       ///< Component size (number of nodes).
  uint32_t Iterations = 0; ///< Repair scalings applied.
};

/// What the solve did — recorded as telemetry by the estimator call
/// sites (support stays dependency-free, like LinearSystem).
struct SparseMarkovStats {
  size_t SccCount = 0;       ///< Components in the condensation.
  size_t CyclicSccCount = 0; ///< Components that needed a dense subsolve.
  size_t MaxSccSize = 0;     ///< Largest component (1 = fully acyclic).
  size_t DenseDim = 0;       ///< Total rows across all dense subsolves.
  unsigned RepairIterations = 0; ///< Per-component repair re-solves.
  bool Repaired = false;     ///< Any component needed repair scaling.
  /// Components that needed repair, in solve (reverse topological)
  /// order — the provenance records behind Repaired/RepairIterations.
  std::vector<SparseSccRepair> Repairs;
};

/// Result of a sparse Markov solve.
struct SparseMarkovResult {
  /// Frequencies per node, or nullopt when some cyclic component stayed
  /// singular (repair disabled or exhausted).
  std::optional<std::vector<double>> Frequencies;
  /// Effective per-arc probabilities after per-component repair scaling,
  /// parallel to the input arc list (identical to the inputs when
  /// !Stats.Repaired). Feeding these into the dense solver reproduces
  /// Frequencies — the oracle check for repair paths.
  std::vector<double> EffectiveProb;
  SparseMarkovStats Stats;
};

/// Solves f = Entry + Pᵀf where P is given by \p Arcs over \p NumNodes
/// dense node indices. Runs in O(E + Σ k³) for cyclic component sizes k.
SparseMarkovResult solveSparseMarkov(size_t NumNodes,
                                     const std::vector<SparseArc> &Arcs,
                                     const std::vector<double> &Entry,
                                     const SparseMarkovConfig &Config = {});

} // namespace sest

#endif // SUPPORT_SPARSEMARKOV_H

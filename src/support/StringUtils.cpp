//===- support/StringUtils.cpp - String helpers ---------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>

using namespace sest;

std::string sest::formatDouble(double Value, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", static_cast<int>(Decimals), Value);
  return Buf;
}

std::string sest::formatPercent(double Fraction, unsigned Decimals) {
  return formatDouble(Fraction * 100.0, Decimals) + "%";
}

std::string sest::padLeft(std::string S, size_t Width) {
  if (S.size() < Width)
    S.insert(S.begin(), Width - S.size(), ' ');
  return S;
}

std::string sest::padRight(std::string S, size_t Width) {
  if (S.size() < Width)
    S.append(Width - S.size(), ' ');
  return S;
}

std::vector<std::string> sest::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Out.emplace_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Out;
}

std::string sest::joinStrings(const std::vector<std::string> &Parts,
                              std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

bool sest::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

//===- support/StringUtils.h - String helpers -------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string formatting and splitting helpers shared by printers,
/// benches and tests.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STRINGUTILS_H
#define SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace sest {

/// Formats \p Value with \p Decimals digits after the point (no
/// locale dependence, round-half-away-from-zero).
std::string formatDouble(double Value, unsigned Decimals);

/// Formats \p Fraction (0..1) as a percentage like "81.3%".
std::string formatPercent(double Fraction, unsigned Decimals = 1);

/// Left/right-pads \p S with spaces to \p Width.
std::string padLeft(std::string S, size_t Width);
std::string padRight(std::string S, size_t Width);

/// Splits on \p Sep, keeping empty fields.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Joins with \p Sep.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// True when \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

} // namespace sest

#endif // SUPPORT_STRINGUTILS_H

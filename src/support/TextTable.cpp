//===- support/TextTable.cpp - Aligned text tables ------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>

using namespace sest;

/// A cell is "numeric-looking" when it parses as a number, optionally with
/// a trailing '%' or 'x'.
static bool looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  size_t End = Cell.size();
  if (Cell.back() == '%' || Cell.back() == 'x')
    --End;
  if (End == 0)
    return false;
  bool SawDigit = false;
  for (size_t I = 0; I < End; ++I) {
    char C = Cell[I];
    if (std::isdigit(static_cast<unsigned char>(C))) {
      SawDigit = true;
      continue;
    }
    if (C == '.' || C == '-' || C == '+' || C == 'e' || C == 'E')
      continue;
    return false;
  }
  return SawDigit;
}

std::string TextTable::str() const {
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Row) {
    if (Row.size() > Widths.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  if (!Header.empty())
    Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Row.size() ? Row[I] : "";
      Out += looksNumeric(Cell) ? padLeft(Cell, Widths[I])
                                : padRight(Cell, Widths[I]);
      if (I + 1 != Widths.size())
        Out += "  ";
    }
    // Trim trailing padding so output is stable in diffs.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };
  if (!Header.empty()) {
    Emit(Header);
    size_t LineLen = 0;
    for (size_t I = 0; I < Widths.size(); ++I)
      LineLen += Widths[I] + (I + 1 != Widths.size() ? 2 : 0);
    Out.append(LineLen, '-');
    Out += '\n';
  }
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}

std::string TextTable::csv() const {
  std::string Out;
  auto Emit = [&Out](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        Out += ',';
      Out += Row[I];
    }
    Out += '\n';
  };
  if (!Header.empty())
    Emit(Header);
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}

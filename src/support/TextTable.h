//===- support/TextTable.h - Aligned text tables ----------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A column-aligned plain-text table used by the benchmark harnesses to
/// print the rows of each paper table/figure, and a companion CSV emitter.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TEXTTABLE_H
#define SUPPORT_TEXTTABLE_H

#include <string>
#include <vector>

namespace sest {

/// Accumulates rows of strings and renders them with aligned columns.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Columns) {
    Header = std::move(Columns);
  }

  /// Appends a data row; rows may differ in length (short rows are padded).
  void addRow(std::vector<std::string> Columns) {
    Rows.push_back(std::move(Columns));
  }

  /// Renders with two-space gutters; numeric-looking cells right-aligned.
  std::string str() const;

  /// Renders as CSV (no quoting of separators; cells must not contain ',').
  std::string csv() const;

  size_t rowCount() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace sest

#endif // SUPPORT_TEXTTABLE_H

//===- tune/Tune.cpp - Estimator-guided autotuner -------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "tune/Tune.h"

#include "obs/EventLog.h"
#include "obs/Telemetry.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/Prng.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <thread>

using namespace sest;
using namespace sest::tune;
using opt::FunctionOrder;
using opt::PassKind;
using opt::PipelineResult;
using opt::TuneConfig;
using opt::WeightSource;
using opt::weightsFromEstimate;
using opt::weightsFromProfile;

const char *sest::tune::tuneOracleName(TuneOracle O) {
  switch (O) {
  case TuneOracle::Static:
    return "static";
  case TuneOracle::Profile:
    return "profile";
  case TuneOracle::Measured:
    return "measured";
  }
  return "static";
}

bool sest::tune::parseTuneOracle(std::string_view Name, TuneOracle &O) {
  if (Name == "static")
    O = TuneOracle::Static;
  else if (Name == "profile")
    O = TuneOracle::Profile;
  else if (Name == "measured")
    O = TuneOracle::Measured;
  else
    return false;
  return true;
}

namespace {

// The fixed search grid. Dimensions, in coordinate-descent scan order:
//   0  inline TopK          {0, 2, 4, 8, 16}
//   1  inline MaxCalleeBlocks {8, 24, 48}
//   2  layout ColdFraction  {0.0, 0.01, 0.05, 0.2}
//   3  pass order           {inline-first, layout-first}
//   4  function ordering    {off, on}
// 5 * 3 * 4 * 2 * 2 = 240 grid points; canonically fewer distinct
// configs (TopK == 0 makes dimensions 1 and 3 dead, which the config
// content hash collapses — the memo cache makes revisits free).
const unsigned TopKValues[] = {0, 2, 4, 8, 16};
const size_t CalleeBlockValues[] = {8, 24, 48};
const double ColdFractionValues[] = {0.0, 0.01, 0.05, 0.2};
constexpr uint32_t DimSizes[5] = {5, 3, 4, 2, 2};

using GridPoint = std::array<uint8_t, 5>;

/// The TuneConfig defaults as a grid point (TopK 8, MaxCalleeBlocks 24,
/// ColdFraction 0.01, inline-first, function ordering off) — always the
/// search's first probe.
constexpr GridPoint DefaultPoint = {3, 1, 1, 0, 0};

TuneConfig configFor(const GridPoint &P) {
  TuneConfig C;
  C.Inline.TopK = TopKValues[P[0]];
  C.Inline.MaxCalleeBlocks = CalleeBlockValues[P[1]];
  C.Layout.ColdFraction = ColdFractionValues[P[2]];
  C.Order.clear();
  if (P[3] == 0) {
    C.Order.push_back(PassKind::Inline);
    C.Order.push_back(PassKind::Layout);
  } else {
    C.Order.push_back(PassKind::Layout);
    C.Order.push_back(PassKind::Inline);
  }
  if (P[4])
    C.Order.push_back(PassKind::FuncOrder);
  return C;
}

/// Per-dimension agreement of two winning points; dimensions dead under
/// both winners (the inline knobs when neither inlines) agree by
/// definition.
double pointOverlap(const GridPoint &A, const GridPoint &B) {
  const bool BothNoInline = TopKValues[A[0]] == 0 && TopKValues[B[0]] == 0;
  unsigned Agree = 0;
  for (int D = 0; D < 5; ++D) {
    const bool DeadDim = BothNoInline && (D == 1 || D == 3);
    if (DeadDim || A[D] == B[D])
      ++Agree;
  }
  return static_cast<double>(Agree) / 5.0;
}

/// One oracle's search over one program: the memo cache, trial log, and
/// incumbent.
struct Search {
  const CompiledSuiteProgram &CSP;
  const TuneOptions &Options;
  TuneOracle Oracle;
  const WeightSource &W; ///< Oracle weights on the pristine CFGs.
  InterpOptions RunOpts;

  std::map<uint64_t, double> Memo = {}; ///< Config hash -> objective.
  uint64_t Evaluations = 0;
  uint64_t CacheHits = 0;
  uint32_t Index = 0;
  std::vector<TuneTrial> Trajectory = {};
  GridPoint BestPoint = DefaultPoint;
  double BestObjective = 0.0;
  bool HaveBest = false;
  std::string Error = {};

  bool budgetLeft() const { return Evaluations < Options.Budget; }

  /// Scores one configuration: fresh compile, pipeline run, oracle cost.
  double evaluate(const TuneConfig &C) {
    CompiledSuiteProgram Fresh = compileProgramOnly(*CSP.Spec);
    if (!Fresh.Ok) {
      Error = "recompile failed: " + Fresh.Error;
      return 0.0;
    }
    const TranslationUnit &Unit = Fresh.unit();
    const opt::Pipeline Pipe(C);
    PipelineResult PR =
        Pipe.run(*Fresh.Ctx, *Fresh.Cfgs, *Fresh.CG, W);
    const FunctionOrder FO = PR.HasFuncOrder
                                 ? PR.FuncOrder
                                 : opt::identityFunctionOrder(Unit);
    const double OrderCost =
        opt::functionOrderCost(Unit, *Fresh.CG, PR.W, FO);
    if (Oracle == TuneOracle::Measured) {
      InterpOptions RO = RunOpts;
      ProgramBlockOrder Order;
      if (PR.HasLayout) {
        Order = PR.Layout.blockOrder();
        RO.Layout = &Order;
      }
      const RunResult RR = runProgram(Unit, *Fresh.Cfgs,
                                      CSP.Spec->Inputs[0], RO);
      if (!RR.Ok) {
        Error = "measured run failed: " + RR.Error;
        return 0.0;
      }
      return RR.LayoutCost.cost() + OrderCost;
    }
    return opt::predictedLayoutCost(Unit, *Fresh.Cfgs, *Fresh.CG, PR.W,
                                    PR.HasLayout ? &PR.Layout : nullptr) +
           OrderCost;
  }

  /// Visits one grid point under \p Phase. Returns false when the budget
  /// is exhausted (the point was not scored) or an evaluation failed.
  bool visit(const GridPoint &P, const char *Phase) {
    const TuneConfig C = configFor(P);
    const uint64_t Hash = C.contentHash();
    const auto It = Memo.find(Hash);
    double Obj;
    bool Hit = It != Memo.end();
    if (Hit) {
      Obj = It->second;
      ++CacheHits;
    } else {
      if (!budgetLeft())
        return false;
      Obj = evaluate(C);
      if (!Error.empty())
        return false;
      ++Evaluations;
      Memo.emplace(Hash, Obj);
    }
    const bool Improved = !HaveBest || Obj < BestObjective;
    if (Improved) {
      HaveBest = true;
      BestObjective = Obj;
      BestPoint = P;
    }
    TuneTrial T;
    T.Index = Index++;
    T.Phase = Phase;
    T.ConfigHash = hashHex(Hash);
    T.Objective = Obj;
    T.CacheHit = Hit;
    T.Improved = Improved;
    Trajectory.push_back(std::move(T));
    obs::counterAdd("tune.trials");
    if (!Hit)
      obs::counterAdd("tune.evaluations");
    else
      obs::counterAdd("tune.cache_hits");
    if (obs::eventLogActive())
      obs::logEvent("tune.trial", obs::provProgram(CSP.Spec->Name),
                    {obs::attr("program", CSP.Spec->Name),
                     obs::attr("oracle", tuneOracleName(Oracle)),
                     obs::attr("phase", Phase),
                     obs::attr("config", hashHex(Hash)),
                     obs::attr("objective", Obj),
                     obs::attr("cache_hit", Hit),
                     obs::attr("improved", Improved)});
    return true;
  }

  /// Runs the whole search. Returns false (with Error set) on an
  /// evaluation failure.
  bool run(bool &Exhaustive) {
    Exhaustive = Options.Budget >= tuneSearchSpaceSize();
    if (Exhaustive) {
      GridPoint P = {0, 0, 0, 0, 0};
      for (P[0] = 0; P[0] < DimSizes[0]; ++P[0])
        for (P[1] = 0; P[1] < DimSizes[1]; ++P[1])
          for (P[2] = 0; P[2] < DimSizes[2]; ++P[2])
            for (P[3] = 0; P[3] < DimSizes[3]; ++P[3])
              for (P[4] = 0; P[4] < DimSizes[4]; ++P[4])
                if (!visit(P, "exhaustive") && !Error.empty())
                  return false;
      return Error.empty();
    }

    // Seed phase: the default config first, then random points until
    // half the budget is spent. The stream is private to this (seed,
    // program, oracle) triple, so adding a program or an oracle never
    // shifts any other search.
    const uint64_t StreamSeed = HashBuilder("tune-search")
                                    .addU64(Options.Seed)
                                    .addU64(contentHash64(CSP.Spec->Source))
                                    .add(tuneOracleName(Oracle))
                                    .digest();
    Prng Rng(StreamSeed);
    const uint64_t SeedBudget = std::max<uint64_t>(1, Options.Budget / 2);
    if (!visit(DefaultPoint, "seed"))
      return Error.empty();
    for (uint64_t Tries = 0; Evaluations < SeedBudget && Tries < 8 * SeedBudget;
         ++Tries) {
      GridPoint P;
      for (int D = 0; D < 5; ++D)
        P[D] = static_cast<uint8_t>(Rng.nextBelow(DimSizes[D]));
      if (!visit(P, "seed"))
        return Error.empty();
    }

    // Greedy coordinate descent from the incumbent: scan each dimension
    // in order, move to the best value, repeat until a full sweep makes
    // no progress (or the budget runs out).
    bool Progress = true;
    while (Progress && budgetLeft()) {
      Progress = false;
      for (int D = 0; D < 5 && budgetLeft(); ++D) {
        const GridPoint Anchor = BestPoint;
        for (uint8_t V = 0; V < DimSizes[D]; ++V) {
          if (V == Anchor[D])
            continue;
          GridPoint P = Anchor;
          P[D] = V;
          if (!visit(P, "descent")) {
            if (!Error.empty())
              return false;
            break; // Budget exhausted mid-scan.
          }
          if (BestPoint != Anchor)
            Progress = true;
        }
      }
    }
    return true;
  }
};

/// Output / exit-code / profile identity of two runs of behaviorally
/// equivalent programs (the layout run's counts must match the identity
/// run's bit for bit).
bool sameBehavior(const RunResult &A, const RunResult &B,
                  std::string &Detail) {
  if (A.Output != B.Output) {
    Detail = "output differs";
    return false;
  }
  if (A.ExitCode != B.ExitCode) {
    Detail = "exit code differs";
    return false;
  }
  if (A.TheProfile.Functions.size() != B.TheProfile.Functions.size() ||
      A.TheProfile.CallSiteCounts != B.TheProfile.CallSiteCounts) {
    Detail = "profile differs";
    return false;
  }
  return true;
}

TuneProgramReport scoreProgram(const CompiledSuiteProgram &CSP,
                               const TuneOptions &Options) {
  obs::ScopedPhase Phase("tune.program", CSP.Spec->Name);

  TuneProgramReport R;
  R.Name = CSP.Spec->Name;
  R.ProgramHash = hashHex(contentHash64(CSP.Spec->Source));
  if (!CSP.Ok || CSP.Profiles.size() < 2) {
    R.Error = CSP.Ok ? "needs at least two inputs" : CSP.Error;
    return R;
  }
  const size_t EvalIdx = CSP.Profiles.size() - 1;
  R.EvalInput = CSP.Spec->Inputs[EvalIdx].Name;
  const TranslationUnit &Unit = CSP.unit();

  InterpOptions RunOpts;
  RunOpts.Engine = Options.Engine;

  // Identity baseline runs of every input (the verification references,
  // and the eval-input identity cost).
  std::vector<RunResult> BaseRuns(CSP.Spec->Inputs.size());
  for (size_t I = 0; I < BaseRuns.size(); ++I) {
    BaseRuns[I] =
        runProgram(Unit, *CSP.Cfgs, CSP.Spec->Inputs[I], RunOpts);
    if (!BaseRuns[I].Ok) {
      R.Error = "baseline run failed on input " +
                CSP.Spec->Inputs[I].Name + ": " + BaseRuns[I].Error;
      return R;
    }
  }
  const WeightSource WEvalIdentity =
      weightsFromProfile(Unit, CSP.Profiles[EvalIdx], "eval");
  R.IdentityEvalCost =
      BaseRuns[EvalIdx].LayoutCost.cost() +
      opt::functionOrderCost(Unit, *CSP.CG, WEvalIdentity,
                             opt::identityFunctionOrder(Unit));

  // Oracle weights, all on the pristine CFGs (ids are stable across the
  // per-candidate fresh compiles, so they carry over).
  EstimatorOptions Est = Options.Est;
  Est.Jobs = 1; // Parallelism is across programs.
  const ProgramEstimate Estimate =
      estimateProgram(Unit, *CSP.Cfgs, *CSP.CG, Est);
  const WeightSource WStatic =
      weightsFromEstimate(Unit, *CSP.Cfgs, Estimate, Est);
  const WeightSource WProfile =
      weightsFromProfile(Unit, CSP.Profiles[0], "profile");

  GridPoint WinningPoints[2] = {DefaultPoint, DefaultPoint};
  bool HavePoint[2] = {false, false};
  double EvalCosts[2] = {0.0, 0.0};

  for (TuneOracle O : Options.Oracles) {
    TuneOracleResult OR;
    OR.Oracle = tuneOracleName(O);
    // The measured oracle steers the pipeline with the training profile
    // and scores by running; the others score analytically under their
    // own weights.
    const WeightSource &W =
        O == TuneOracle::Static ? WStatic : WProfile;

    Search S{CSP, Options, O, W, RunOpts};
    if (!S.run(OR.Exhaustive) || !S.HaveBest) {
      R.Error = S.Error.empty() ? "search produced no result" : S.Error;
      return R;
    }
    OR.Best = configFor(S.BestPoint);
    OR.BestConfigHash = hashHex(OR.Best.contentHash());
    OR.SearchObjective = S.BestObjective;
    OR.Evaluations = S.Evaluations;
    OR.CacheHits = S.CacheHits;
    OR.Trajectory = std::move(S.Trajectory);

    // Held-out evaluation of the winner: replay the pipeline, run every
    // input for differential verification, and measure on the
    // evaluation input.
    CompiledSuiteProgram Fresh = compileProgramOnly(*CSP.Spec);
    if (!Fresh.Ok) {
      R.Error = "recompile failed: " + Fresh.Error;
      return R;
    }
    const TranslationUnit &FUnit = Fresh.unit();
    const opt::Pipeline Pipe(OR.Best);
    PipelineResult PR =
        Pipe.run(*Fresh.Ctx, *Fresh.Cfgs, *Fresh.CG, W);
    ProgramBlockOrder Order;
    InterpOptions TunedOpts = RunOpts;
    if (PR.HasLayout) {
      Order = PR.Layout.blockOrder();
      TunedOpts.Layout = &Order;
    }
    for (size_t I = 0; I < CSP.Spec->Inputs.size(); ++I) {
      const RunResult RR = runProgram(FUnit, *Fresh.Cfgs,
                                      CSP.Spec->Inputs[I], TunedOpts);
      if (!RR.Ok) {
        OR.Verified = false;
        OR.VerifyDetail = CSP.Spec->Inputs[I].Name + ": " + RR.Error;
        break;
      }
      std::string Detail;
      if (PR.HasInline) {
        const opt::InlineVerifyResult V =
            opt::compareInlinedRun(BaseRuns[I], RR, PR.Inlined);
        if (!V.Match) {
          OR.Verified = false;
          OR.VerifyDetail = CSP.Spec->Inputs[I].Name + ": " + V.Detail;
          break;
        }
      } else if (!sameBehavior(BaseRuns[I], RR, Detail)) {
        OR.Verified = false;
        OR.VerifyDetail = CSP.Spec->Inputs[I].Name + ": " + Detail;
        break;
      }
      if (I == EvalIdx) {
        OR.EvalLayoutCost = RR.LayoutCost.cost();
        const WeightSource WEvalPost =
            weightsFromProfile(FUnit, RR.TheProfile, "eval");
        const FunctionOrder FO =
            PR.HasFuncOrder ? PR.FuncOrder
                            : opt::identityFunctionOrder(FUnit);
        OR.EvalFuncOrderCost =
            opt::functionOrderCost(FUnit, *Fresh.CG, WEvalPost, FO);
      }
    }
    OR.EvalCost = OR.EvalLayoutCost + OR.EvalFuncOrderCost;
    OR.EvalReduction =
        R.IdentityEvalCost > 0
            ? (R.IdentityEvalCost - OR.EvalCost) / R.IdentityEvalCost
            : 0.0;

    const int Slot = O == TuneOracle::Static   ? 0
                     : O == TuneOracle::Profile ? 1
                                                : -1;
    if (Slot >= 0) {
      WinningPoints[Slot] = S.BestPoint;
      HavePoint[Slot] = true;
      EvalCosts[Slot] = OR.EvalCost;
    }
    R.Oracles.push_back(std::move(OR));
  }

  if (HavePoint[0] && HavePoint[1]) {
    R.ConfigOverlap = pointOverlap(WinningPoints[0], WinningPoints[1]);
    R.Regret = R.IdentityEvalCost > 0
                   ? (EvalCosts[0] - EvalCosts[1]) / R.IdentityEvalCost
                   : 0.0;
  }
  R.Ok = true;
  return R;
}

} // namespace

uint32_t sest::tune::tuneSearchSpaceSize() {
  uint32_t N = 1;
  for (uint32_t S : DimSizes)
    N *= S;
  return N;
}

TuneSuiteReport sest::tune::computeTuneReport(
    const std::vector<CompiledSuiteProgram> &Programs,
    const TuneOptions &Options) {
  obs::ScopedPhase Phase("tune.report");

  std::vector<const CompiledSuiteProgram *> Scored;
  for (const CompiledSuiteProgram &P : Programs)
    if (P.Spec)
      Scored.push_back(&P);

  unsigned Jobs = Options.Jobs;
  if (Jobs == 0)
    Jobs = std::max(1u, std::thread::hardware_concurrency());

  TuneSuiteReport Report;
  Report.Programs.resize(Scored.size());
  if (Jobs <= 1 || Scored.size() <= 1) {
    for (size_t I = 0; I < Scored.size(); ++I)
      Report.Programs[I] = scoreProgram(*Scored[I], Options);
  } else {
    // Per-program private telemetry/event contexts merged back in
    // program order: the ambient report is identical for every job
    // count (the same discipline as the opt report).
    obs::TaskCapture Cap;
    std::vector<obs::TaskCapture::Slot> Slots(Scored.size());
    std::atomic<size_t> Next{0};
    auto Worker = [&](uint32_t Track) {
      std::string Name = "worker-" + std::to_string(Track);
      for (size_t I; (I = Next.fetch_add(1)) < Scored.size();)
        Cap.run(Slots[I], Track, Name, [&] {
          Report.Programs[I] = scoreProgram(*Scored[I], Options);
        });
    };
    std::vector<std::thread> Pool;
    const unsigned N = std::min<size_t>(Jobs, Scored.size());
    Pool.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Pool.emplace_back(Worker, I + 1);
    for (std::thread &T : Pool)
      T.join();
    for (obs::TaskCapture::Slot &S : Slots)
      Cap.merge(S);
  }

  // Suite aggregation over programs where both compared oracles ran.
  size_t ComparedCount = 0;
  Report.MeanConfigOverlap = 0.0;
  Report.MeanRegret = 0.0;
  for (const TuneProgramReport &P : Report.Programs) {
    if (!P.Ok)
      continue;
    const TuneOracleResult *Static = nullptr, *Profile = nullptr;
    for (const TuneOracleResult &O : P.Oracles) {
      if (!O.Verified)
        Report.AllVerified = false;
      if (O.Oracle == "static")
        Static = &O;
      else if (O.Oracle == "profile")
        Profile = &O;
    }
    if (!Static || !Profile)
      continue;
    Report.StaticSearchReduction += P.IdentityEvalCost - Static->EvalCost;
    Report.ProfileSearchReduction +=
        P.IdentityEvalCost - Profile->EvalCost;
    Report.MeanConfigOverlap += P.ConfigOverlap;
    Report.MeanRegret += P.Regret;
    ++ComparedCount;
  }
  if (ComparedCount) {
    Report.MeanConfigOverlap /= static_cast<double>(ComparedCount);
    Report.MeanRegret /= static_cast<double>(ComparedCount);
  } else {
    Report.MeanConfigOverlap = 1.0;
    Report.MeanRegret = 0.0;
  }
  if (Report.ProfileSearchReduction > 0)
    Report.StaticSearchRecovery =
        Report.StaticSearchReduction / Report.ProfileSearchReduction;
  else
    Report.StaticSearchRecovery = 1.0;
  Report.MeetsRecoveryFloor =
      Report.StaticSearchRecovery >= Options.StaticSearchRecoveryFloor;

  obs::counterAdd("tune.report.programs", Report.Programs.size());
  return Report;
}

std::string sest::tune::tuneReportJson(const TuneSuiteReport &Report,
                                       const TuneOptions &Options) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", "sest-tune-report/1");
  W.key("oracles").beginArray();
  for (TuneOracle O : Options.Oracles)
    W.value(tuneOracleName(O));
  W.endArray();
  W.member("budget", Options.Budget);
  W.member("seed", Options.Seed);
  W.member("engine", interpEngineName(Options.Engine));
  W.key("search_space").beginObject();
  W.member("grid_points", tuneSearchSpaceSize());
  W.key("top_k").beginArray();
  for (unsigned V : TopKValues)
    W.value(V);
  W.endArray();
  W.key("max_callee_blocks").beginArray();
  for (size_t V : CalleeBlockValues)
    W.value(static_cast<uint64_t>(V));
  W.endArray();
  W.key("cold_fraction").beginArray();
  for (double V : ColdFractionValues)
    W.value(V);
  W.endArray();
  W.key("pass_order").beginArray();
  W.value("inline-first");
  W.value("layout-first");
  W.endArray();
  W.key("func_order").beginArray();
  W.value(false);
  W.value(true);
  W.endArray();
  W.endObject();

  W.key("programs").beginArray();
  for (const TuneProgramReport &P : Report.Programs) {
    W.beginObject();
    W.member("name", P.Name);
    W.member("program_hash", P.ProgramHash);
    W.member("ok", P.Ok);
    if (!P.Ok) {
      W.member("error", P.Error);
      W.endObject();
      continue;
    }
    W.member("eval_input", P.EvalInput);
    W.member("identity_eval_cost", P.IdentityEvalCost);
    W.key("oracles").beginArray();
    for (const TuneOracleResult &O : P.Oracles) {
      W.beginObject();
      W.member("oracle", O.Oracle);
      W.key("best_config").rawValue(O.Best.toJson());
      W.member("best_config_hash", O.BestConfigHash);
      W.member("search_objective", O.SearchObjective);
      W.member("eval_cost", O.EvalCost);
      W.member("eval_layout_cost", O.EvalLayoutCost);
      W.member("eval_func_order_cost", O.EvalFuncOrderCost);
      W.member("eval_reduction", O.EvalReduction);
      W.member("evaluations", O.Evaluations);
      W.member("cache_hits", O.CacheHits);
      W.member("exhaustive", O.Exhaustive);
      W.member("verified", O.Verified);
      if (!O.Verified)
        W.member("verify_detail", O.VerifyDetail);
      W.key("trajectory").beginArray();
      for (const TuneTrial &T : O.Trajectory) {
        W.beginObject();
        W.member("trial", T.Index);
        W.member("phase", T.Phase);
        W.member("config", T.ConfigHash);
        W.member("objective", T.Objective);
        W.member("cache_hit", T.CacheHit);
        W.member("improved", T.Improved);
        W.endObject();
      }
      W.endArray();
      W.endObject();
    }
    W.endArray();
    W.key("static_vs_profile").beginObject();
    W.member("config_overlap", P.ConfigOverlap);
    W.member("regret", P.Regret);
    W.endObject();
    W.endObject();
  }
  W.endArray();

  W.key("suite").beginObject();
  uint64_t ScoredCount = 0;
  for (const TuneProgramReport &P : Report.Programs)
    if (P.Ok)
      ++ScoredCount;
  W.member("programs_scored", ScoredCount);
  W.member("static_search_reduction", Report.StaticSearchReduction);
  W.member("profile_search_reduction", Report.ProfileSearchReduction);
  W.member("static_search_recovery", Report.StaticSearchRecovery);
  W.member("recovery_floor", Options.StaticSearchRecoveryFloor);
  W.member("meets_floor", Report.MeetsRecoveryFloor);
  W.member("mean_config_overlap", Report.MeanConfigOverlap);
  W.member("mean_regret", Report.MeanRegret);
  W.member("all_verified", Report.AllVerified);
  W.endObject();

  W.endObject();
  return W.take();
}

std::string sest::tune::tuneSource(std::string_view Source,
                                   std::string_view Input,
                                   const TuneOptions &Options) {
  SuiteProgram SP;
  SP.Name = "request";
  SP.Source = std::string(Source);
  SP.Inputs.push_back({"train", std::string(Input), 1});
  SP.Inputs.push_back({"eval", std::string(Input), 2});

  std::vector<CompiledSuiteProgram> Programs;
  Programs.push_back(compileProgramOnly(SP));
  CompiledSuiteProgram &CSP = Programs.back();
  if (CSP.Ok) {
    InterpOptions RunOpts;
    RunOpts.Engine = Options.Engine;
    for (const ProgramInput &In : SP.Inputs) {
      const RunResult RR = runProgram(CSP.unit(), *CSP.Cfgs, In, RunOpts);
      if (!RR.Ok) {
        CSP.Ok = false;
        CSP.Error = "run failed on input " + In.Name + ": " + RR.Error;
        break;
      }
      CSP.Profiles.push_back(RR.TheProfile);
    }
  }

  TuneOptions O = Options;
  O.Jobs = 1; // One program; parallelism lives in the caller's batcher.
  const TuneSuiteReport Report = computeTuneReport(Programs, O);
  return tuneReportJson(Report, O);
}

//===- tune/Tune.h - Estimator-guided autotuner -----------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autotuner over the optimizer's TuneConfig space: a deterministic
/// search driver (seeded random sampling, then greedy coordinate
/// descent; exhaustive when the budget covers the whole grid) scores
/// candidate configurations with a pluggable cost oracle — the static
/// estimate, a single training profile, or a measured interpreter run —
/// and every oracle's winner is then evaluated the same way the opt
/// report evaluates passes: a real run on the held-out evaluation input.
///
/// The paper's question, asked of search instead of a single pass: how
/// much of the improvement a profile-guided search finds does a purely
/// static search recover? The headline is the static search recovery
/// ratio (advisory floor: 0.7).
///
/// Everything is deterministic. Config scores are memoized by the
/// config's content hash (only cache misses consume search budget), the
/// random phase derives its seed from (tuner seed, program source hash,
/// oracle name), and the sest-tune-report/1 document contains no
/// wall-clock fields, so it is byte-identical across job counts and
/// cache states.
///
//===----------------------------------------------------------------------===//

#ifndef TUNE_TUNE_H
#define TUNE_TUNE_H

#include "estimators/Pipeline.h"
#include "interp/Interp.h"
#include "opt/Pass.h"
#include "suite/SuiteRunner.h"

#include <string>
#include <vector>

namespace sest {
namespace tune {

/// How a candidate configuration is scored during the search.
enum class TuneOracle {
  Static,   ///< Analytic cost under the static-estimate weights.
  Profile,  ///< Analytic cost under the training-input profile weights.
  Measured, ///< Real interpreter run on the training input.
};

/// Stable oracle name ("static", "profile", "measured").
const char *tuneOracleName(TuneOracle O);

/// Parses an oracle name; returns false on an unknown name.
bool parseTuneOracle(std::string_view Name, TuneOracle &O);

/// Tuner configuration.
struct TuneOptions {
  /// Which oracles to search with. The static-vs-profile comparison
  /// (overlap, regret, recovery) needs both of the first two; the
  /// measured oracle is opt-in (it runs the program once per cache
  /// miss).
  std::vector<TuneOracle> Oracles = {TuneOracle::Static,
                                     TuneOracle::Profile};
  /// Search budget per (program, oracle): the number of distinct
  /// configurations evaluated. Memoization cache hits are free. When the
  /// budget covers the whole grid the search is exhaustive.
  uint32_t Budget = 24;
  /// Tuner seed, mixed with the program hash and oracle name into each
  /// search's private PRNG stream.
  uint64_t Seed = 0;
  /// Estimator configuration for the static oracle's weights.
  EstimatorOptions Est;
  InterpEngine Engine = InterpEngine::Bytecode;
  /// Worker threads across programs (1 = serial, 0 = all cores).
  /// Reports are byte-identical for every value.
  unsigned Jobs = 1;
  /// Advisory floor on the suite static search recovery ratio.
  double StaticSearchRecoveryFloor = 0.7;
};

/// One search trial (one point visited), in visit order.
struct TuneTrial {
  uint32_t Index = 0;     ///< Visit order, 0-based, cache hits included.
  std::string Phase;      ///< "seed" | "descent" | "exhaustive".
  std::string ConfigHash; ///< hashHex of the canonical config hash.
  double Objective = 0.0; ///< Oracle score of the configuration.
  bool CacheHit = false;  ///< Score came from the memo cache.
  bool Improved = false;  ///< New best at the time of the visit.
};

/// One oracle's search outcome on one program.
struct TuneOracleResult {
  std::string Oracle;
  opt::TuneConfig Best;
  std::string BestConfigHash;
  double SearchObjective = 0.0; ///< Oracle score of the winner.
  /// Held-out evaluation of the winner: measured layout cost of a real
  /// run on the evaluation input plus the function-order locality cost
  /// under that run's own call-site counts.
  double EvalCost = 0.0;
  double EvalLayoutCost = 0.0;
  double EvalFuncOrderCost = 0.0;
  double EvalReduction = 0.0; ///< (identity - eval) / identity.
  uint64_t Evaluations = 0;   ///< Distinct configs scored (cache misses).
  uint64_t CacheHits = 0;
  bool Exhaustive = false;
  /// The winner replays correctly: differential verification against the
  /// unoptimized program on every input.
  bool Verified = true;
  std::string VerifyDetail;
  std::vector<TuneTrial> Trajectory;
};

/// Everything measured for one program.
struct TuneProgramReport {
  std::string Name;
  std::string ProgramHash;
  std::string EvalInput;
  bool Ok = false;
  std::string Error;
  /// Identity baseline on the evaluation input: measured layout cost of
  /// the untouched program plus its identity-order locality cost.
  double IdentityEvalCost = 0.0;
  std::vector<TuneOracleResult> Oracles;
  /// Static vs profile winning configs: fraction of search dimensions on
  /// which the two winners agree (1.0 when either oracle is absent).
  double ConfigOverlap = 1.0;
  /// (static eval cost - profile eval cost) / identity cost; how much
  /// held-out performance the static search gave up.
  double Regret = 0.0;
};

/// The whole-suite report.
struct TuneSuiteReport {
  std::vector<TuneProgramReport> Programs;
  // Totals over programs with Ok == true (and both compared oracles).
  double StaticSearchReduction = 0.0;  ///< Σ (identity - static eval).
  double ProfileSearchReduction = 0.0; ///< Σ (identity - profile eval).
  /// StaticSearchReduction / ProfileSearchReduction (1.0 when the
  /// profile-guided search found nothing to improve).
  double StaticSearchRecovery = 1.0;
  bool MeetsRecoveryFloor = true;
  double MeanConfigOverlap = 1.0;
  double MeanRegret = 0.0;
  bool AllVerified = true;
};

/// The size of the fixed search grid (distinct canonical configs may be
/// fewer: disabling inlining collapses the inline-knob dimensions).
uint32_t tuneSearchSpaceSize();

/// Runs the search for every oracle over every compiled-and-profiled
/// program (skipping failed ones; programs need at least two inputs).
/// Parallel across programs; byte-identical results for every Jobs value.
TuneSuiteReport
computeTuneReport(const std::vector<CompiledSuiteProgram> &Programs,
                  const TuneOptions &Options = {});

/// Serializes as sest-tune-report/1 (byte-deterministic).
std::string tuneReportJson(const TuneSuiteReport &Report,
                           const TuneOptions &Options = {});

/// Single-source entry point for the analysis service: compiles \p
/// Source, profiles it on two synthetic inputs (training seed 1,
/// evaluation seed 2, both fed \p Input on stdin), runs the search, and
/// returns the sest-tune-report/1 document. Compile and runtime errors
/// are data, not transport failures: the report comes back with the
/// program's Ok == false and the error inside.
std::string tuneSource(std::string_view Source, std::string_view Input,
                       const TuneOptions &Options = {});

} // namespace tune
} // namespace sest

#endif // TUNE_TUNE_H

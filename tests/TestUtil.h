//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the unit and integration tests: compile a mini-C
/// source to an analyzed AST + CFGs, and run it collecting a profile.
///
//===----------------------------------------------------------------------===//

#ifndef TESTS_TESTUTIL_H
#define TESTS_TESTUTIL_H

#include "cfg/Cfg.h"
#include "interp/Interp.h"
#include "lang/Parser.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace sest::test {

/// A fully compiled mini-C program.
struct Compiled {
  std::unique_ptr<AstContext> Ctx;
  std::unique_ptr<CfgModule> Cfgs;
  DiagnosticEngine Diags;

  TranslationUnit &unit() { return Ctx->unit(); }
  const FunctionDecl *fn(const std::string &Name) const {
    return Ctx->unit().findFunction(Name);
  }
  const Cfg *cfg(const std::string &Name) const {
    const FunctionDecl *F = Ctx->unit().findFunction(Name);
    return F ? Cfgs->cfg(F) : nullptr;
  }
};

/// Compiles \p Source; fails the current test (and returns nullptr) on
/// diagnostics.
inline std::unique_ptr<Compiled> compile(const std::string &Source) {
  auto C = std::make_unique<Compiled>();
  C->Ctx = std::make_unique<AstContext>();
  if (!parseAndAnalyze(Source, *C->Ctx, C->Diags)) {
    ADD_FAILURE() << "compilation failed:\n" << C->Diags.str();
    return nullptr;
  }
  C->Cfgs = std::make_unique<CfgModule>(
      CfgModule::build(C->Ctx->unit(), C->Diags));
  if (C->Diags.hasErrors()) {
    ADD_FAILURE() << "CFG construction failed:\n" << C->Diags.str();
    return nullptr;
  }
  return C;
}

/// Compiles \p Source expecting failure; returns the diagnostics text.
inline std::string compileExpectError(const std::string &Source) {
  AstContext Ctx;
  DiagnosticEngine Diags;
  bool Ok = parseAndAnalyze(Source, Ctx, Diags);
  EXPECT_FALSE(Ok) << "expected compilation to fail";
  return Diags.str();
}

/// Runs a compiled program; fails the test on runtime errors.
inline RunResult run(Compiled &C, const std::string &InputText = "",
                     uint64_t Seed = 1) {
  ProgramInput In;
  In.Text = InputText;
  In.RandSeed = Seed;
  RunResult R = runProgram(C.unit(), *C.Cfgs, In);
  EXPECT_TRUE(R.Ok) << "runtime error: " << R.Error;
  return R;
}

/// Compile + run in one step.
inline RunResult compileAndRun(const std::string &Source,
                               const std::string &InputText = "",
                               uint64_t Seed = 1) {
  auto C = compile(Source);
  if (!C)
    return {};
  return run(*C, InputText, Seed);
}

} // namespace sest::test

#endif // TESTS_TESTUTIL_H

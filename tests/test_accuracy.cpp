//===- tests/test_accuracy.cpp - Accuracy attribution unit tests -----------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the accuracy-observability subsystem: the weight-matching
/// loss decomposition (shares must sum to the loss exactly), per-entity
/// divergence records, heuristic attribution on every conditional
/// branch, the sest-accuracy-report/1 JSON schema (validated by parsing
/// it back), the golden annotated listing, and engine-independence of
/// the report bytes.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "callgraph/CallGraph.h"
#include "estimators/Pipeline.h"
#include "metrics/WeightMatching.h"
#include "obs/Accuracy.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

using namespace sest;
using namespace sest::test;

namespace {

double shareSum(const WeightMatchingAttribution &A) {
  return std::accumulate(A.LossShare.begin(), A.LossShare.end(), 0.0);
}

//===----------------------------------------------------------------------===//
// Weight-matching loss decomposition
//===----------------------------------------------------------------------===//

TEST(WeightMatchingAttribution, SharesSumToLossExactly) {
  // A deliberately misranked pair: the estimate promotes a cold item.
  std::vector<double> Est = {10, 9, 1, 1, 1};
  std::vector<double> Act = {1, 1, 10, 9, 1};
  WeightMatchingAttribution A = weightMatchingAttribution(Est, Act, 0.25);
  EXPECT_LT(A.Score, 1.0);
  EXPECT_NEAR(A.Loss, 1.0 - A.Score, 1e-12);
  EXPECT_NEAR(shareSum(A), A.Loss, 1e-9);
  // Same decomposition invariant at other cutoffs.
  for (double Cutoff : {0.10, 0.5, 0.75, 1.0}) {
    WeightMatchingAttribution B =
        weightMatchingAttribution(Est, Act, Cutoff);
    EXPECT_NEAR(shareSum(B), B.Loss, 1e-9) << "cutoff " << Cutoff;
  }
}

TEST(WeightMatchingAttribution, AgreesWithScalarScore) {
  std::vector<double> Est = {5, 4, 3, 2, 1, 0.5};
  std::vector<double> Act = {1, 6, 2, 5, 0, 3};
  for (double Cutoff : {0.1, 0.25, 0.4, 0.6}) {
    WeightMatchingAttribution A =
        weightMatchingAttribution(Est, Act, Cutoff);
    EXPECT_NEAR(A.Score, weightMatchingScore(Est, Act, Cutoff), 1e-12);
    EXPECT_NEAR(shareSum(A), A.Loss, 1e-9);
  }
}

TEST(WeightMatchingAttribution, PerfectRankingHasZeroShares) {
  std::vector<double> Est = {8, 4, 2, 1};
  std::vector<double> Act = {80, 40, 20, 10};
  WeightMatchingAttribution A = weightMatchingAttribution(Est, Act, 0.25);
  EXPECT_DOUBLE_EQ(A.Score, 1.0);
  EXPECT_DOUBLE_EQ(A.Loss, 0.0);
  for (double S : A.LossShare)
    EXPECT_DOUBLE_EQ(S, 0.0);
  EXPECT_EQ(A.EstRank, A.ActRank);
}

TEST(WeightMatchingAttribution, OmittedEstimatesCarryNoShare) {
  // Negative estimates mark omitted items (indirect call sites): they
  // are excluded from both rankings and never carry loss share.
  std::vector<double> Est = {5, -1, 3, -1};
  std::vector<double> Act = {10, 100, 5, 7};
  WeightMatchingAttribution A = weightMatchingAttribution(Est, Act, 0.5);
  EXPECT_EQ(A.EstRank[1], -1);
  EXPECT_EQ(A.ActRank[1], -1);
  EXPECT_DOUBLE_EQ(A.LossShare[1], 0.0);
  EXPECT_DOUBLE_EQ(A.LossShare[3], 0.0);
  EXPECT_NEAR(shareSum(A), A.Loss, 1e-9);
}

TEST(WeightMatchingAttribution, DegenerateInputsScorePerfect) {
  WeightMatchingAttribution Empty = weightMatchingAttribution({}, {}, 0.25);
  EXPECT_DOUBLE_EQ(Empty.Score, 1.0);
  EXPECT_DOUBLE_EQ(Empty.Loss, 0.0);
  std::vector<double> Zeros = {0, 0, 0};
  WeightMatchingAttribution Z =
      weightMatchingAttribution(Zeros, Zeros, 0.25);
  EXPECT_DOUBLE_EQ(Z.Score, 1.0);
  EXPECT_NEAR(shareSum(Z), Z.Loss, 1e-9);
}

//===----------------------------------------------------------------------===//
// Whole-program attribution
//===----------------------------------------------------------------------===//

const char *const DivergentSource =
    "int work(int n) {\n"
    "  int s = 0;\n"
    "  int i;\n"
    "  for (i = 0; i < n; i++) {\n"
    "    if (i % 3 == 0)\n"
    "      s += i;\n"
    "    else\n"
    "      s -= 1;\n"
    "  }\n"
    "  return s;\n"
    "}\n"
    "int rare(int n) { return n * 2; }\n"
    "int main() {\n"
    "  int t = work(100);\n"
    "  if (t < 0)\n"
    "    t = rare(t);\n"
    "  return t > 0 ? 0 : 1;\n"
    "}\n";

struct Attributed {
  std::unique_ptr<Compiled> C;
  std::unique_ptr<CallGraph> CG;
  ProgramEstimate Estimate;
  Profile P;
  obs::AccuracyReport Rep;
};

Attributed attribute(const char *Source, const EstimatorOptions &Opts = {}) {
  Attributed Out;
  Out.C = compile(Source);
  if (!Out.C)
    return Out;
  Out.CG = std::make_unique<CallGraph>(
      CallGraph::build(Out.C->unit(), *Out.C->Cfgs));
  Out.Estimate =
      estimateProgram(Out.C->unit(), *Out.C->Cfgs, *Out.CG, Opts);
  Out.P = run(*Out.C).TheProfile;
  Out.Rep = obs::computeAccuracy(Out.C->unit(), *Out.C->Cfgs, *Out.CG,
                                 Out.Estimate, Out.P, Opts);
  return Out;
}

TEST(Accuracy, FamilySharesSumToFamilyLoss) {
  Attributed A = attribute(DivergentSource);
  ASSERT_NE(A.C, nullptr);
  for (const obs::FamilyAccuracy *F :
       {&A.Rep.Blocks, &A.Rep.Functions, &A.Rep.CallSites}) {
    double Sum = 0.0;
    for (const obs::EntityDivergence &D : F->Entities)
      Sum += D.LossShare;
    EXPECT_NEAR(Sum, F->Loss, 1e-9)
        << obs::entityFamilyName(F->Family);
    EXPECT_NEAR(F->Loss, 1.0 - F->Score, 1e-12);
  }
  // Every entity is labeled with its owning function.
  for (const obs::EntityDivergence &D : A.Rep.Blocks.Entities)
    EXPECT_FALSE(D.Function.empty());
}

TEST(Accuracy, EveryConditionalBranchHasAttribution) {
  Attributed A = attribute(DivergentSource);
  ASSERT_NE(A.C, nullptr);

  // Count the conditional branches in the CFGs; each must have exactly
  // one divergence record with a named heuristic and a non-empty
  // evidence list whose head is the deciding heuristic.
  size_t CondBranches = 0;
  for (const auto &[F, G] : A.C->Cfgs->all())
    for (const auto &B : G->blocks())
      if (B->terminator() == TerminatorKind::CondBranch)
        ++CondBranches;
  ASSERT_GT(CondBranches, 0u);
  EXPECT_EQ(A.Rep.Branches.size(), CondBranches);

  for (const obs::BranchDivergence &D : A.Rep.Branches) {
    EXPECT_FALSE(D.Heuristic.empty());
    ASSERT_FALSE(D.Fired.empty());
    EXPECT_EQ(D.Fired.front().Name, D.Heuristic);
    EXPECT_EQ(D.Fired.front().PredictTrue, D.PredictTrue);
    EXPECT_GE(D.actualTakenRatio(), 0.0);
    EXPECT_LE(D.actualTakenRatio(), 1.0);
    EXPECT_GE(D.ProbTrue, 0.0);
    EXPECT_LE(D.ProbTrue, 1.0);
  }

  // The loop back-edge branch in work() executes and is mostly taken.
  bool FoundLoop = false;
  for (const obs::BranchDivergence &D : A.Rep.Branches)
    if (D.Function == "work" && D.Heuristic == "loop") {
      FoundLoop = true;
      EXPECT_TRUE(D.PredictTrue);
      EXPECT_GT(D.executed(), 0.0);
      EXPECT_GT(D.actualTakenRatio(), 0.9);
    }
  EXPECT_TRUE(FoundLoop);
}

TEST(Accuracy, MissTotalsMatchBranchRecords) {
  Attributed A = attribute(DivergentSource);
  ASSERT_NE(A.C, nullptr);
  double Executed = 0.0, Misses = 0.0;
  for (const obs::BranchDivergence &D : A.Rep.Branches) {
    if (D.ConstantCondition || D.executed() <= 0)
      continue;
    Executed += D.executed();
    Misses += D.missCount();
  }
  EXPECT_DOUBLE_EQ(A.Rep.Miss.Executed, Executed);
  EXPECT_DOUBLE_EQ(A.Rep.Miss.Misses, Misses);
}

TEST(Accuracy, IntraScoreIsWeightedAverageOfPerFunctionTerms) {
  Attributed A = attribute(DivergentSource);
  ASSERT_NE(A.C, nullptr);
  ASSERT_FALSE(A.Rep.IntraPerFunction.empty());
  double Num = 0.0, Den = 0.0;
  for (const FunctionIntraScore &S : A.Rep.IntraPerFunction) {
    Num += S.Score * S.Weight;
    Den += S.Weight;
  }
  ASSERT_GT(Den, 0.0);
  EXPECT_NEAR(A.Rep.IntraScore, Num / Den, 1e-12);
}

TEST(Accuracy, WorstIndicesOrderByDescendingLossShare) {
  Attributed A = attribute(DivergentSource);
  ASSERT_NE(A.C, nullptr);
  std::vector<size_t> Order = A.Rep.Blocks.worstIndices(0);
  ASSERT_EQ(Order.size(), A.Rep.Blocks.Entities.size());
  for (size_t I = 1; I < Order.size(); ++I)
    EXPECT_GE(A.Rep.Blocks.Entities[Order[I - 1]].LossShare,
              A.Rep.Blocks.Entities[Order[I]].LossShare);
  EXPECT_EQ(A.Rep.Blocks.worstIndices(3).size(), 3u);
}

//===----------------------------------------------------------------------===//
// JSON schema
//===----------------------------------------------------------------------===//

TEST(Accuracy, ReportJsonRoundTripsThroughParser) {
  Attributed A = attribute(DivergentSource);
  ASSERT_NE(A.C, nullptr);
  std::string Json = obs::accuracyReportJson({A.Rep});
  std::optional<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.has_value()) << Json.substr(0, 200);

  ASSERT_NE(Doc->find("schema"), nullptr);
  EXPECT_EQ(Doc->find("schema")->StringVal, "sest-accuracy-report/1");
  const JsonValue *Programs = Doc->find("programs");
  ASSERT_NE(Programs, nullptr);
  ASSERT_EQ(Programs->Items.size(), 1u);
  const JsonValue &Prog = Programs->Items[0];
  const JsonValue *Families = Prog.find("families");
  ASSERT_NE(Families, nullptr);
  const JsonValue *Blocks = Families->find("block");
  ASSERT_NE(Blocks, nullptr);
  EXPECT_NEAR(Blocks->numberOr("score", -1), A.Rep.Blocks.Score, 1e-12);
  EXPECT_NEAR(Blocks->numberOr("loss", -1), A.Rep.Blocks.Loss, 1e-12);
  EXPECT_EQ(static_cast<size_t>(Blocks->numberOr("entities_total", 0)),
            A.Rep.Blocks.Entities.size());
  // One branch record per conditional branch, with the full evidence.
  const JsonValue *Branches = Prog.find("branches");
  ASSERT_NE(Branches, nullptr);
  EXPECT_EQ(static_cast<size_t>(Branches->numberOr("records_total", 0)),
            A.Rep.Branches.size());
  const JsonValue *Records = Branches->find("records");
  ASSERT_NE(Records, nullptr);
  ASSERT_FALSE(Records->Items.empty());
  const JsonValue &First = Records->Items[0];
  ASSERT_NE(First.find("heuristic"), nullptr);
  EXPECT_FALSE(First.find("heuristic")->StringVal.empty());
  ASSERT_NE(First.find("fired"), nullptr);
  EXPECT_GE(First.find("fired")->Items.size(), 1u);
  EXPECT_NEAR(Branches->numberOr("miss_rate", -1), A.Rep.Miss.rate(),
              1e-12);
}

TEST(Accuracy, MaxEntitiesCapsWorstFirst) {
  Attributed A = attribute(DivergentSource);
  ASSERT_NE(A.C, nullptr);
  std::string Json = obs::accuracyReportJson({A.Rep}, 2);
  std::optional<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *Programs = Doc->find("programs");
  ASSERT_NE(Programs, nullptr);
  ASSERT_FALSE(Programs->Items.empty());
  const JsonValue *Families = Programs->Items[0].find("families");
  ASSERT_NE(Families, nullptr);
  const JsonValue *Blocks = Families->find("block");
  ASSERT_NE(Blocks, nullptr);
  ASSERT_NE(Blocks->find("entities"), nullptr);
  EXPECT_LE(Blocks->find("entities")->Items.size(), 2u);
  // entities_total still reports the uncapped count.
  EXPECT_EQ(static_cast<size_t>(Blocks->numberOr("entities_total", 0)),
            A.Rep.Blocks.Entities.size());
}

//===----------------------------------------------------------------------===//
// Renderings
//===----------------------------------------------------------------------===//

TEST(Accuracy, GoldenAnnotatedListing) {
  const std::string Source = "int main() {\n"
                             "  int i;\n"
                             "  int s = 0;\n"
                             "  for (i = 0; i < 4; i++) {\n"
                             "    if (i > 1)\n"
                             "      s += i;\n"
                             "  }\n"
                             "  return s;\n"
                             "}\n";
  auto C = compile(Source);
  ASSERT_NE(C, nullptr);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  EstimatorOptions Opts;
  ProgramEstimate E = estimateProgram(C->unit(), *C->Cfgs, CG, Opts);
  Profile P = run(*C).TheProfile;
  obs::AccuracyReport Rep =
      obs::computeAccuracy(C->unit(), *C->Cfgs, CG, E, P, Opts);

  const std::string Expected =
      "         est      actual  line  source\n"
      "           .           .     1  int main() {\n"
      "        1.00           1     2    int i;\n"
      "           .           .     3    int s = 0;\n"
      "       14.00          14     4    for (i = 0; i < 4; i++) {\n"
      "                                ^ branch in main: heuristic=loop "
      "predicted=true p(true)=0.80 taken-ratio=0.80 (4/5) [ok]\n"
      "           .           .     5      if (i > 1)\n"
      "                                ^ branch in main: heuristic=store "
      "predicted=true p(true)=0.80 taken-ratio=0.50 (2/4) [ok]\n"
      "        3.20           2     6        s += i;\n"
      "           .           .     7    }\n"
      "           .           .     8    return s;\n"
      "           .           .     9  }\n";
  EXPECT_EQ(obs::renderAnnotatedListing(Source, Rep), Expected);
}

TEST(Accuracy, RenderingsMentionKeyFacts) {
  Attributed A = attribute(DivergentSource);
  ASSERT_NE(A.C, nullptr);
  std::string Summary = obs::renderAccuracySummary(A.Rep);
  EXPECT_NE(Summary.find("smart+markov"), std::string::npos);
  EXPECT_NE(Summary.find("blocks"), std::string::npos);
  EXPECT_NE(Summary.find("Branch miss rate"), std::string::npos);
  std::string Worst = obs::renderWorstTables(A.Rep, 3);
  EXPECT_NE(Worst.find("WORST 3"), std::string::npos);
  std::string Listing =
      obs::renderAnnotatedListing(DivergentSource, A.Rep);
  EXPECT_NE(Listing.find("heuristic="), std::string::npos);
  EXPECT_NE(Listing.find("taken-ratio="), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(Accuracy, ReportBytesIdenticalAcrossEngines) {
  auto C = compile(DivergentSource);
  ASSERT_NE(C, nullptr);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  EstimatorOptions Opts;
  ProgramEstimate E = estimateProgram(C->unit(), *C->Cfgs, CG, Opts);

  auto ReportWith = [&](InterpEngine Engine) {
    ProgramInput In;
    InterpOptions IOpts;
    IOpts.Engine = Engine;
    RunResult R = runProgram(C->unit(), *C->Cfgs, In, IOpts);
    EXPECT_TRUE(R.Ok) << R.Error;
    obs::AccuracyReport Rep = obs::computeAccuracy(
        C->unit(), *C->Cfgs, CG, E, R.TheProfile, Opts);
    return obs::accuracyReportJson({Rep});
  };
  EXPECT_EQ(ReportWith(InterpEngine::Ast),
            ReportWith(InterpEngine::Bytecode));
}

} // namespace

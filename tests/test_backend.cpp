//===- tests/test_backend.cpp - Native backend unit tests ------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the compile-to-C backend: capability probing, byte-
/// deterministic emission, artifact memoization, and layout-true code
/// emission (an artifact compiled for the optimizer's layout must be a
/// different translation unit with identical observable semantics).
/// Emission tests run everywhere; compile/run tests skip cleanly on
/// hosts without a C compiler.
///
//===----------------------------------------------------------------------===//

#include "backend/Backend.h"
#include "backend/Native.h"
#include "interp/bytecode/BytecodeCompiler.h"
#include "opt/Layout.h"
#include "opt/WeightSource.h"
#include "suite/Suite.h"
#include "suite/SuiteRunner.h"

#include <gtest/gtest.h>

using namespace sest;

namespace {

/// Compiled program + bytecode for one suite program.
struct Lowered {
  CompiledSuiteProgram C;
  bc::BcModule Bc;
  explicit Lowered(const std::string &Name)
      : C(compileProgramOnly(*findSuiteProgram(Name))),
        Bc(bc::compileBytecode(C.unit(), *C.Cfgs)) {}
};

/// Converts the optimizer's layout into the backend's plan shape (the
/// same conversion tools/sestc.cpp does).
backend::NativeLayoutPlan planFromLayout(const opt::ProgramLayout &PL) {
  backend::NativeLayoutPlan Plan;
  Plan.Order = PL.blockOrder();
  for (const opt::FunctionLayout &F : PL.Functions)
    Plan.FirstColdPos.push_back(F.FirstColdPos);
  return Plan;
}

TEST(Backend, CapabilityProbeIsConsistent) {
  std::string Why;
  bool Available = backend::nativeEngineAvailable(&Why);
  if (Available) {
    EXPECT_FALSE(backend::hostCompilerPath().empty());
    EXPECT_TRUE(Why.empty()) << Why;
  } else {
    EXPECT_TRUE(backend::hostCompilerPath().empty());
    EXPECT_FALSE(Why.empty());
  }
  EXPECT_EQ(backend::cBackend().available(nullptr), Available);
  EXPECT_EQ(backend::cBackend().name(), "c");
}

/// Emission is pure (no host compiler involved): it must be available
/// everywhere and byte-deterministic, and explicitly spelling out the
/// identity layout must emit the same translation unit as the implicit
/// (empty-plan) identity.
TEST(Backend, EmissionIsDeterministic) {
  Lowered L("compress");
  ASSERT_TRUE(L.C.Ok) << L.C.Error;
  std::string Err;
  std::string First = backend::cBackend().emitSource(L.C.unit(), *L.C.Cfgs,
                                                     L.Bc, {}, &Err);
  ASSERT_FALSE(First.empty()) << Err;
  std::string Second = backend::cBackend().emitSource(L.C.unit(), *L.C.Cfgs,
                                                      L.Bc, {}, &Err);
  EXPECT_EQ(First, Second);
  // The artifact entry points the host loader resolves must be present.
  EXPECT_NE(First.find("sest_native_run"), std::string::npos);
  EXPECT_NE(First.find("sest_native_free"), std::string::npos);

  backend::NativeLayoutPlan Identity =
      planFromLayout(opt::identityLayout(L.C.unit(), *L.C.Cfgs));
  std::string Explicit = backend::cBackend().emitSource(
      L.C.unit(), *L.C.Cfgs, L.Bc, Identity, &Err);
  EXPECT_EQ(First, Explicit);
}

TEST(Backend, ArtifactsAreMemoizedBySourceHash) {
  std::string Why;
  if (!backend::nativeEngineAvailable(&Why))
    GTEST_SKIP() << "native tier unavailable: " << Why;
  Lowered L("gs");
  ASSERT_TRUE(L.C.Ok) << L.C.Error;
  std::string Err;
  auto A = backend::cBackend().compile(L.C.unit(), *L.C.Cfgs, L.Bc, {}, &Err);
  ASSERT_NE(A, nullptr) << Err;
  auto B = backend::cBackend().compile(L.C.unit(), *L.C.Cfgs, L.Bc, {}, &Err);
  ASSERT_NE(B, nullptr) << Err;
  // Same generated source -> the same loaded artifact, not a recompile.
  EXPECT_EQ(A.get(), B.get());
  EXPECT_FALSE(A->sourceHash().empty());
  EXPECT_GT(A->sourceBytes(), 0u);
  EXPECT_GT(A->compileMs(), 0.0);
}

TEST(Backend, ArtifactRunMatchesAstOracle) {
  std::string Why;
  if (!backend::nativeEngineAvailable(&Why))
    GTEST_SKIP() << "native tier unavailable: " << Why;
  Lowered L("gs");
  ASSERT_TRUE(L.C.Ok) << L.C.Error;
  std::string Err;
  auto Artifact =
      backend::cBackend().compile(L.C.unit(), *L.C.Cfgs, L.Bc, {}, &Err);
  ASSERT_NE(Artifact, nullptr) << Err;
  for (const ProgramInput &Input : L.C.Spec->Inputs) {
    InterpOptions AstOpts;
    AstOpts.Engine = InterpEngine::Ast;
    RunResult A = runProgram(L.C.unit(), *L.C.Cfgs, Input, AstOpts);
    RunResult N = Artifact->run(L.C.unit(), *L.C.Cfgs, Input, {});
    std::string What = "gs/" + Input.Name;
    EXPECT_EQ(A.Ok, N.Ok) << What;
    EXPECT_EQ(A.ExitCode, N.ExitCode) << What;
    EXPECT_EQ(A.Output, N.Output) << What;
    EXPECT_EQ(A.StepsExecuted, N.StepsExecuted) << What;
    EXPECT_EQ(A.TheProfile.TotalCycles, N.TheProfile.TotalCycles) << What;
    ASSERT_TRUE(A.TheProfile.shapeMatches(N.TheProfile)) << What;
    for (size_t F = 0; F < A.TheProfile.Functions.size(); ++F) {
      EXPECT_EQ(A.TheProfile.Functions[F].BlockCounts,
                N.TheProfile.Functions[F].BlockCounts)
          << What << " fn " << F;
      EXPECT_EQ(A.TheProfile.Functions[F].ArcCounts,
                N.TheProfile.Functions[F].ArcCounts)
          << What << " fn " << F;
    }
    EXPECT_EQ(A.TheProfile.CallSiteCounts, N.TheProfile.CallSiteCounts)
        << What;
  }
}

/// Layout-true emission: compiling for a profile-driven layout must
/// produce a *different* translation unit (the layout is real
/// instruction-stream structure, not metadata) whose observable
/// behavior — profile, output, steps — is bit-identical to the identity
/// artifact, and whose reported layout cost matches the layout the plan
/// was built from.
TEST(Backend, LayoutTrueEmissionPreservesSemantics) {
  std::string Why;
  if (!backend::nativeEngineAvailable(&Why))
    GTEST_SKIP() << "native tier unavailable: " << Why;
  const SuiteProgram *P = findSuiteProgram("compress");
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileAndProfileProgram(*P);
  ASSERT_TRUE(C.Ok) << C.Error;
  bc::BcModule Bc = bc::compileBytecode(C.unit(), *C.Cfgs);

  opt::ProgramLayout PL = opt::computeBlockLayout(
      C.unit(), *C.Cfgs,
      opt::weightsFromProfile(C.unit(), C.Profiles[0], "profile"));
  bool AnyReordered = false;
  for (const opt::FunctionLayout &F : PL.Functions)
    AnyReordered = AnyReordered || !F.isIdentity();
  ASSERT_TRUE(AnyReordered)
      << "compress layout unexpectedly identity; pick another program";

  std::string Err;
  std::string IdentitySrc = backend::cBackend().emitSource(
      C.unit(), *C.Cfgs, Bc, {}, &Err);
  ASSERT_FALSE(IdentitySrc.empty()) << Err;
  std::string LayoutSrc = backend::cBackend().emitSource(
      C.unit(), *C.Cfgs, Bc, planFromLayout(PL), &Err);
  ASSERT_FALSE(LayoutSrc.empty()) << Err;
  EXPECT_NE(IdentitySrc, LayoutSrc);

  auto Identity =
      backend::cBackend().compile(C.unit(), *C.Cfgs, Bc, {}, &Err);
  ASSERT_NE(Identity, nullptr) << Err;
  auto Layout = backend::cBackend().compile(C.unit(), *C.Cfgs, Bc,
                                            planFromLayout(PL), &Err);
  ASSERT_NE(Layout, nullptr) << Err;
  EXPECT_NE(Identity->sourceHash(), Layout->sourceHash());

  // An artifact scores LayoutCost against the layout *baked into it*
  // (layout is instruction-stream structure there, not an option), so
  // each artifact must reproduce the interpreter's score for that same
  // layout: the identity artifact matches a plain walker run, the
  // layout artifact matches a walker run scored under the plan's order.
  RunResult RId = Identity->run(C.unit(), *C.Cfgs, P->Inputs.front(), {});
  RunResult RLay = Layout->run(C.unit(), *C.Cfgs, P->Inputs.front(), {});
  EXPECT_EQ(RId.Ok, RLay.Ok);
  EXPECT_EQ(RId.Output, RLay.Output);
  EXPECT_EQ(RId.ExitCode, RLay.ExitCode);
  EXPECT_EQ(RId.StepsExecuted, RLay.StepsExecuted);
  EXPECT_EQ(RId.TheProfile.TotalCycles, RLay.TheProfile.TotalCycles);

  ProgramBlockOrder Order = PL.blockOrder();
  InterpOptions AstIdentity, AstLayout;
  AstIdentity.Engine = AstLayout.Engine = InterpEngine::Ast;
  AstLayout.Layout = &Order;
  RunResult WalkId =
      runProgram(C.unit(), *C.Cfgs, P->Inputs.front(), AstIdentity);
  RunResult WalkLay =
      runProgram(C.unit(), *C.Cfgs, P->Inputs.front(), AstLayout);
  EXPECT_EQ(RId.LayoutCost.cost(), WalkId.LayoutCost.cost());
  EXPECT_EQ(RLay.LayoutCost.cost(), WalkLay.LayoutCost.cost());
}

} // namespace

//===- tests/test_bytecode_diff.cpp - Bytecode vs tree-walker diff ---------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests pinning the bytecode VM to the tree-walker oracle:
/// every suite program × input must produce bit-identical profiles
/// (block, arc, entry, call-site counts and cycles), output, exit codes,
/// and limit-abort behavior under both engines, and the parallel suite
/// runner must match a serial run. When a host C compiler exists, the
/// same contract extends three ways to the native tier: a limit matrix
/// (step / heap / call-depth sweeps) must trip the identical LimitHit
/// with identical high-water marks across all three engines.
///
//===----------------------------------------------------------------------===//

#include "backend/Native.h"
#include "obs/Telemetry.h"
#include "suite/Suite.h"
#include "suite/SuiteRunner.h"

#include <gtest/gtest.h>

using namespace sest;

namespace {

InterpOptions engineOptions(InterpEngine Engine) {
  InterpOptions O;
  O.Engine = Engine;
  return O;
}

/// Asserts exact (bitwise for doubles) equality of two profiles.
void expectProfilesIdentical(const Profile &A, const Profile &B,
                             const std::string &What) {
  ASSERT_TRUE(A.shapeMatches(B)) << What;
  EXPECT_EQ(A.TotalCycles, B.TotalCycles) << What;
  for (size_t F = 0; F < A.Functions.size(); ++F) {
    const FunctionProfile &FA = A.Functions[F];
    const FunctionProfile &FB = B.Functions[F];
    EXPECT_EQ(FA.EntryCount, FB.EntryCount) << What << " fn " << F;
    EXPECT_EQ(FA.BlockCounts, FB.BlockCounts) << What << " fn " << F;
    EXPECT_EQ(FA.ArcCounts, FB.ArcCounts) << What << " fn " << F;
  }
  EXPECT_EQ(A.CallSiteCounts, B.CallSiteCounts) << What;
}

/// One instance per suite program: run every input under both engines
/// and require bit-identical results.
class BytecodeDiffTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BytecodeDiffTest, MatchesWalkerOnAllInputs) {
  const SuiteProgram *P = findSuiteProgram(GetParam());
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram Ast =
      compileAndProfileProgram(*P, engineOptions(InterpEngine::Ast));
  CompiledSuiteProgram Bc =
      compileAndProfileProgram(*P, engineOptions(InterpEngine::Bytecode));
  ASSERT_TRUE(Ast.Ok) << Ast.Error;
  ASSERT_TRUE(Bc.Ok) << Bc.Error;

  ASSERT_EQ(Ast.Profiles.size(), Bc.Profiles.size());
  ASSERT_EQ(Ast.RunStats.size(), Bc.RunStats.size());
  for (size_t I = 0; I < Ast.Profiles.size(); ++I)
    expectProfilesIdentical(Ast.Profiles[I], Bc.Profiles[I],
                            P->Name + "/" + P->Inputs[I].Name);
  for (size_t I = 0; I < Ast.RunStats.size(); ++I) {
    const SuiteRunStats &A = Ast.RunStats[I];
    const SuiteRunStats &B = Bc.RunStats[I];
    EXPECT_EQ(A.Steps, B.Steps) << P->Name << "/" << A.InputName;
    EXPECT_EQ(A.Cycles, B.Cycles) << P->Name << "/" << A.InputName;
    EXPECT_EQ(A.HeapCellsHighWater, B.HeapCellsHighWater)
        << P->Name << "/" << A.InputName;
    EXPECT_EQ(A.CallDepthHighWater, B.CallDepthHighWater)
        << P->Name << "/" << A.InputName;
    EXPECT_EQ(A.ExitCode, B.ExitCode) << P->Name << "/" << A.InputName;
  }
}

/// Step-limit aborts must be identical: same limit kind, same error
/// text, same step count, same (partial) profile.
TEST_P(BytecodeDiffTest, StepLimitAbortsMatchWalker) {
  const SuiteProgram *P = findSuiteProgram(GetParam());
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileProgramOnly(*P);
  ASSERT_TRUE(C.Ok) << C.Error;

  // Sweep a few limits so the abort lands in different program phases.
  for (uint64_t MaxSteps : {1u, 100u, 10000u}) {
    InterpOptions AstOpts = engineOptions(InterpEngine::Ast);
    InterpOptions BcOpts = engineOptions(InterpEngine::Bytecode);
    AstOpts.MaxSteps = BcOpts.MaxSteps = MaxSteps;
    const ProgramInput &Input = P->Inputs.front();
    RunResult A = runProgram(C.unit(), *C.Cfgs, Input, AstOpts);
    RunResult B = runProgram(C.unit(), *C.Cfgs, Input, BcOpts);
    std::string What =
        P->Name + " MaxSteps=" + std::to_string(MaxSteps);
    EXPECT_EQ(A.Ok, B.Ok) << What;
    EXPECT_EQ(A.LimitHit, B.LimitHit) << What;
    EXPECT_EQ(A.Error, B.Error) << What;
    EXPECT_EQ(A.StepsExecuted, B.StepsExecuted) << What;
    EXPECT_EQ(A.Output, B.Output) << What;
    expectProfilesIdentical(A.TheProfile, B.TheProfile, What);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, BytecodeDiffTest,
                         ::testing::ValuesIn([] {
                           std::vector<std::string> Names;
                           for (const SuiteProgram &P : benchmarkSuite())
                             Names.push_back(P.Name);
                           return Names;
                         }()),
                         [](const auto &Info) { return Info.param; });

/// Call-depth and heap limits through both engines on a program rigged
/// to hit each.
TEST(BytecodeDiff, CallDepthLimitMatches) {
  const SuiteProgram *P = findSuiteProgram("xlisp");
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileProgramOnly(*P);
  ASSERT_TRUE(C.Ok) << C.Error;
  for (unsigned Depth : {1u, 2u, 8u}) {
    InterpOptions AstOpts = engineOptions(InterpEngine::Ast);
    InterpOptions BcOpts = engineOptions(InterpEngine::Bytecode);
    AstOpts.MaxCallDepth = BcOpts.MaxCallDepth = Depth;
    RunResult A = runProgram(C.unit(), *C.Cfgs, P->Inputs.front(), AstOpts);
    RunResult B = runProgram(C.unit(), *C.Cfgs, P->Inputs.front(), BcOpts);
    std::string What = "xlisp MaxCallDepth=" + std::to_string(Depth);
    EXPECT_EQ(A.Ok, B.Ok) << What;
    EXPECT_EQ(A.LimitHit, B.LimitHit) << What;
    EXPECT_EQ(A.Error, B.Error) << What;
    EXPECT_EQ(A.StepsExecuted, B.StepsExecuted) << What;
    expectProfilesIdentical(A.TheProfile, B.TheProfile, What);
  }
}

TEST(BytecodeDiff, HeapLimitMatches) {
  const SuiteProgram *P = findSuiteProgram("xlisp");
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileProgramOnly(*P);
  ASSERT_TRUE(C.Ok) << C.Error;
  for (int64_t Cells : {1, 16, 256}) {
    InterpOptions AstOpts = engineOptions(InterpEngine::Ast);
    InterpOptions BcOpts = engineOptions(InterpEngine::Bytecode);
    AstOpts.MaxHeapCells = BcOpts.MaxHeapCells = Cells;
    RunResult A = runProgram(C.unit(), *C.Cfgs, P->Inputs.front(), AstOpts);
    RunResult B = runProgram(C.unit(), *C.Cfgs, P->Inputs.front(), BcOpts);
    std::string What = "xlisp MaxHeapCells=" + std::to_string(Cells);
    EXPECT_EQ(A.Ok, B.Ok) << What;
    EXPECT_EQ(A.LimitHit, B.LimitHit) << What;
    EXPECT_EQ(A.Error, B.Error) << What;
    EXPECT_EQ(A.StepsExecuted, B.StepsExecuted) << What;
    expectProfilesIdentical(A.TheProfile, B.TheProfile, What);
  }
}

/// The Fig. 10 cost model (per-function cost factors) must accumulate
/// cycles identically — the sum order is part of the contract.
TEST(BytecodeDiff, SelectiveOptimizationCyclesMatch) {
  const SuiteProgram *P = findSuiteProgram("compress");
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileProgramOnly(*P);
  ASSERT_TRUE(C.Ok) << C.Error;
  InterpOptions AstOpts = engineOptions(InterpEngine::Ast);
  InterpOptions BcOpts = engineOptions(InterpEngine::Bytecode);
  for (const FunctionDecl *F : C.unit().Functions)
    if (F->isDefined() && F->name() != "main") {
      AstOpts.OptimizedFunctions.insert(F);
      BcOpts.OptimizedFunctions.insert(F);
    }
  AstOpts.OptimizedCostFactor = BcOpts.OptimizedCostFactor = 0.25;
  for (const ProgramInput &Input : P->Inputs) {
    RunResult A = runProgram(C.unit(), *C.Cfgs, Input, AstOpts);
    RunResult B = runProgram(C.unit(), *C.Cfgs, Input, BcOpts);
    ASSERT_TRUE(A.Ok) << A.Error;
    ASSERT_TRUE(B.Ok) << B.Error;
    EXPECT_EQ(A.TheProfile.TotalCycles, B.TheProfile.TotalCycles)
        << "compress/" << Input.Name;
  }
}

//===----------------------------------------------------------------------===//
// Three-way differentials: the native tier against both interpreters.
// Skipped cleanly (not failed) on hosts without a C compiler.
//===----------------------------------------------------------------------===//

/// Asserts one RunResult triple (ast / bytecode / native) is identical
/// in every observable: status, limit kind, diagnostics, output, exit
/// code, step count, high-water marks, and the full profile.
void expectThreeWayIdentical(const RunResult &A, const RunResult &B,
                             const RunResult &N, const std::string &What) {
  for (const auto &[R, Tier] :
       {std::pair<const RunResult &, const char *>{B, "bytecode"},
        std::pair<const RunResult &, const char *>{N, "native"}}) {
    std::string W = What + " [" + Tier + "]";
    EXPECT_EQ(A.Ok, R.Ok) << W;
    EXPECT_EQ(A.LimitHit, R.LimitHit) << W;
    EXPECT_EQ(A.Error, R.Error) << W;
    EXPECT_EQ(A.ExitCode, R.ExitCode) << W;
    EXPECT_EQ(A.Output, R.Output) << W;
    EXPECT_EQ(A.StepsExecuted, R.StepsExecuted) << W;
    EXPECT_EQ(A.HeapCellsHighWater, R.HeapCellsHighWater) << W;
    EXPECT_EQ(A.CallDepthHighWater, R.CallDepthHighWater) << W;
    expectProfilesIdentical(A.TheProfile, R.TheProfile, W);
  }
}

/// Runs one input under all three engines with the same limits and
/// requires identical observables.
void runThreeWay(const CompiledSuiteProgram &C, const ProgramInput &Input,
                 const InterpOptions &Limits, const std::string &What) {
  InterpOptions AstOpts = Limits, BcOpts = Limits, NativeOpts = Limits;
  AstOpts.Engine = InterpEngine::Ast;
  BcOpts.Engine = InterpEngine::Bytecode;
  NativeOpts.Engine = InterpEngine::Native;
  RunResult A = runProgram(C.unit(), *C.Cfgs, Input, AstOpts);
  RunResult B = runProgram(C.unit(), *C.Cfgs, Input, BcOpts);
  RunResult N = runProgram(C.unit(), *C.Cfgs, Input, NativeOpts);
  expectThreeWayIdentical(A, B, N, What);
}

/// One instance per suite program; skips on hosts without a C compiler.
class NativeDiffTest : public ::testing::TestWithParam<std::string> {
protected:
  void SetUp() override {
    std::string Why;
    if (!backend::nativeEngineAvailable(&Why))
      GTEST_SKIP() << "native tier unavailable: " << Why;
  }
};

TEST_P(NativeDiffTest, MatchesBothEnginesOnAllInputs) {
  const SuiteProgram *P = findSuiteProgram(GetParam());
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileProgramOnly(*P);
  ASSERT_TRUE(C.Ok) << C.Error;
  for (const ProgramInput &Input : P->Inputs)
    runThreeWay(C, Input, InterpOptions{}, P->Name + "/" + Input.Name);
}

/// The limit matrix: step, heap, and call-depth sweeps must trip the
/// identical LimitHit with identical high-water marks on all three
/// engines — limits are part of the execution contract, so the compiled
/// tier must abort at the exact step the interpreters do.
TEST_P(NativeDiffTest, LimitMatrixMatchesBothEngines) {
  const SuiteProgram *P = findSuiteProgram(GetParam());
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileProgramOnly(*P);
  ASSERT_TRUE(C.Ok) << C.Error;
  const ProgramInput &Input = P->Inputs.front();

  for (uint64_t MaxSteps : {1u, 100u, 10000u}) {
    InterpOptions Limits;
    Limits.MaxSteps = MaxSteps;
    runThreeWay(C, Input, Limits,
                P->Name + " MaxSteps=" + std::to_string(MaxSteps));
  }
  for (unsigned Depth : {1u, 2u, 8u}) {
    InterpOptions Limits;
    Limits.MaxCallDepth = Depth;
    runThreeWay(C, Input, Limits,
                P->Name + " MaxCallDepth=" + std::to_string(Depth));
  }
  for (int64_t Cells : {1, 16, 256}) {
    InterpOptions Limits;
    Limits.MaxHeapCells = Cells;
    runThreeWay(C, Input, Limits,
                P->Name + " MaxHeapCells=" + std::to_string(Cells));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, NativeDiffTest,
                         ::testing::ValuesIn([] {
                           std::vector<std::string> Names;
                           for (const SuiteProgram &P : benchmarkSuite())
                             Names.push_back(P.Name);
                           return Names;
                         }()),
                         [](const auto &Info) { return Info.param; });

/// The parallel suite runner must be observationally identical to a
/// serial run: same profiles, stats, and merged telemetry counters.
TEST(BytecodeDiff, ParallelSuiteMatchesSerial) {
  obs::Telemetry SerialTele, ParallelTele;

  SerialTele.install();
  std::vector<CompiledSuiteProgram> Serial =
      compileAndProfileSuite(InterpOptions{}, 1);
  SerialTele.uninstall();

  ParallelTele.install();
  std::vector<CompiledSuiteProgram> Parallel =
      compileAndProfileSuite(InterpOptions{}, 4);
  ParallelTele.uninstall();

  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    const CompiledSuiteProgram &S = Serial[I];
    const CompiledSuiteProgram &Q = Parallel[I];
    EXPECT_EQ(S.Ok, Q.Ok) << S.Spec->Name;
    ASSERT_EQ(S.Profiles.size(), Q.Profiles.size()) << S.Spec->Name;
    for (size_t J = 0; J < S.Profiles.size(); ++J)
      expectProfilesIdentical(S.Profiles[J], Q.Profiles[J],
                              S.Spec->Name + "/" +
                                  S.Spec->Inputs[J].Name);
    ASSERT_EQ(S.RunStats.size(), Q.RunStats.size()) << S.Spec->Name;
    for (size_t J = 0; J < S.RunStats.size(); ++J) {
      EXPECT_EQ(S.RunStats[J].Steps, Q.RunStats[J].Steps);
      EXPECT_EQ(S.RunStats[J].Cycles, Q.RunStats[J].Cycles);
      EXPECT_EQ(S.RunStats[J].ExitCode, Q.RunStats[J].ExitCode);
    }
  }

  // Merged telemetry counters (steps, instrs, runs, ...) must agree
  // exactly; only timing-valued entries may differ.
  ASSERT_EQ(SerialTele.counters().size(), ParallelTele.counters().size());
  for (const auto &[Name, Value] : SerialTele.counters()) {
    auto It = ParallelTele.counters().find(Name);
    ASSERT_NE(It, ParallelTele.counters().end()) << Name;
    if (Name.find("_ms") == std::string::npos &&
        Name.find("_us") == std::string::npos)
      EXPECT_EQ(Value, It->second) << Name;
  }
}

} // namespace

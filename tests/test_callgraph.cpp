//===- tests/test_callgraph.cpp - Call graph unit tests --------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "callgraph/CallGraph.h"

#include <gtest/gtest.h>

using namespace sest;
using namespace sest::test;

namespace {

std::unique_ptr<CallGraph> buildCg(Compiled &C) {
  return std::make_unique<CallGraph>(CallGraph::build(C.unit(), *C.Cfgs));
}

TEST(CallGraph, DirectSitesDiscovered) {
  auto C = compile("void g() {}\n"
                   "void h() { g(); }\n"
                   "int main() { g(); h(); return 0; }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  ASSERT_EQ(CG->sites().size(), 3u);
  EXPECT_EQ(CG->sitesTargeting(C->fn("g")).size(), 2u);
  EXPECT_EQ(CG->sitesTargeting(C->fn("h")).size(), 1u);
  EXPECT_EQ(CG->sitesInFunction(C->fn("main")).size(), 2u);
  EXPECT_TRUE(CG->indirectSites().empty());
}

TEST(CallGraph, SitesKnowTheirBlocks) {
  auto C = compile("void g() {}\n"
                   "int main() { int i;\n"
                   "  for (i = 0; i < 3; i++) g();\n"
                   "  return 0; }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  ASSERT_EQ(CG->sites().size(), 1u);
  const CallSiteInfo &S = CG->sites()[0];
  // The call lives in the loop body block.
  EXPECT_EQ(S.Block->label().find("for.body"), 0u) << S.Block->label();
}

TEST(CallGraph, CallsInsideConditionsAttributedToCondBlock) {
  auto C = compile("int check(int x) { return x < 10; }\n"
                   "int main() { int i = 0;\n"
                   "  while (check(i)) i++;\n"
                   "  return i; }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  ASSERT_EQ(CG->sites().size(), 1u);
  EXPECT_EQ(CG->sites()[0].Block->label().find("while.cond"), 0u);
}

TEST(CallGraph, NestedCallsAllFound) {
  auto C = compile("int f(int x) { return x + 1; }\n"
                   "int main() { return f(f(f(0))); }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  EXPECT_EQ(CG->sites().size(), 3u);
}

TEST(CallGraph, IndirectSitesAndAddressTaken) {
  auto C = compile("int a() { return 1; }\n"
                   "int b() { return 2; }\n"
                   "int (*pick(int x))() { if (x) return a; return b; }\n"
                   "int main() { int (*f)() = pick(1); return f(); }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  // pick() is direct; f() is indirect.
  EXPECT_EQ(CG->indirectSites().size(), 1u);
  EXPECT_EQ(CG->addressTakenFunctions().size(), 2u);
  EXPECT_EQ(CG->totalAddressTakenWeight(), 2u);
}

TEST(CallGraph, AddressWeightCountsEveryReference) {
  auto C = compile("int a() { return 1; }\n"
                   "int (*t[3])() = { a, a, a };\n"
                   "int main() { return t[0](); }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  ASSERT_EQ(CG->addressTakenFunctions().size(), 1u);
  EXPECT_EQ(CG->addressTakenFunctions()[0].second, 3u);
}

TEST(CallGraph, DirectCalleeNeverCountsAsAddressTaken) {
  auto C = compile("int a() { return 1; }\n"
                   "int main() { return a() + a(); }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  EXPECT_TRUE(CG->addressTakenFunctions().empty());
}

TEST(CallGraph, DirectAdjacencyDeduplicates) {
  auto C = compile("void g() {}\n"
                   "int main() { g(); g(); g(); return 0; }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  size_t MainId = C->fn("main")->functionId();
  ASSERT_LT(MainId, CG->directAdjacency().size());
  EXPECT_EQ(CG->directAdjacency()[MainId].size(), 1u);
}

TEST(CallGraph, CallSiteIdsAreDense) {
  auto C = compile("int f(int x) { return x; }\n"
                   "int main() { return f(1) + f(2) + f(f(3)); }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  ASSERT_EQ(CG->sites().size(), C->unit().NumCallSites);
  for (size_t I = 0; I < CG->sites().size(); ++I)
    EXPECT_EQ(CG->sites()[I].CallSiteId, I);
}

TEST(CallGraph, CallsInGlobalInitializersNotSites) {
  // Global initializers cannot contain calls (sema rejects), so every
  // site belongs to a function body; function references in initializers
  // still count as address-taken.
  auto C = compile("int a() { return 1; }\n"
                   "int (*p)() = a;\n"
                   "int main() { return p(); }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  for (const CallSiteInfo &S : CG->sites())
    EXPECT_NE(S.Caller, nullptr);
  EXPECT_EQ(CG->totalAddressTakenWeight(), 1u);
}

TEST(CallGraph, DotExportShowsPointerNode) {
  auto C = compile("int a() { return 1; }\n"
                   "int (*t)() = a;\n"
                   "void direct() {}\n"
                   "int main() { direct(); direct(); return t(); }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  std::string Dot = printCallGraphDot(C->unit(), *CG);
  EXPECT_EQ(Dot.find("digraph callgraph"), 0u);
  EXPECT_NE(Dot.find("(pointer node)"), std::string::npos);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
  // Two direct() calls merge into one arc labeled x2.
  EXPECT_NE(Dot.find("x2"), std::string::npos) << Dot;
}

TEST(CallGraph, RecursiveArcRecorded) {
  auto C = compile("int f(int n) { if (n <= 0) return 0;\n"
                   "  return f(n - 1); }\n"
                   "int main() { return f(3); }");
  ASSERT_TRUE(C);
  auto CG = buildCg(*C);
  size_t Fid = C->fn("f")->functionId();
  const auto &Adj = CG->directAdjacency()[Fid];
  EXPECT_NE(std::find(Adj.begin(), Adj.end(), Fid), Adj.end());
}

} // namespace

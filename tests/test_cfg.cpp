//===- tests/test_cfg.cpp - CFG construction unit tests --------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace sest;
using namespace sest::test;

namespace {

/// The paper's running example (Figure 1).
const char *StrchrSource = R"(
char *strchr(char *str, int c) {
  while (*str) {
    if (*str == c)
      return str;
    str++;
  }
  return NULL;
}
int main() { return 0; }
)";

unsigned countTerminators(const Cfg *G, TerminatorKind K) {
  unsigned N = 0;
  for (const auto &B : G->blocks())
    if (B->terminator() == K)
      ++N;
  return N;
}

TEST(Cfg, StrchrHasFivePaperBlocks) {
  // Paper Table 2 scores strchr over 5 blocks: the while test, the if
  // (loop body), the two returns, and the increment.
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("strchr");
  ASSERT_TRUE(G);
  EXPECT_EQ(G->size(), 5u) << printCfg(*G);
  EXPECT_EQ(countTerminators(G, TerminatorKind::Return), 2u);
  EXPECT_EQ(countTerminators(G, TerminatorKind::CondBranch), 2u);
  // The entry is the while test (the empty entry block is threaded away).
  EXPECT_EQ(G->entry()->terminator(), TerminatorKind::CondBranch);
}

TEST(Cfg, EveryBlockIsTerminated) {
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  for (const auto &[F, G] : C->Cfgs->all()) {
    for (const auto &B : G->blocks()) {
      EXPECT_NE(B->terminator(), TerminatorKind::Unreachable)
          << F->name() << " block " << B->label();
    }
  }
}

TEST(Cfg, PredsMatchSuccs) {
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("strchr");
  for (const auto &B : G->blocks()) {
    for (const BasicBlock *S : B->successors()) {
      const auto &Preds = S->predecessors();
      EXPECT_NE(std::find(Preds.begin(), Preds.end(), B.get()),
                Preds.end());
    }
  }
}

TEST(Cfg, IfElseDiamond) {
  auto C = compile("int f(int x) { int r;\n"
                   "  if (x > 0) r = 1; else r = 2;\n"
                   "  return r; }\n"
                   "int main() { return f(1); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  // entry(cond) + then + else + join(return) = 4 blocks.
  EXPECT_EQ(G->size(), 4u) << printCfg(*G);
}

TEST(Cfg, WhileLoopHasBackEdge) {
  auto C = compile("int f(int n) { int s = 0;\n"
                   "  while (n > 0) { s += n; n--; }\n"
                   "  return s; }\n"
                   "int main() { return f(3); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  // Some block must jump backwards to an earlier block (the loop).
  bool HasBackEdge = false;
  for (const auto &B : G->blocks())
    for (const BasicBlock *S : B->successors())
      if (S->id() <= B->id())
        HasBackEdge = true;
  EXPECT_TRUE(HasBackEdge) << printCfg(*G);
}

TEST(Cfg, ForLoopStructure) {
  auto C = compile("int f() { int s = 0;\n"
                   "  for (int i = 0; i < 4; i++) s += i;\n"
                   "  return s; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  EXPECT_EQ(countTerminators(G, TerminatorKind::CondBranch), 1u)
      << printCfg(*G);
}

TEST(Cfg, ForStepBlockSurvivesWithContinue) {
  // With a continue, the step block has two predecessors and cannot be
  // merged into the body; it keeps its Step anchor.
  auto C = compile("int f() { int s = 0; int i;\n"
                   "  for (i = 0; i < 9; i++) {\n"
                   "    if (i == 3) continue;\n"
                   "    s += i;\n"
                   "  }\n"
                   "  return s; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  bool HasStep = false;
  for (const auto &B : G->blocks())
    if (B->anchorKind() == AnchorKind::Step)
      HasStep = true;
  EXPECT_TRUE(HasStep) << printCfg(*G);
  EXPECT_EQ(run(*C).ExitCode, 0 + 1 + 2 + 4 + 5 + 6 + 7 + 8);
}

TEST(Cfg, DoWhileExecutesBodyFirst) {
  auto C = compile("int f() { int n = 0;\n"
                   "  do { n++; } while (n < 3);\n"
                   "  return n; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  // Entry must reach the body before any conditional branch.
  const BasicBlock *E = G->entry();
  EXPECT_NE(E->terminator(), TerminatorKind::CondBranch) << printCfg(*G);
}

TEST(Cfg, SwitchWithFallthroughAndDefault) {
  auto C = compile(
      "int f(int x) { int r = 0;\n"
      "  switch (x) {\n"
      "  case 1: r += 1;\n"        // falls through
      "  case 2: r += 2; break;\n"
      "  case 3: r += 3; break;\n"
      "  default: r = 9;\n"
      "  }\n"
      "  return r; }\n"
      "int main() { return f(1); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  const BasicBlock *SwitchB = nullptr;
  for (const auto &B : G->blocks())
    if (B->terminator() == TerminatorKind::Switch)
      SwitchB = B.get();
  ASSERT_TRUE(SwitchB) << printCfg(*G);
  EXPECT_EQ(SwitchB->switchCases().size(), 3u);
  // Default slot is the last successor and distinct from the exit.
  EXPECT_EQ(SwitchB->successors().size(), 4u);
}

TEST(Cfg, SwitchWithoutDefaultFallsToExit) {
  auto C = compile("int f(int x) { switch (x) { case 1: return 1; }\n"
                   "  return 0; }\n"
                   "int main() { return f(2); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  const BasicBlock *SwitchB = nullptr;
  for (const auto &B : G->blocks())
    if (B->terminator() == TerminatorKind::Switch)
      SwitchB = B.get();
  ASSERT_TRUE(SwitchB);
  // Default target returns 0.
  EXPECT_EQ(SwitchB->switchDefault()->terminator(),
            TerminatorKind::Return);
}

TEST(Cfg, GotoFormsLoop) {
  auto C = compile("int f() { int n = 0;\n"
                   "again:\n"
                   "  n++;\n"
                   "  if (n < 5) goto again;\n"
                   "  return n; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  bool HasBackEdge = false;
  for (const auto &B : G->blocks())
    for (const BasicBlock *S : B->successors())
      if (S->id() <= B->id())
        HasBackEdge = true;
  EXPECT_TRUE(HasBackEdge) << printCfg(*G);
}

TEST(Cfg, BreakAndContinueTargets) {
  auto C = compile("int f() { int s = 0; int i;\n"
                   "  for (i = 0; i < 10; i++) {\n"
                   "    if (i == 2) continue;\n"
                   "    if (i == 5) break;\n"
                   "    s += i;\n"
                   "  }\n"
                   "  return s; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  // Semantics validated by execution: 0+1+3+4 = 8.
  RunResult R = run(*C);
  EXPECT_EQ(R.ExitCode, 8);
}

TEST(Cfg, DeadCodeAfterReturnIsRemoved) {
  auto C = compile("int f() { return 1; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  EXPECT_EQ(G->size(), 1u) << printCfg(*G);
}

TEST(Cfg, UnreachableCodeDropped) {
  auto C = compile("int f() { return 1; int x = 2; return x; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  for (const auto &B : G->blocks())
    EXPECT_NE(B->terminator(), TerminatorKind::Unreachable);
}

TEST(Cfg, ArcSlotCountMatchesSuccessors) {
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("strchr");
  size_t Total = 0;
  for (const auto &B : G->blocks())
    Total += B->successors().size();
  EXPECT_EQ(G->countArcSlots(), Total);
}

TEST(Cfg, AnchorsAreAssigned) {
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("strchr");
  for (const auto &B : G->blocks())
    EXPECT_NE(B->anchor(), nullptr) << B->label();
}

TEST(Cfg, DotExportIsWellFormed) {
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("strchr");
  std::string Dot = printCfgDot(*G);
  EXPECT_EQ(Dot.find("digraph"), 0u);
  EXPECT_NE(Dot.find("n0 ->"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"T\""), std::string::npos);
  EXPECT_EQ(Dot[Dot.size() - 2], '}');
  // Weighted variant embeds frequencies.
  std::vector<double> W(G->size(), 2.5);
  std::string Weighted = printCfgDot(*G, &W);
  EXPECT_NE(Weighted.find("freq 2.50"), std::string::npos);
}

TEST(Cfg, PrinterMentionsEveryBlock) {
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("strchr");
  std::string S = printCfg(*G);
  for (const auto &B : G->blocks())
    EXPECT_NE(S.find(B->label()), std::string::npos) << S;
}

} // namespace

//===- tests/test_dominators.cpp - Dominators and natural loops ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "cfg/Dominators.h"
#include "estimators/BranchPrediction.h"
#include "metrics/BranchMiss.h"

#include <gtest/gtest.h>

using namespace sest;
using namespace sest::test;

namespace {

uint32_t blockByLabel(const Cfg *G, const std::string &Prefix) {
  for (const auto &B : G->blocks())
    if (B->label().find(Prefix) == 0)
      return B->id();
  ADD_FAILURE() << "no block labeled " << Prefix;
  return 0;
}

TEST(Dominators, EntryDominatesEverything) {
  auto C = compile("int f(int x) { int r = 0;\n"
                   "  if (x > 0) r = 1; else r = 2;\n"
                   "  while (x > 0) { r += x; x--; }\n"
                   "  return r; }\n"
                   "int main() { return f(3); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  DominatorTree DT(*G);
  for (const auto &B : G->blocks())
    EXPECT_TRUE(DT.dominates(G->entry()->id(), B->id())) << B->label();
}

TEST(Dominators, BranchArmsDoNotDominateJoin) {
  auto C = compile("int f(int x) { int r = 0;\n"
                   "  if (x > 0) r = 1; else r = 2;\n"
                   "  return r; }\n"
                   "int main() { return f(1); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  DominatorTree DT(*G);
  uint32_t Then = blockByLabel(G, "if.then");
  uint32_t Else = blockByLabel(G, "if.else");
  uint32_t Join = blockByLabel(G, "if.end");
  EXPECT_FALSE(DT.dominates(Then, Join));
  EXPECT_FALSE(DT.dominates(Else, Join));
  EXPECT_TRUE(DT.dominates(G->entry()->id(), Join));
  // The join's immediate dominator is the branch (entry).
  EXPECT_EQ(DT.idom(Join), G->entry()->id());
}

TEST(Dominators, SelfDominationIsReflexive) {
  auto C = compile("int f() { return 1; }\nint main() { return f(); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  DominatorTree DT(*G);
  EXPECT_TRUE(DT.dominates(0, 0));
}

TEST(Dominators, WhileLoopBackEdgeDetected) {
  auto C = compile("int f(int n) { int s = 0;\n"
                   "  while (n > 0) { s += n; n--; }\n"
                   "  return s; }\n"
                   "int main() { return f(3); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  DominatorTree DT(*G);
  std::vector<NaturalLoop> Loops = findNaturalLoops(*G, DT);
  ASSERT_EQ(Loops.size(), 1u);
  EXPECT_EQ(Loops[0].Header, blockByLabel(G, "while.cond"));
  EXPECT_TRUE(Loops[0].contains(blockByLabel(G, "while.body")));
  EXPECT_FALSE(Loops[0].contains(blockByLabel(G, "while.end")));
}

TEST(Dominators, NestedLoopsFound) {
  auto C = compile("int f() { int s = 0; int i; int j;\n"
                   "  for (i = 0; i < 3; i++)\n"
                   "    for (j = 0; j < 3; j++)\n"
                   "      s++;\n"
                   "  return s; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  DominatorTree DT(*G);
  std::vector<NaturalLoop> Loops = findNaturalLoops(*G, DT);
  EXPECT_EQ(Loops.size(), 2u);
  // One loop strictly contains the other.
  const NaturalLoop &A = Loops[0].Blocks.size() > Loops[1].Blocks.size()
                             ? Loops[0]
                             : Loops[1];
  const NaturalLoop &B = &A == &Loops[0] ? Loops[1] : Loops[0];
  for (uint32_t Block : B.Blocks)
    EXPECT_TRUE(A.contains(Block));
  EXPECT_GT(A.Blocks.size(), B.Blocks.size());
}

TEST(Dominators, GotoLoopDetected) {
  auto C = compile("int f() { int n = 0;\n"
                   "again:\n"
                   "  n++;\n"
                   "  if (n < 5) goto again;\n"
                   "  return n; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  DominatorTree DT(*G);
  std::vector<NaturalLoop> Loops = findNaturalLoops(*G, DT);
  ASSERT_EQ(Loops.size(), 1u);
  EXPECT_GE(Loops[0].Blocks.size(), 1u);
}

TEST(CfgLoopHeuristic, GotoLoopPredictedLikeALoop) {
  // The if controlling "goto again" has no loop-statement origin, but
  // its true edge is a CFG back edge: the cfg-loop heuristic must claim
  // it with the loop probability.
  auto C = compile("int f() { int n = 0;\n"
                   "again:\n"
                   "  n++;\n"
                   "  if (n < 5) goto again;\n"
                   "  return n; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  BranchPredictor BP;
  FunctionBranchPredictions P = BP.predictFunction(*C->cfg("f"));
  bool Found = false;
  for (const auto &[Id, Pred] : P.ByBlock) {
    if (std::string(Pred.Heuristic) == "cfg-loop") {
      EXPECT_TRUE(Pred.PredictTrue);
      EXPECT_NEAR(Pred.ProbTrue, 0.8, 1e-9);
      Found = true;
    }
  }
  EXPECT_TRUE(Found);
}

TEST(CfgLoopHeuristic, CanBeDisabled) {
  auto C = compile("int f() { int n = 0;\n"
                   "again:\n"
                   "  n++;\n"
                   "  if (n < 5) goto again;\n"
                   "  return n; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  BranchPredictorConfig Config;
  Config.UseCfgLoopHeuristic = false;
  BranchPredictor BP(Config);
  FunctionBranchPredictions P = BP.predictFunction(*C->cfg("f"));
  for (const auto &[Id, Pred] : P.ByBlock)
    EXPECT_STRNE(Pred.Heuristic, "cfg-loop");
}

TEST(CfgLoopHeuristic, StructuredLoopsStillUseLoopHeuristic) {
  auto C = compile("int f(int n) { int s = 0;\n"
                   "  while (n > 0) { s += n; n--; }\n"
                   "  return s; }\n"
                   "int main() { return f(3); }");
  ASSERT_TRUE(C);
  BranchPredictor BP;
  FunctionBranchPredictions P = BP.predictFunction(*C->cfg("f"));
  bool SawLoop = false;
  for (const auto &[Id, Pred] : P.ByBlock)
    if (std::string(Pred.Heuristic) == "loop")
      SawLoop = true;
  EXPECT_TRUE(SawLoop);
}

TEST(CfgLoopHeuristic, ImprovesGotoLoopMissRate) {
  // Execution takes the back edge 4 of 5 times; predicting "taken"
  // (cfg-loop) misses once, while the disabled default also predicts
  // true here — use an inverted-condition variant to discriminate.
  auto C = compile("int f() { int n = 0;\n"
                   "again:\n"
                   "  n++;\n"
                   "  if (n >= 50) return n;\n" // exit edge is TRUE
                   "  goto again; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  BranchPredictor WithCfg;
  auto PredsOn = predictAllFunctions(C->unit(), *C->Cfgs, WithCfg);
  BranchPredictorConfig Off;
  Off.UseCfgLoopHeuristic = false;
  BranchPredictor WithoutCfg(Off);
  auto PredsOff = predictAllFunctions(C->unit(), *C->Cfgs, WithoutCfg);

  ProgramInput In;
  RunResult R = runProgram(C->unit(), *C->Cfgs, In);
  ASSERT_TRUE(R.Ok);

  BranchMissCounts On = branchMissRate(*C->Cfgs, PredsOn, R.TheProfile,
                                       BranchOracle::Static);
  BranchMissCounts OffCounts = branchMissRate(
      *C->Cfgs, PredsOff, R.TheProfile, BranchOracle::Static);
  // "n >= 50" is false 49 of 50 times. The cfg-loop heuristic predicts
  // false (the back edge); the opcode heuristic (>= positive constant...
  // actually >= 50 doesn't fire opcode) -> default predicts true: 49
  // misses.
  EXPECT_LT(On.Misses, OffCounts.Misses);
  EXPECT_NEAR(On.Misses, 1.0, 1e-9);
}

} // namespace

//===- tests/test_estimators.cpp - Estimator unit tests --------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "callgraph/CallGraph.h"
#include "estimators/AstEstimator.h"
#include "estimators/BranchPrediction.h"
#include "estimators/InterEstimators.h"
#include "estimators/MarkovIntra.h"
#include "estimators/Pipeline.h"

#include <gtest/gtest.h>

using namespace sest;
using namespace sest::test;

namespace {

const char *StrchrSource = R"(
char *strchr(char *str, int c) {
  while (*str) {
    if (*str == c)
      return str;
    str++;
  }
  return NULL;
}
int main() { return 0; }
)";

/// Block estimates keyed by label for readable assertions.
std::map<std::string, double> estimatesByLabel(const Cfg &G,
                                               std::vector<double> Est) {
  std::map<std::string, double> Out;
  for (const auto &B : G.blocks())
    Out[B->label()] = Est[B->id()];
  return Out;
}

//===----------------------------------------------------------------------===//
// Branch prediction heuristics
//===----------------------------------------------------------------------===//

/// The prediction of the single if-branch in \p Body.
BranchPrediction predictSingleIf(const std::string &Body) {
  auto C = compile(Body);
  if (!C) {
    ADD_FAILURE();
    return {};
  }
  const Cfg *G = C->cfg("f");
  BranchPredictor BP;
  FunctionBranchPredictions P = BP.predictFunction(*G);
  for (const auto &B : G->blocks()) {
    if (B->terminator() == TerminatorKind::CondBranch &&
        B->terminatorOrigin() &&
        B->terminatorOrigin()->kind() == StmtKind::If) {
      auto It = P.ByBlock.find(B->id());
      if (It != P.ByBlock.end())
        return It->second;
    }
  }
  ADD_FAILURE() << "no if-branch found";
  return {};
}

TEST(BranchPredictor, PointerNullTestPredictedFalse) {
  BranchPrediction P = predictSingleIf(
      "int f(int *p) { if (p == NULL) return 1; return 2; }\n"
      "int main() { int x; return f(&x); }");
  EXPECT_FALSE(P.PredictTrue);
  EXPECT_STREQ(P.Heuristic, "pointer");
  EXPECT_NEAR(P.ProbTrue, 0.2, 1e-9);
}

TEST(BranchPredictor, PointerNotNullPredictedTrue) {
  BranchPrediction P = predictSingleIf(
      "int f(int *p) { if (p != NULL) return 1; return 2; }\n"
      "int main() { int x; return f(&x); }");
  EXPECT_TRUE(P.PredictTrue);
  EXPECT_STREQ(P.Heuristic, "pointer");
}

TEST(BranchPredictor, BarePointerConditionPredictedTrue) {
  BranchPrediction P = predictSingleIf(
      "int f(int *p) { if (p) return 1; return 2; }\n"
      "int main() { int x; return f(&x); }");
  EXPECT_TRUE(P.PredictTrue);
  EXPECT_STREQ(P.Heuristic, "pointer");
}

TEST(BranchPredictor, NegatedConditionInverts) {
  BranchPrediction P = predictSingleIf(
      "int f(int *p) { if (!p) return 1; return 2; }\n"
      "int main() { int x; return f(&x); }");
  EXPECT_FALSE(P.PredictTrue);
  EXPECT_NEAR(P.ProbTrue, 0.2, 1e-9);
}

TEST(BranchPredictor, ErrorPathPredictedUnlikely) {
  BranchPrediction P = predictSingleIf(
      "int f(int x) { if (x > 10) { print_int(x); abort(); } return 2; }\n"
      "int main() { return f(1); }");
  EXPECT_FALSE(P.PredictTrue);
  EXPECT_STREQ(P.Heuristic, "error");
}

TEST(BranchPredictor, ErrorInElsePredictsThen) {
  BranchPrediction P = predictSingleIf(
      "int f(int x) { if (x > 10) return 1; else exit(1); return 2; }\n"
      "int main() { return f(1); }");
  EXPECT_TRUE(P.PredictTrue);
  EXPECT_STREQ(P.Heuristic, "error");
}

TEST(BranchPredictor, EqualityPredictedFalse) {
  BranchPrediction P = predictSingleIf(
      "int f(int x, int y) { if (x == y) return 1; return 2; }\n"
      "int main() { return f(1, 2); }");
  EXPECT_FALSE(P.PredictTrue);
  EXPECT_STREQ(P.Heuristic, "opcode");
}

TEST(BranchPredictor, NegativeComparisonPredictedFalse) {
  BranchPrediction P = predictSingleIf(
      "int f(int x) { if (x < 0) return 1; return 2; }\n"
      "int main() { return f(1); }");
  EXPECT_FALSE(P.PredictTrue);
  EXPECT_STREQ(P.Heuristic, "opcode");
}

TEST(BranchPredictor, MultipleAndsPredictedFalse) {
  BranchPrediction P = predictSingleIf(
      "int f(int x, int y, int z) { if (x < y && y < z && z < 10)\n"
      "    return 1; return 2; }\n"
      "int main() { return f(1, 2, 3); }");
  EXPECT_FALSE(P.PredictTrue);
  EXPECT_STREQ(P.Heuristic, "and");
}

TEST(BranchPredictor, StoreHeuristicFavorsWritingArm) {
  BranchPrediction P = predictSingleIf(
      "int f(int x, int best) {\n"
      "  if (x > best) best = x;\n"
      "  return best; }\n"
      "int main() { return f(3, 1); }");
  EXPECT_TRUE(P.PredictTrue);
  EXPECT_STREQ(P.Heuristic, "store");
}

TEST(BranchPredictor, ConstantConditionFlagged) {
  BranchPrediction P = predictSingleIf(
      "int f(int x) { if (3 > 2) return 1; return x; }\n"
      "int main() { return f(1); }");
  EXPECT_TRUE(P.PredictTrue);
  EXPECT_TRUE(P.ConstantCondition);
  EXPECT_EQ(P.ProbTrue, 1.0);
}

TEST(BranchPredictor, LoopConditionGetsLoopModelProbability) {
  auto C = compile("int f(int n) { int s = 0;\n"
                   "  while (n > 0) { s += n; n--; }\n"
                   "  return s; }\n"
                   "int main() { return f(3); }");
  ASSERT_TRUE(C);
  BranchPredictor BP;
  FunctionBranchPredictions P = BP.predictFunction(*C->cfg("f"));
  bool Found = false;
  for (const auto &[Id, Pred] : P.ByBlock) {
    if (std::string(Pred.Heuristic) == "loop") {
      EXPECT_TRUE(Pred.PredictTrue);
      EXPECT_NEAR(Pred.ProbTrue, 0.8, 1e-9); // (5-1)/5
      Found = true;
    }
  }
  EXPECT_TRUE(Found);
}

TEST(BranchPredictor, HeuristicsCanBeDisabled) {
  BranchPredictorConfig Config;
  Config.UsePointerHeuristic = false;
  Config.UseOpcodeHeuristic = false;
  Config.UseAndHeuristic = false;
  Config.UseErrorHeuristic = false;
  Config.UseStoreHeuristic = false;
  auto C = compile("int f(int *p) { if (p == NULL) return 1; return 2; }\n"
                   "int main() { int x; return f(&x); }");
  ASSERT_TRUE(C);
  BranchPredictor BP(Config);
  FunctionBranchPredictions P = BP.predictFunction(*C->cfg("f"));
  for (const auto &[Id, Pred] : P.ByBlock)
    EXPECT_STREQ(Pred.Heuristic, "default");
}

TEST(BranchPredictor, SwitchCaseLabelWeighting) {
  auto C = compile("int f(int x) { switch (x) {\n"
                   "  case 1: return 1;\n"
                   "  case 2: return 2;\n"
                   "  case 3: return 3;\n"
                   "  } return 0; }\n"
                   "int main() { return f(1); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  const BasicBlock *Sw = nullptr;
  for (const auto &B : G->blocks())
    if (B->terminator() == TerminatorKind::Switch)
      Sw = B.get();
  ASSERT_TRUE(Sw);
  BranchPredictor BP;
  std::vector<double> Probs = BP.switchArmProbabilities(Sw);
  ASSERT_EQ(Probs.size(), 4u); // 3 cases + default
  double Sum = 0;
  for (double P : Probs) {
    EXPECT_NEAR(P, 0.25, 1e-9);
    Sum += P;
  }
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

//===----------------------------------------------------------------------===//
// AST estimators (Figure 3)
//===----------------------------------------------------------------------===//

TEST(AstEstimator, StrchrMatchesPaperFigure3) {
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("strchr");
  AstEstimatorConfig Config;
  Config.Kind = IntraEstimatorKind::Smart;
  auto Est = estimatesByLabel(*G, estimateBlockFrequencies(*G, Config));

  // Figure 3 / Table 2 estimate column: while test 5, loop-body items 4,
  // predicted-false then-arm (return str) 0.2*4 = 0.8, the increment —
  // a sibling of the if, whose early return the AST model ignores — 4,
  // and the return after the loop 1.
  EXPECT_NEAR(Est["while.cond"], 5.0, 1e-9);
  EXPECT_NEAR(Est["while.body"], 4.0, 1e-9);
  EXPECT_NEAR(Est["if.then"], 0.8, 1e-9);
  EXPECT_NEAR(Est["if.end"], 4.0, 1e-9);
  EXPECT_NEAR(Est["while.end"], 1.0, 1e-9);
}

TEST(AstEstimator, LoopModeUsesEvenSplit) {
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("strchr");
  AstEstimatorConfig Config;
  Config.Kind = IntraEstimatorKind::Loop;
  auto Est = estimatesByLabel(*G, estimateBlockFrequencies(*G, Config));
  EXPECT_NEAR(Est["while.cond"], 5.0, 1e-9);
  EXPECT_NEAR(Est["if.then"], 2.0, 1e-9); // 50/50 of 4
  EXPECT_NEAR(Est["if.end"], 4.0, 1e-9);  // join = parent frequency
}

TEST(AstEstimator, ConfigurableLoopCount) {
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("strchr");
  AstEstimatorConfig Config;
  Config.Kind = IntraEstimatorKind::Loop;
  Config.LoopIterations = 10.0;
  auto Est = estimatesByLabel(*G, estimateBlockFrequencies(*G, Config));
  EXPECT_NEAR(Est["while.cond"], 10.0, 1e-9);
  EXPECT_NEAR(Est["while.body"], 9.0, 1e-9);
}

TEST(AstEstimator, NestedLoopsMultiply) {
  auto C = compile("int f() { int s = 0; int i; int j;\n"
                   "  for (i = 0; i < 9; i++)\n"
                   "    for (j = 0; j < 9; j++)\n"
                   "      s++;\n"
                   "  return s; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  AstEstimatorConfig Config;
  Config.Kind = IntraEstimatorKind::Loop;
  std::vector<double> Est = estimateBlockFrequencies(*G, Config);
  // Inner loop body: 4 * 4 = 16 per entry.
  double MaxEst = 0;
  for (double V : Est)
    MaxEst = std::max(MaxEst, V);
  EXPECT_NEAR(MaxEst, 20.0, 1e-9); // inner test runs 4*5
}

TEST(AstEstimator, SwitchArmsSplitFrequency) {
  auto C = compile("int f(int x) { int r = 0; switch (x) {\n"
                   "  case 1: r = 1; break;\n"
                   "  case 2: r = 2; break;\n"
                   "  default: r = 9;\n"
                   "  } return r; }\n"
                   "int main() { return f(1); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  AstEstimatorConfig Config;
  auto Est = estimatesByLabel(*G, estimateBlockFrequencies(*G, Config));
  EXPECT_NEAR(Est["case"], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(Est["case1"], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(Est["default"], 1.0 / 3.0, 1e-9);
}

//===----------------------------------------------------------------------===//
// Markov intra-procedural model (Figures 6-7)
//===----------------------------------------------------------------------===//

TEST(MarkovIntra, StrchrMatchesPaperFigure7) {
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("strchr");
  MarkovIntraConfig Config;
  MarkovIntraResult R = markovBlockFrequencies(*G, Config);
  auto Est = estimatesByLabel(*G, R.BlockFrequencies);

  // Figure 7's solution: entry/while 2.78, if 2.22, return1 0.44,
  // incr 1.78, return2 0.56. Our entry block *is* the while test.
  EXPECT_NEAR(Est["while.cond"], 2.7777, 1e-3);
  EXPECT_NEAR(Est["while.body"], 2.2222, 1e-3);
  EXPECT_NEAR(Est["if.then"], 0.4444, 1e-3);
  EXPECT_NEAR(Est["if.end"], 1.7777, 1e-3);
  EXPECT_NEAR(Est["while.end"], 0.5555, 1e-3);
  EXPECT_FALSE(R.Repaired);
}

TEST(MarkovIntra, ReflectsEarlyReturn) {
  // The Markov model sees the return inside the loop: the while test
  // frequency (2.78) is far below the AST model's 5 (paper §5.1).
  auto C = compile(StrchrSource);
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("strchr");
  MarkovIntraResult R = markovBlockFrequencies(*G, MarkovIntraConfig());
  AstEstimatorConfig AstConfig;
  std::vector<double> Ast = estimateBlockFrequencies(*G, AstConfig);
  auto MarkovEst = estimatesByLabel(*G, R.BlockFrequencies);
  auto AstEst = estimatesByLabel(*G, Ast);
  EXPECT_LT(MarkovEst["while.cond"], AstEst["while.cond"]);
}

TEST(MarkovIntra, FlowConservation) {
  auto C = compile("int f(int n) { int s = 0; int i;\n"
                   "  for (i = 0; i < n; i++) {\n"
                   "    if (i % 3 == 0) continue;\n"
                   "    if (i > 100) break;\n"
                   "    s += i;\n"
                   "  }\n"
                   "  return s; }\n"
                   "int main() { return f(10); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  MarkovIntraResult R = markovBlockFrequencies(*G, MarkovIntraConfig());
  // f(block) = entry + sum of incoming arc flows.
  for (const auto &B : G->blocks()) {
    double In = B.get() == G->entry() ? 1.0 : 0.0;
    for (const auto &P : G->blocks())
      for (size_t S = 0; S < P->successors().size(); ++S)
        if (P->successors()[S] == B.get())
          In += R.ArcFrequencies[P->id()][S];
    EXPECT_NEAR(In, R.BlockFrequencies[B->id()], 1e-9) << B->label();
  }
}

TEST(MarkovIntra, InfiniteLoopRepairs) {
  auto C = compile("int f() { for (;;) {} return 0; }\n"
                   "int main() { return 0; }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  MarkovIntraResult R = markovBlockFrequencies(*G, MarkovIntraConfig());
  EXPECT_TRUE(R.Repaired);
  for (double V : R.BlockFrequencies) {
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1e15);
  }
}

//===----------------------------------------------------------------------===//
// Inter-procedural estimators
//===----------------------------------------------------------------------===//

struct InterFixture {
  std::unique_ptr<Compiled> C;
  std::unique_ptr<CallGraph> CG;
  IntraEstimates Intra;

  explicit InterFixture(const std::string &Source,
                        IntraEstimatorKind Kind = IntraEstimatorKind::Smart) {
    C = compile(Source);
    if (!C)
      return;
    CG = std::make_unique<CallGraph>(
        CallGraph::build(C->unit(), *C->Cfgs));
    EstimatorOptions Options;
    Options.Intra = Kind;
    Intra = computeIntraEstimates(C->unit(), *C->Cfgs, Options);
  }

  std::vector<double> functions(InterEstimatorKind K) {
    return estimateFunctionFrequencies(K, C->unit(), *CG, Intra);
  }
  double fn(const std::vector<double> &Est, const std::string &Name) {
    return Est[C->fn(Name)->functionId()];
  }
};

TEST(InterEstimators, StraightLineCallsSum) {
  InterFixture F("void g() {}\n"
                 "void h() { g(); g(); }\n"
                 "int main() { g(); h(); return 0; }");
  ASSERT_TRUE(F.C);
  std::vector<double> Est = F.functions(InterEstimatorKind::CallSite);
  EXPECT_NEAR(F.fn(Est, "main"), 1.0, 1e-9);
  EXPECT_NEAR(F.fn(Est, "h"), 1.0, 1e-9);
  // g: one site in main (freq 1) + two sites in h (freq 1 each).
  EXPECT_NEAR(F.fn(Est, "g"), 3.0, 1e-9);
}

TEST(InterEstimators, DirectMultipliesSelfRecursion) {
  InterFixture F("int fact(int n) { if (n <= 1) return 1;\n"
                 "  return n * fact(n - 1); }\n"
                 "int main() { return fact(5); }");
  ASSERT_TRUE(F.C);
  std::vector<double> CallSite = F.functions(InterEstimatorKind::CallSite);
  std::vector<double> Direct = F.functions(InterEstimatorKind::Direct);
  EXPECT_NEAR(F.fn(Direct, "fact"), F.fn(CallSite, "fact") * 5.0, 1e-9);
  EXPECT_NEAR(F.fn(Direct, "main"), F.fn(CallSite, "main"), 1e-9);
}

TEST(InterEstimators, AllRecCoversMutualRecursion) {
  InterFixture F("int odd(int n);\n"
                 "int even(int n) { if (n == 0) return 1;\n"
                 "  return odd(n - 1); }\n"
                 "int odd(int n) { if (n == 0) return 0;\n"
                 "  return even(n - 1); }\n"
                 "int main() { return even(8); }");
  ASSERT_TRUE(F.C);
  std::vector<double> Direct = F.functions(InterEstimatorKind::Direct);
  std::vector<double> AllRec = F.functions(InterEstimatorKind::AllRec);
  // direct doesn't see the mutual cycle; all_rec multiplies both by 5.
  EXPECT_NEAR(F.fn(AllRec, "even"), F.fn(Direct, "even") * 5.0, 1e-9);
  EXPECT_NEAR(F.fn(AllRec, "odd"), F.fn(Direct, "odd") * 5.0, 1e-9);
}

TEST(InterEstimators, AllRec2RescalesThroughBlocks) {
  InterFixture F("void leaf() {}\n"
                 "void spin(int n) { leaf(); if (n) spin(n - 1); }\n"
                 "int main() { spin(10); return 0; }");
  ASSERT_TRUE(F.C);
  std::vector<double> AllRec = F.functions(InterEstimatorKind::AllRec);
  std::vector<double> AllRec2 = F.functions(InterEstimatorKind::AllRec2);
  // leaf is called from spin, whose counts all_rec2 scales up by spin's
  // all_rec estimate.
  EXPECT_GT(F.fn(AllRec2, "leaf"), F.fn(AllRec, "leaf"));
}

TEST(InterEstimators, MarkovChainOfCalls) {
  // main calls g three times in straight line; g calls h once.
  InterFixture F("void h() {}\n"
                 "void g() { h(); }\n"
                 "int main() { g(); g(); g(); return 0; }");
  ASSERT_TRUE(F.C);
  std::vector<double> Est = F.functions(InterEstimatorKind::Markov);
  EXPECT_NEAR(F.fn(Est, "main"), 1.0, 1e-9);
  EXPECT_NEAR(F.fn(Est, "g"), 3.0, 1e-9);
  EXPECT_NEAR(F.fn(Est, "h"), 3.0, 1e-9);
}

TEST(InterEstimators, MarkovGeometricRecursion) {
  // spin recurses behind an 80/20 loop-like if: arc spin->spin carries
  // the recursive call's local frequency.
  InterFixture F("int spin(int n) { if (n <= 0) return 0;\n"
                 "  return spin(n - 1); }\n"
                 "int main() { return spin(10); }");
  ASSERT_TRUE(F.C);
  std::vector<double> Est = F.functions(InterEstimatorKind::Markov);
  // Opcode heuristic: "n <= 0" unlikely -> recursive arm has local freq
  // 0.8; f(spin) = 1 + 0.8 f(spin) = 5.
  EXPECT_NEAR(F.fn(Est, "spin"), 5.0, 1e-6);
}

TEST(InterEstimators, MarkovRepairsCountNodesPattern) {
  // The paper's Figure 8: two recursive calls in the likely arm give the
  // self-arc weight 1.6 > 1, which must be reset to 0.8.
  InterFixture F(
      "struct tree_node { int v; struct tree_node *left;\n"
      "  struct tree_node *right; };\n"
      "int count_nodes(struct tree_node *node) {\n"
      "  if (node == NULL) return 0;\n"
      "  return count_nodes(node->left) + count_nodes(node->right) + 1;\n"
      "}\n"
      "int main() { return count_nodes(NULL); }");
  ASSERT_TRUE(F.C);
  std::vector<double> Est = F.functions(InterEstimatorKind::Markov);
  double CN = F.fn(Est, "count_nodes");
  // With the repaired 0.8 self-arc: f = 1 + 0.8 f  =>  f = 5.
  EXPECT_GT(CN, 0.0);
  EXPECT_NEAR(CN, 5.0, 1e-6);
}

TEST(InterEstimators, PointerNodeSplitsByAddressCounts) {
  // Two address-taken functions: a referenced twice, b once. Indirect
  // calls split 2:1.
  InterFixture F("int fa() { return 1; }\n"
                 "int fb() { return 2; }\n"
                 "int (*t1)() = fa;\n"
                 "int (*t2)() = fa;\n"
                 "int (*t3)() = fb;\n"
                 "int main() { return t1() + t2() + t3(); }");
  ASSERT_TRUE(F.C);
  std::vector<double> Est = F.functions(InterEstimatorKind::Markov);
  double A = F.fn(Est, "fa");
  double B = F.fn(Est, "fb");
  EXPECT_NEAR(A / B, 2.0, 1e-6);
  // Same split for the simple estimators.
  std::vector<double> Simple = F.functions(InterEstimatorKind::CallSite);
  EXPECT_NEAR(F.fn(Simple, "fa") / F.fn(Simple, "fb"), 2.0, 1e-6);
}

TEST(InterEstimators, CallSiteFrequenciesCombineIntraAndInter) {
  InterFixture F("void g() {}\n"
                 "void h() { int i; for (i = 0; i < 8; i++) g(); }\n"
                 "int main() { h(); h(); return 0; }");
  ASSERT_TRUE(F.C);
  std::vector<double> Fn = F.functions(InterEstimatorKind::Markov);
  std::vector<double> Sites = estimateCallSiteFrequencies(
      F.C->unit(), *F.CG, F.Intra, Fn);
  // The g() site: local freq 4 (loop body) times h's invocation count 2.
  double GSite = -1;
  for (const CallSiteInfo &S : F.CG->sites())
    if (S.Callee && S.Callee->name() == "g")
      GSite = Sites[S.CallSiteId];
  EXPECT_NEAR(GSite, 8.0, 1e-6);
}

TEST(InterEstimators, CallArcsMergeSitesPerPair) {
  InterFixture F("void g() {}\n"
                 "void h() { g(); g(); }\n"
                 "int main() { h(); g(); return 0; }");
  ASSERT_TRUE(F.C);
  std::vector<double> Fn = F.functions(InterEstimatorKind::Markov);
  std::vector<CallArcEstimate> Arcs = estimateCallArcFrequencies(
      F.C->unit(), *F.CG, F.Intra, Fn);
  // Arcs: main->h (1), main->g (1), h->g (2 sites, freq 2).
  ASSERT_EQ(Arcs.size(), 3u);
  const CallArcEstimate *HG = nullptr;
  for (const CallArcEstimate &A : Arcs)
    if (A.Caller->name() == "h" && A.Callee->name() == "g")
      HG = &A;
  ASSERT_NE(HG, nullptr);
  EXPECT_EQ(HG->NumSites, 2u);
  EXPECT_NEAR(HG->Frequency, 2.0, 1e-9);
  // Sorted descending: the h->g arc comes first.
  EXPECT_EQ(&Arcs[0], HG);
}

TEST(InterEstimators, IndirectSitesOmittedFromCallSiteEstimates) {
  InterFixture F("int fa() { return 1; }\n"
                 "int (*t)() = fa;\n"
                 "int main() { return t(); }");
  ASSERT_TRUE(F.C);
  std::vector<double> Fn = F.functions(InterEstimatorKind::Markov);
  std::vector<double> Sites = estimateCallSiteFrequencies(
      F.C->unit(), *F.CG, F.Intra, Fn);
  ASSERT_EQ(F.CG->indirectSites().size(), 1u);
  EXPECT_LT(Sites[F.CG->indirectSites()[0]->CallSiteId], 0.0);
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

TEST(Pipeline, EstimateProgramProducesAllLayers) {
  auto C = compile("int work(int n) { int s = 0; int i;\n"
                   "  for (i = 0; i < n; i++) s += i;\n"
                   "  return s; }\n"
                   "int main() { return work(10); }");
  ASSERT_TRUE(C);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  EstimatorOptions Options;
  ProgramEstimate E = estimateProgram(C->unit(), *C->Cfgs, CG, Options);
  EXPECT_EQ(E.FunctionEstimates.size(), C->unit().Functions.size());
  EXPECT_EQ(E.CallSiteEstimates.size(), C->unit().NumCallSites);
  EXPECT_FALSE(E.BlockEstimates[C->fn("work")->functionId()].empty());
  EXPECT_NEAR(E.FunctionEstimates[C->fn("main")->functionId()], 1.0, 1e-9);
}

TEST(Pipeline, GlobalBlockEstimatesScaleByInvocation) {
  auto C = compile("void g() { print_int(1); }\n"
                   "int main() { int i;\n"
                   "  for (i = 0; i < 12; i++) g();\n"
                   "  return 0; }");
  ASSERT_TRUE(C);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  EstimatorOptions Options;
  ProgramEstimate E = estimateProgram(C->unit(), *C->Cfgs, CG, Options);
  auto Global = globalBlockEstimates(E);
  size_t Gid = C->fn("g")->functionId();
  // g's entry block: per-entry 1.0 scaled by its invocation estimate.
  EXPECT_NEAR(Global[Gid][C->cfg("g")->entry()->id()],
              E.FunctionEstimates[Gid], 1e-9);
  EXPECT_GT(E.FunctionEstimates[Gid], 1.0);
}

TEST(Pipeline, GlobalArcEstimatesConserveBlockFlow) {
  auto C = compile("int f(int n) { int s = 0; int i;\n"
                   "  for (i = 0; i < n; i++)\n"
                   "    if (i % 2 == 0) s += i; else s--;\n"
                   "  return s; }\n"
                   "int main() { return f(9) != 0; }");
  ASSERT_TRUE(C);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  EstimatorOptions Options;
  ProgramEstimate E = estimateProgram(C->unit(), *C->Cfgs, CG, Options);
  auto Arcs = globalArcEstimates(C->unit(), *C->Cfgs, E, Options);
  auto Blocks = globalBlockEstimates(E);
  size_t Fid = C->fn("f")->functionId();
  const Cfg *G = C->cfg("f");
  for (const auto &B : G->blocks()) {
    if (B->successors().empty())
      continue;
    double Out = 0;
    for (double A : Arcs[Fid][B->id()])
      Out += A;
    // Outgoing probability-weighted flow equals the block frequency.
    EXPECT_NEAR(Out, Blocks[Fid][B->id()], 1e-9) << B->label();
  }
}

TEST(Pipeline, EstimateFromProfileNormalizesPerEntry) {
  auto C = compile("void g() { print_int(1); }\n"
                   "int main() { g(); g(); g(); return 0; }");
  ASSERT_TRUE(C);
  ProgramInput In;
  RunResult R = runProgram(C->unit(), *C->Cfgs, In);
  ASSERT_TRUE(R.Ok);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  ProgramEstimate E = estimateFromProfile(R.TheProfile, CG);
  size_t Gid = C->fn("g")->functionId();
  EXPECT_NEAR(E.FunctionEstimates[Gid], 3.0, 1e-9);
  // g's entry block executed 3 times, normalized to 1 per entry.
  EXPECT_NEAR(E.BlockEstimates[Gid][C->cfg("g")->entry()->id()], 1.0,
              1e-9);
}

} // namespace

//===- tests/test_export.cpp - Prometheus exposition unit tests ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Prometheus exposition layer (src/obs/Export, src/obs/Window):
/// name mangling and label escaping, render → parse → lint round-trips,
/// histogram family shape (monotone cumulative buckets, the `le="0"`
/// non-positive bucket, percentile gauges), the deterministic series
/// filter, the lint's negative cases, and rolling-window delta
/// snapshots with their byte-reproducibility guarantee.
///
//===----------------------------------------------------------------------===//

#include "obs/Export.h"
#include "obs/Telemetry.h"
#include "obs/Window.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace sest;
using namespace sest::obs;

namespace {

//===----------------------------------------------------------------------===//
// Name mangling and value formatting
//===----------------------------------------------------------------------===//

TEST(PromExport, MetricNameManglingIsStableAndTotal) {
  EXPECT_EQ(promMetricName("service.request_us"),
            "sest_service_request_us");
  EXPECT_EQ(promMetricName("service.requests.estimate"),
            "sest_service_requests_estimate");
  // Every invalid byte becomes '_'; nothing is dropped.
  EXPECT_EQ(promMetricName("a-b c/d"), "sest_a_b_c_d");
  // A leading digit is only reachable with an empty prefix, and gets
  // guarded so the result is still a valid metric name.
  EXPECT_EQ(promMetricName("9lives", ""), "_9lives");
  EXPECT_EQ(promMetricName("ok", ""), "ok");
}

TEST(PromExport, LabelEscaping) {
  EXPECT_EQ(promEscapeLabel("plain"), "plain");
  EXPECT_EQ(promEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(promEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(promEscapeLabel("two\nlines"), "two\\nlines");
}

TEST(PromExport, NumbersPrintIntegralWithoutDecimalPoint) {
  EXPECT_EQ(promNumber(3.0), "3");
  EXPECT_EQ(promNumber(0.0), "0");
  EXPECT_EQ(promNumber(2.5), "2.5");
}

TEST(PromExport, DeterministicSeriesNameIsTheRequestFlowFamily) {
  EXPECT_TRUE(deterministicSeriesName("service.requests"));
  EXPECT_TRUE(deterministicSeriesName("service.requests.bad"));
  EXPECT_TRUE(deterministicSeriesName("service.requests.estimate"));
  EXPECT_FALSE(deterministicSeriesName("service.batches"));
  EXPECT_FALSE(deterministicSeriesName("service.request_us"));
  EXPECT_FALSE(deterministicSeriesName("service.cache.ast.hit"));
}

//===----------------------------------------------------------------------===//
// Render → parse → lint round-trip
//===----------------------------------------------------------------------===//

TEST(PromExport, RenderRoundTripsThroughParserAndLint) {
  Telemetry T;
  T.add("service.requests", 7);
  T.add("service.requests.estimate", 4);
  T.raiseMax("pool.depth", 3);
  T.record("service.request_us", 10.0);
  T.record("service.request_us", 100.0);
  T.record("service.request_us", 1000.0);

  std::string Text = renderPrometheus(T);
  EXPECT_TRUE(lintPrometheus(Text).empty())
      << lintPrometheus(Text).front();

  std::string Error;
  auto Doc = parsePrometheus(Text, &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  EXPECT_EQ(Doc->valueOr("sest_service_requests", -1), 7.0);
  EXPECT_EQ(Doc->valueOr("sest_service_requests_estimate", -1), 4.0);
  EXPECT_EQ(Doc->valueOr("sest_pool_depth", -1), 3.0);
  EXPECT_EQ(Doc->valueOr("sest_service_request_us_count", -1), 3.0);
  EXPECT_EQ(Doc->valueOr("sest_service_request_us_sum", -1), 1110.0);
  // Declared types survive the round trip.
  EXPECT_EQ(Doc->Types.at("sest_service_requests"), "counter");
  EXPECT_EQ(Doc->Types.at("sest_pool_depth"), "gauge");
  EXPECT_EQ(Doc->Types.at("sest_service_request_us"), "histogram");
}

TEST(PromExport, HistogramFamilyShape) {
  Telemetry T;
  T.record("lat", 1.0);
  T.record("lat", 2.0);
  T.record("lat", 1000.0);

  std::string Text = renderPrometheus(T);
  auto Doc = parsePrometheus(Text);
  ASSERT_TRUE(Doc.has_value());

  // Collect the cumulative buckets in document order: the le bounds
  // must be strictly increasing, counts non-decreasing, and the +Inf
  // bucket must equal _count.
  double PrevLe = -1.0, PrevN = -1.0, InfN = -1.0;
  size_t Buckets = 0;
  for (const PromSample &S : Doc->Samples) {
    if (S.Name != "sest_lat_bucket")
      continue;
    ++Buckets;
    const std::string *Le = S.label("le");
    ASSERT_NE(Le, nullptr);
    if (*Le == "+Inf") {
      InfN = S.Value;
      continue;
    }
    double Bound = std::stod(*Le);
    EXPECT_GT(Bound, PrevLe);
    EXPECT_GE(S.Value, PrevN);
    PrevLe = Bound;
    PrevN = S.Value;
  }
  EXPECT_GE(Buckets, 3u);
  EXPECT_EQ(InfN, 3.0);
  EXPECT_EQ(Doc->valueOr("sest_lat_count", -1), 3.0);
  // Percentile gauges ride along for dashboards.
  EXPECT_GT(Doc->valueOr("sest_lat_p50", -1), 0.0);
  EXPECT_GE(Doc->valueOr("sest_lat_p99", -1),
            Doc->valueOr("sest_lat_p50", -1));
  EXPECT_TRUE(lintPrometheus(Text).empty());
}

TEST(PromExport, NonPositiveSamplesLandInTheZeroBucket) {
  Telemetry T;
  T.record("signed", -5.0);
  T.record("signed", 0.0);
  T.record("signed", 4.0);

  std::string Text = renderPrometheus(T);
  auto Doc = parsePrometheus(Text);
  ASSERT_TRUE(Doc.has_value());
  bool SawZero = false;
  for (const PromSample &S : Doc->Samples) {
    if (S.Name != "sest_signed_bucket")
      continue;
    const std::string *Le = S.label("le");
    ASSERT_NE(Le, nullptr);
    if (*Le == "0") {
      SawZero = true;
      EXPECT_EQ(S.Value, 2.0); // both non-positive samples, cumulative
    }
  }
  EXPECT_TRUE(SawZero);
  EXPECT_TRUE(lintPrometheus(Text).empty());
}

TEST(PromExport, ExtraSeriesMergeIntoTheExposition) {
  Telemetry T;
  T.add("service.requests", 2);
  std::vector<ExtraSeries> Extra = {
      {"service.cache.ast.hits", 5.0, false},
      {"service.cache.ast.misses", 1.0, false},
  };
  std::string Text = renderPrometheus(T, {}, Extra);
  auto Doc = parsePrometheus(Text);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->valueOr("sest_service_cache_ast_hits", -1), 5.0);
  EXPECT_EQ(Doc->Types.at("sest_service_cache_ast_hits"), "gauge");
  EXPECT_TRUE(lintPrometheus(Text).empty());
}

TEST(PromExport, DeterministicScopeFiltersToRequestFlowCounters) {
  Telemetry T;
  T.add("service.requests", 3);
  T.add("service.requests.parse", 3);
  T.add("service.batches", 2);       // live-only counter
  T.raiseMax("service.batch_depth", 4); // gauge: never deterministic
  T.record("service.request_us", 9.0);  // histogram: never deterministic

  ExportOptions O;
  O.DeterministicOnly = true;
  std::string Text = renderPrometheus(T, O);
  auto Doc = parsePrometheus(Text);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->valueOr("sest_service_requests", -1), 3.0);
  EXPECT_EQ(Doc->valueOr("sest_service_requests_parse", -1), 3.0);
  EXPECT_EQ(Doc->find("sest_service_batches"), nullptr);
  EXPECT_EQ(Doc->find("sest_service_batch_depth"), nullptr);
  EXPECT_EQ(Doc->find("sest_service_request_us_count"), nullptr);
}

//===----------------------------------------------------------------------===//
// Lint negative cases
//===----------------------------------------------------------------------===//

TEST(PromLint, FlagsDuplicateSeries) {
  std::string Text = "# TYPE m counter\nm 1\nm 2\n";
  auto Findings = lintPrometheus(Text);
  ASSERT_FALSE(Findings.empty());
  EXPECT_NE(Findings.front().find("duplicate"), std::string::npos);
  // Distinct label sets are distinct series — no finding.
  EXPECT_TRUE(lintPrometheus("# TYPE m counter\n"
                             "m{k=\"a\"} 1\nm{k=\"b\"} 2\n")
                  .empty());
}

TEST(PromLint, FlagsSamplesWithoutType) {
  EXPECT_FALSE(lintPrometheus("orphan 1\n").empty());
}

TEST(PromLint, FlagsNegativeCounters) {
  EXPECT_FALSE(lintPrometheus("# TYPE m counter\nm -1\n").empty());
  EXPECT_TRUE(lintPrometheus("# TYPE m gauge\nm -1\n").empty());
}

TEST(PromLint, FlagsNonMonotoneHistogram) {
  // Cumulative counts must be non-decreasing with le.
  std::string Bad = "# TYPE h histogram\n"
                    "h_bucket{le=\"1\"} 5\n"
                    "h_bucket{le=\"2\"} 3\n"
                    "h_bucket{le=\"+Inf\"} 5\n"
                    "h_sum 7\n"
                    "h_count 5\n";
  EXPECT_FALSE(lintPrometheus(Bad).empty());
  // +Inf bucket must agree with _count.
  std::string Mismatch = "# TYPE h histogram\n"
                         "h_bucket{le=\"1\"} 2\n"
                         "h_bucket{le=\"+Inf\"} 2\n"
                         "h_sum 2\n"
                         "h_count 3\n";
  EXPECT_FALSE(lintPrometheus(Mismatch).empty());
}

TEST(PromLint, FlagsSyntaxErrors) {
  EXPECT_FALSE(lintPrometheus("m{k=\"unterminated} 1\n").empty());
  EXPECT_FALSE(lintPrometheus("# TYPE m counter\nm notanumber\n").empty());
  std::string Error;
  EXPECT_FALSE(parsePrometheus("m{k=\"bad\\q\"} 1\n", &Error).has_value());
  EXPECT_NE(Error.find("line 1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Rolling windows
//===----------------------------------------------------------------------===//

TEST(RollingWindow, CounterAndHistogramDeltas) {
  Telemetry T;
  RollingWindow W;

  T.add("service.requests", 10);
  T.record("lat", 5.0);
  WindowSnapshot S1 = W.advance(T, 10);
  EXPECT_EQ(S1.Tick, 10u);
  EXPECT_EQ(S1.WindowTicks, 10u);
  EXPECT_EQ(S1.CounterDeltas.at("service.requests"), 10.0);
  EXPECT_EQ(S1.HistogramDeltas.at("lat").Count, 1u);

  T.add("service.requests", 3);
  T.record("lat", 500.0);
  T.record("lat", 600.0);
  WindowSnapshot S2 = W.advance(T, 13);
  EXPECT_EQ(S2.WindowTicks, 3u);
  EXPECT_EQ(S2.CounterDeltas.at("service.requests"), 3.0);
  EXPECT_EQ(S2.HistogramDeltas.at("lat").Count, 2u);
  EXPECT_EQ(S2.HistogramDeltas.at("lat").Sum, 1100.0);
  // The window's percentile estimate stays inside the window's samples
  // (the first window's 5.0 no longer drags it down).
  EXPECT_GE(S2.HistogramDeltas.at("lat").percentile(0.5), 400.0);

  // An idle window is all zeros, not stale values.
  WindowSnapshot S3 = W.advance(T, 13);
  EXPECT_EQ(S3.WindowTicks, 0u);
  EXPECT_EQ(S3.CounterDeltas.at("service.requests"), 0.0);
  EXPECT_EQ(S3.HistogramDeltas.at("lat").Count, 0u);
}

TEST(RollingWindow, RenderIsByteReproducibleForAFixedSequence) {
  auto Run = [] {
    Telemetry T;
    RollingWindow W;
    std::string Out;
    for (int Round = 1; Round <= 3; ++Round) {
      T.add("service.requests", 4);
      T.add("service.requests.estimate", 2);
      T.record("service.request_us", 10.0 * Round);
      Out += renderPrometheus(
          W.advance(T, static_cast<uint64_t>(4 * Round)));
      Out += "\n";
    }
    return Out;
  };
  EXPECT_EQ(Run(), Run());
}

TEST(RollingWindow, WindowRenderConcatenatesLintCleanAfterCumulative) {
  // Exactly what sestd --metrics writes: cumulative exposition followed
  // by the window section, in one file. No duplicate series allowed.
  Telemetry T;
  T.add("service.requests", 6);
  T.raiseMax("service.batch_depth", 2);
  T.record("service.request_us", 15.0);

  RollingWindow W;
  std::string Text = renderPrometheus(T);
  Text += renderPrometheus(W.advance(T, 6));
  auto Findings = lintPrometheus(Text);
  EXPECT_TRUE(Findings.empty()) << Findings.front();

  auto Doc = parsePrometheus(Text);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->valueOr("sest_service_requests", -1), 6.0);
  EXPECT_EQ(Doc->valueOr("sest_service_requests_delta", -1), 6.0);
  EXPECT_EQ(Doc->valueOr("sest_window_tick", -1), 6.0);
  EXPECT_EQ(Doc->valueOr("sest_window_ticks", -1), 6.0);
}

TEST(RollingWindow, DeterministicScopeKeepsOnlyRequestFlowDeltas) {
  Telemetry T;
  T.add("service.requests", 5);
  T.add("service.batches", 2);
  T.record("service.request_us", 7.0);

  RollingWindow W;
  ExportOptions O;
  O.DeterministicOnly = true;
  std::string Text = renderPrometheus(W.advance(T, 5), O);
  auto Doc = parsePrometheus(Text);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->valueOr("sest_service_requests_delta", -1), 5.0);
  EXPECT_EQ(Doc->find("sest_service_batches_delta"), nullptr);
  EXPECT_EQ(Doc->find("sest_service_request_us_delta_count"), nullptr);
  EXPECT_EQ(Doc->valueOr("sest_window_tick", -1), 5.0);
}

} // namespace

//===- tests/test_extensions.cpp - Extension feature tests -----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the two optional refinements beyond the paper's baseline:
/// constant loop-bound detection (§4.1's "numerical category"
/// observation) and probability-generating branch prediction (§5.1's
/// open question).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "estimators/AstEstimator.h"
#include "estimators/BranchPrediction.h"
#include "estimators/LoopBounds.h"
#include "estimators/MarkovIntra.h"

#include <gtest/gtest.h>

using namespace sest;
using namespace sest::test;

namespace {

/// Extracts the first ForStmt of function f in \p Source.
const ForStmt *firstFor(Compiled &C) {
  const Cfg *G = C.cfg("f");
  if (!G)
    return nullptr;
  for (const auto &B : G->blocks())
    if (const auto *F = stmtDynCast<ForStmt>(B->terminatorOrigin()))
      return F;
  return nullptr;
}

std::optional<double> tripsOf(const std::string &Body) {
  auto C = compile("int f() { int s = 0;\n" + Body +
                   "\n  return s; }\nint main() { return f(); }");
  if (!C)
    return std::nullopt;
  const ForStmt *F = firstFor(*C);
  if (!F) {
    ADD_FAILURE() << "no for loop found";
    return std::nullopt;
  }
  return constantTripCount(F);
}

//===----------------------------------------------------------------------===//
// Constant trip counts
//===----------------------------------------------------------------------===//

TEST(LoopBounds, SimpleUpwardLoop) {
  auto T = tripsOf("int i; for (i = 0; i < 10; i++) s += i;");
  ASSERT_TRUE(T.has_value());
  EXPECT_DOUBLE_EQ(*T, 10.0);
}

TEST(LoopBounds, DeclInitAndInclusiveBound) {
  auto T = tripsOf("for (int i = 0; i <= 10; i++) s += i;");
  ASSERT_TRUE(T.has_value());
  EXPECT_DOUBLE_EQ(*T, 11.0);
}

TEST(LoopBounds, StridedLoopRoundsUp) {
  auto T = tripsOf("for (int i = 2; i < 10; i += 3) s += i;");
  ASSERT_TRUE(T.has_value());
  EXPECT_DOUBLE_EQ(*T, 3.0); // i = 2, 5, 8
}

TEST(LoopBounds, DownwardLoop) {
  auto T = tripsOf("for (int i = 9; i > 0; i--) s += i;");
  ASSERT_TRUE(T.has_value());
  EXPECT_DOUBLE_EQ(*T, 9.0);
}

TEST(LoopBounds, DownwardStrided) {
  auto T = tripsOf("for (int i = 10; i >= 0; i -= 2) s += i;");
  ASSERT_TRUE(T.has_value());
  EXPECT_DOUBLE_EQ(*T, 6.0); // 10 8 6 4 2 0
}

TEST(LoopBounds, MirroredComparison) {
  auto T = tripsOf("for (int i = 0; 8 > i; i++) s += i;");
  ASSERT_TRUE(T.has_value());
  EXPECT_DOUBLE_EQ(*T, 8.0);
}

TEST(LoopBounds, EmptyRangeIsZero) {
  auto T = tripsOf("for (int i = 5; i < 5; i++) s += i;");
  ASSERT_TRUE(T.has_value());
  EXPECT_DOUBLE_EQ(*T, 0.0);
}

TEST(LoopBounds, RejectsNonConstantBound) {
  auto T = tripsOf("int n = s + 3; for (int i = 0; i < n; i++) s += i;");
  EXPECT_FALSE(T.has_value());
}

TEST(LoopBounds, RejectsBodyWritingInduction) {
  auto T = tripsOf("for (int i = 0; i < 10; i++) { s += i; i += 1; }");
  EXPECT_FALSE(T.has_value());
}

TEST(LoopBounds, RejectsEscapingInduction) {
  auto T = tripsOf("int *p; for (int i = 0; i < 10; i++) { p = &i;\n"
                   "  s += *p; }");
  EXPECT_FALSE(T.has_value());
}

TEST(LoopBounds, RejectsWrongDirection) {
  auto T = tripsOf("for (int i = 0; i > 10; i++) s += i;");
  EXPECT_FALSE(T.has_value());
}

TEST(LoopBounds, CapApplies) {
  auto C = compile("int f() { int s = 0;\n"
                   "  for (int i = 0; i < 1000000; i++) s += i;\n"
                   "  return s; }\nint main() { return f(); }");
  ASSERT_TRUE(C);
  const ForStmt *F = firstFor(*C);
  ASSERT_TRUE(F);
  auto T = constantTripCount(F, /*MaxTrips=*/100.0);
  ASSERT_TRUE(T.has_value());
  EXPECT_DOUBLE_EQ(*T, 100.0);
}

TEST(LoopBounds, AstEstimatorUsesExactCounts) {
  auto C = compile("int f() { int s = 0;\n"
                   "  for (int i = 0; i < 100; i++) s += i;\n"
                   "  return s; }\nint main() { return f(); }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  AstEstimatorConfig Config;
  Config.Branch.UseConstantLoopBounds = true;
  std::vector<double> Est = estimateBlockFrequencies(*G, Config);
  double MaxEst = 0;
  for (double V : Est)
    MaxEst = std::max(MaxEst, V);
  EXPECT_DOUBLE_EQ(MaxEst, 101.0); // the test block
}

TEST(LoopBounds, PredictorUsesExactProbability) {
  auto C = compile("int f() { int s = 0;\n"
                   "  for (int i = 0; i < 99; i++) s += i;\n"
                   "  return s; }\nint main() { return f(); }");
  ASSERT_TRUE(C);
  BranchPredictorConfig Config;
  Config.UseConstantLoopBounds = true;
  BranchPredictor BP(Config);
  FunctionBranchPredictions P = BP.predictFunction(*C->cfg("f"));
  bool Found = false;
  for (const auto &[Id, Pred] : P.ByBlock)
    if (std::string(Pred.Heuristic) == "counted-loop") {
      EXPECT_NEAR(Pred.ProbTrue, 99.0 / 100.0, 1e-9);
      Found = true;
    }
  EXPECT_TRUE(Found);
}

TEST(LoopBounds, ExactCountsImproveMarkovAccuracy) {
  // A counted loop of 100: baseline assumes 5, refined knows 100.
  auto C = compile("int f() { int s = 0;\n"
                   "  for (int i = 0; i < 100; i++) s += i;\n"
                   "  return s; }\nint main() { return f() != 4950; }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("f");
  MarkovIntraConfig Base;
  MarkovIntraConfig Refined;
  Refined.Branch.UseConstantLoopBounds = true;
  double BodyBase = 0, BodyRefined = 0;
  MarkovIntraResult RBase = markovBlockFrequencies(*G, Base);
  MarkovIntraResult RRef = markovBlockFrequencies(*G, Refined);
  for (const auto &B : G->blocks()) {
    if (B->label().find("for.body") == 0) {
      BodyBase = RBase.BlockFrequencies[B->id()];
      BodyRefined = RRef.BlockFrequencies[B->id()];
    }
  }
  EXPECT_NEAR(BodyBase, 4.0, 1e-6);
  EXPECT_NEAR(BodyRefined, 100.0, 1e-6);
}

//===----------------------------------------------------------------------===//
// Probability modes
//===----------------------------------------------------------------------===//

/// Prediction of the single if in function f.
BranchPrediction predictWithMode(const std::string &Source,
                                 ProbabilityMode Mode) {
  auto C = compile(Source);
  if (!C) {
    ADD_FAILURE();
    return {};
  }
  BranchPredictorConfig Config;
  Config.ProbMode = Mode;
  BranchPredictor BP(Config);
  FunctionBranchPredictions P = BP.predictFunction(*C->cfg("f"));
  for (const auto &[Id, Pred] : P.ByBlock)
    return Pred;
  ADD_FAILURE() << "no branch found";
  return {};
}

TEST(ProbabilityModes, PerHeuristicUsesConfidence) {
  const char *Src = "int f(int *p) { if (p == NULL) return 1;\n"
                    "  return 2; }\n"
                    "int main() { int x; return f(&x); }";
  BranchPrediction Fixed = predictWithMode(Src, ProbabilityMode::Fixed);
  BranchPrediction Per =
      predictWithMode(Src, ProbabilityMode::PerHeuristic);
  EXPECT_NEAR(Fixed.ProbTrue, 0.2, 1e-9);  // 1 - 0.8
  EXPECT_NEAR(Per.ProbTrue, 0.1, 1e-9);    // 1 - 0.90
  EXPECT_FALSE(Per.PredictTrue);
}

TEST(ProbabilityModes, DempsterShaferCombinesAgreeingEvidence) {
  // "x == limit" (opcode: unlikely) whose then-arm stores a read
  // variable (store: likely). Opposed evidence combines to something in
  // between, dominated by the stronger opcode confidence.
  const char *Src = "int f(int x, int limit) { int count = 0;\n"
                    "  if (x == limit) count = count + 1;\n"
                    "  return count; }\n"
                    "int main() { return f(1, 2); }";
  BranchPrediction DS =
      predictWithMode(Src, ProbabilityMode::DempsterShafer);
  // p(opcode says true) = 1-0.84 = 0.16; p(store says true) = 0.55.
  double True = 0.16 * 0.55;
  double False = 0.84 * 0.45;
  EXPECT_NEAR(DS.ProbTrue, True / (True + False), 1e-9);
  EXPECT_FALSE(DS.PredictTrue);
}

TEST(ProbabilityModes, DempsterShaferSingleEvidenceIsPerHeuristic) {
  const char *Src = "int f(int *p) { if (p != NULL) return 1;\n"
                    "  return 2; }\n"
                    "int main() { int x; return f(&x); }";
  BranchPrediction DS =
      predictWithMode(Src, ProbabilityMode::DempsterShafer);
  BranchPrediction Per =
      predictWithMode(Src, ProbabilityMode::PerHeuristic);
  EXPECT_NEAR(DS.ProbTrue, Per.ProbTrue, 1e-9);
}

TEST(ProbabilityModes, MarkovIntraAcceptsAllModes) {
  auto C = compile("int f(int *p, int n) { int s = 0;\n"
                   "  while (n > 0) {\n"
                   "    if (p != NULL && n % 2 == 0) s++;\n"
                   "    n--;\n"
                   "  }\n"
                   "  return s; }\n"
                   "int main() { int x; return f(&x, 10); }");
  ASSERT_TRUE(C);
  for (ProbabilityMode Mode :
       {ProbabilityMode::Fixed, ProbabilityMode::PerHeuristic,
        ProbabilityMode::DempsterShafer}) {
    MarkovIntraConfig Config;
    Config.Branch.ProbMode = Mode;
    MarkovIntraResult R =
        markovBlockFrequencies(*C->cfg("f"), Config);
    for (double V : R.BlockFrequencies) {
      EXPECT_GE(V, 0.0);
      EXPECT_LT(V, 1e6);
    }
  }
}

} // namespace

//===- tests/test_integration.cpp - Paper-shape integration tests ----------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end assertions that the reproduction exhibits the paper's
/// qualitative results on the full 14-program suite. These are the
/// executable form of the claims in EXPERIMENTS.md: who wins, in what
/// order, and roughly by how much — not absolute numbers.
///
//===----------------------------------------------------------------------===//

#include "estimators/Pipeline.h"
#include "metrics/BranchMiss.h"
#include "metrics/Evaluation.h"
#include "suite/SuiteRunner.h"

#include <gtest/gtest.h>

using namespace sest;

namespace {

/// The suite is expensive to compile + profile; share one instance.
const std::vector<CompiledSuiteProgram> &suite() {
  static const std::vector<CompiledSuiteProgram> S = [] {
    std::vector<CompiledSuiteProgram> V = compileAndProfileSuite();
    for (const CompiledSuiteProgram &P : V) {
      EXPECT_TRUE(P.Ok) << P.Error;
    }
    return V;
  }();
  return S;
}

double averageStaticScore(
    InterEstimatorKind Inter, double Cutoff,
    double (*Score)(const ProgramEstimate &, const Profile &,
                    const std::vector<size_t> &, double)) {
  double Sum = 0;
  for (const CompiledSuiteProgram &P : suite()) {
    EstimatorOptions Options;
    Options.Inter = Inter;
    ProgramEstimate E = estimateProgram(P.unit(), *P.Cfgs, *P.CG, Options);
    auto Ids = scoredFunctionIds(P.unit());
    double ProgSum = 0;
    for (const Profile &Prof : P.Profiles)
      ProgSum += Score(E, Prof, Ids, Cutoff);
    Sum += ProgSum / P.Profiles.size();
  }
  return Sum / suite().size();
}

TEST(PaperShape, StaticMissRateBetweenPspAndDouble) {
  // Fig. 2: PSP <= profiling <= static, on every program; on average the
  // static predictor is within ~3x of profiling (the paper found ~2x).
  double SumStatic = 0, SumProf = 0, SumPsp = 0;
  for (const CompiledSuiteProgram &P : suite()) {
    BranchPredictor BP;
    auto Preds = predictAllFunctions(P.unit(), *P.Cfgs, BP);
    BranchMissCounts S, G;
    for (const Profile &Prof : P.Profiles) {
      S += branchMissRate(*P.Cfgs, Preds, Prof, BranchOracle::Static);
      G += branchMissRate(*P.Cfgs, Preds, Prof, BranchOracle::Perfect);
    }
    BranchMissCounts F;
    for (size_t I = 0; I < P.Profiles.size(); ++I) {
      Profile Agg = aggregateExcept(P.Profiles, I);
      F += branchMissRate(*P.Cfgs, Preds, P.Profiles[I],
                          BranchOracle::Training, &Agg);
    }
    EXPECT_LE(G.rate(), F.rate() + 1e-9) << P.Spec->Name;
    EXPECT_LE(G.rate(), S.rate() + 1e-9) << P.Spec->Name;
    SumStatic += S.rate();
    SumProf += F.rate();
    SumPsp += G.rate();
  }
  EXPECT_GT(SumStatic, SumProf); // static predicts worse than profiling
  EXPECT_LT(SumStatic, SumProf * 3.0); // ... but is competitive (~2x)
  EXPECT_LE(SumPsp, SumProf + 1e-9);
}

TEST(PaperShape, IntraLoopCapturesMostBenefit) {
  // Fig. 4: loop alone is already close to profiling; smart >= loop on
  // average; the profiling gap is small.
  auto Avg = [](IntraEstimatorKind Kind) {
    double Sum = 0;
    for (const CompiledSuiteProgram &P : suite()) {
      EstimatorOptions Options;
      Options.Intra = Kind;
      ProgramEstimate E =
          estimateProgram(P.unit(), *P.Cfgs, *P.CG, Options);
      auto Ids = scoredFunctionIds(P.unit());
      double ProgSum = 0;
      for (const Profile &Prof : P.Profiles)
        ProgSum += intraProceduralScore(E, Prof, Ids, 0.05);
      Sum += ProgSum / P.Profiles.size();
    }
    return Sum / suite().size();
  };
  double Loop = Avg(IntraEstimatorKind::Loop);
  double Smart = Avg(IntraEstimatorKind::Smart);
  double Markov = Avg(IntraEstimatorKind::Markov);
  EXPECT_GT(Loop, 0.85);         // loop alone is already strong
  EXPECT_GE(Smart, Loop - 0.01); // smart refines
  EXPECT_GE(Markov, Loop - 0.02); // markov does not regress materially
  EXPECT_LT(Smart, 1.0 + 1e-9);
}

TEST(PaperShape, MarkovBeatsDirectForFunctions) {
  // Fig. 5b/c: the Markov call-graph model clearly improves on direct.
  double Direct25 = averageStaticScore(InterEstimatorKind::Direct, 0.25,
                                       functionInvocationScore);
  double Markov25 = averageStaticScore(InterEstimatorKind::Markov, 0.25,
                                       functionInvocationScore);
  double Direct10 = averageStaticScore(InterEstimatorKind::Direct, 0.10,
                                       functionInvocationScore);
  double Markov10 = averageStaticScore(InterEstimatorKind::Markov, 0.10,
                                       functionInvocationScore);
  EXPECT_GT(Markov25, Direct25 + 0.05);
  EXPECT_GT(Markov10, Direct10 + 0.05);
  EXPECT_GT(Markov25, 0.70); // paper: ~80% at the 25% cutoff
}

TEST(PaperShape, CallSiteCombinationIsAccurate) {
  // Fig. 9: combined intra x inter identifies the busiest quarter of
  // call sites with high accuracy (paper: 76%).
  double Sum = 0;
  for (const CompiledSuiteProgram &P : suite()) {
    EstimatorOptions Options;
    ProgramEstimate E = estimateProgram(P.unit(), *P.Cfgs, *P.CG, Options);
    double ProgSum = 0;
    for (const Profile &Prof : P.Profiles)
      ProgSum += callSiteScore(E, Prof, 0.25);
    Sum += ProgSum / P.Profiles.size();
  }
  EXPECT_GT(Sum / suite().size(), 0.70);
}

TEST(PaperShape, SelectiveOptimizationImprovesMonotonically) {
  // Fig. 10 property: more optimized functions never slow the program.
  const CompiledSuiteProgram *Compress = nullptr;
  for (const CompiledSuiteProgram &P : suite())
    if (P.Spec->Name == "compress")
      Compress = &P;
  ASSERT_NE(Compress, nullptr);

  EstimatorOptions Options;
  ProgramEstimate E = estimateProgram(Compress->unit(), *Compress->Cfgs,
                                      *Compress->CG, Options);
  std::vector<const FunctionDecl *> Ranking;
  for (const FunctionDecl *F : Compress->unit().Functions)
    if (F->isDefined())
      Ranking.push_back(F);
  std::stable_sort(Ranking.begin(), Ranking.end(),
                   [&E](const FunctionDecl *A, const FunctionDecl *B) {
                     return E.FunctionEstimates[A->functionId()] >
                            E.FunctionEstimates[B->functionId()];
                   });

  const ProgramInput &Input = Compress->Spec->Inputs.back();
  double Prev = 1e300;
  for (size_t K : {0u, 2u, 4u, 6u, 16u}) {
    InterpOptions Opts;
    for (size_t I = 0; I < K && I < Ranking.size(); ++I)
      Opts.OptimizedFunctions.insert(Ranking[I]);
    RunResult R =
        runProgram(Compress->unit(), *Compress->Cfgs, Input, Opts);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_LE(R.TheProfile.TotalCycles, Prev + 1e-9);
    Prev = R.TheProfile.TotalCycles;
  }
}

TEST(PaperShape, GsPointerHeavyDispatchHurtsFunctionEstimates) {
  // §5.2.1: the pointer-node approximation spreads indirect flow evenly,
  // so gs (half its functions referenced indirectly) cannot score
  // perfectly on functions; xlisp still identifies its hot functions.
  for (const CompiledSuiteProgram &P : suite()) {
    if (P.Spec->Name != "gs")
      continue;
    EstimatorOptions Options;
    Options.Inter = InterEstimatorKind::Markov;
    ProgramEstimate E = estimateProgram(P.unit(), *P.Cfgs, *P.CG, Options);
    // All dispatched operators get the *same* estimate (equiprobable):
    const FunctionDecl *Add = P.unit().findFunction("op_add");
    const FunctionDecl *Mod = P.unit().findFunction("op_mod");
    ASSERT_TRUE(Add && Mod);
    EXPECT_NEAR(E.FunctionEstimates[Add->functionId()],
                E.FunctionEstimates[Mod->functionId()], 1e-9)
        << "pointer node must make indirect targets equiprobable";
  }
}

} // namespace

//===- tests/test_interp.cpp - Interpreter unit tests ----------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace sest;
using namespace sest::test;

namespace {

TEST(Interp, ReturnsMainExitCode) {
  EXPECT_EQ(compileAndRun("int main() { return 42; }").ExitCode, 42);
}

TEST(Interp, ArithmeticAndLogic) {
  EXPECT_EQ(compileAndRun("int main() { return 7 % 3; }").ExitCode, 1);
  EXPECT_EQ(compileAndRun("int main() { return 5 & 3; }").ExitCode, 1);
  EXPECT_EQ(compileAndRun("int main() { return 5 | 3; }").ExitCode, 7);
  EXPECT_EQ(compileAndRun("int main() { return 5 ^ 3; }").ExitCode, 6);
  EXPECT_EQ(compileAndRun("int main() { return ~0 + 2; }").ExitCode, 1);
  EXPECT_EQ(compileAndRun("int main() { return !5; }").ExitCode, 0);
  EXPECT_EQ(compileAndRun("int main() { return 3 < 4 && 4 < 3; }").ExitCode,
            0);
  EXPECT_EQ(compileAndRun("int main() { return 3 < 4 || 4 < 3; }").ExitCode,
            1);
}

TEST(Interp, ShortCircuitSkipsSideEffects) {
  RunResult R = compileAndRun(
      "int g = 0;\n"
      "int bump() { g++; return 1; }\n"
      "int main() { 0 && bump(); 1 || bump(); return g; }");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(Interp, DoubleArithmetic) {
  EXPECT_EQ(
      compileAndRun("int main() { double d = 1.5; d = d * 4.0;\n"
                    "  return (int)d; }")
          .ExitCode,
      6);
  EXPECT_EQ(compileAndRun("int main() { return (int)(7 / 2.0 * 2.0); }")
                .ExitCode,
            7);
}

TEST(Interp, IncrementDecrementSemantics) {
  EXPECT_EQ(
      compileAndRun("int main() { int x = 5; return x++ * 10 + x; }")
          .ExitCode,
      56);
  EXPECT_EQ(
      compileAndRun("int main() { int x = 5; return ++x * 10 + x; }")
          .ExitCode,
      66);
  EXPECT_EQ(compileAndRun("int main() { int x = 5; x--; --x; return x; }")
                .ExitCode,
            3);
}

TEST(Interp, CompoundAssignment) {
  EXPECT_EQ(compileAndRun("int main() { int x = 10; x += 5; x -= 3;\n"
                          "  x *= 2; x /= 4; x %= 4; return x; }")
                .ExitCode,
            2);
  EXPECT_EQ(compileAndRun("int main() { int x = 1; x <<= 4; x >>= 1;\n"
                          "  x |= 3; x &= 14; x ^= 1; return x; }")
                .ExitCode,
            11);
}

TEST(Interp, RecursionFactorial) {
  RunResult R = compileAndRun(
      "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\n"
      "int main() { return fact(6); }");
  EXPECT_EQ(R.ExitCode, 720);
}

TEST(Interp, MutualRecursion) {
  RunResult R = compileAndRun(
      "int isOdd(int n);\n"
      "int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }\n"
      "int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }\n"
      "int main() { return isEven(10) * 10 + isOdd(7); }");
  EXPECT_EQ(R.ExitCode, 11);
}

TEST(Interp, PointersAndAddressOf) {
  EXPECT_EQ(compileAndRun("int main() { int x = 3; int *p = &x;\n"
                          "  *p = 7; return x; }")
                .ExitCode,
            7);
  EXPECT_EQ(compileAndRun(
                "void set(int *p, int v) { *p = v; }\n"
                "int main() { int x = 0; set(&x, 9); return x; }")
                .ExitCode,
            9);
}

TEST(Interp, PointerArithmeticWalksCells) {
  RunResult R = compileAndRun(
      "int main() { int a[5] = {10, 20, 30, 40, 50};\n"
      "  int *p = a; p++; p += 2;\n"
      "  return *p + *(p - 1); }");
  EXPECT_EQ(R.ExitCode, 70);
}

TEST(Interp, PointerDifference) {
  RunResult R = compileAndRun(
      "int main() { int a[8]; int *p = &a[6]; int *q = &a[2];\n"
      "  return p - q; }");
  EXPECT_EQ(R.ExitCode, 4);
}

TEST(Interp, ArraysAndStrings) {
  RunResult R = compileAndRun(
      "int len(char *s) { int n = 0; while (s[n]) n++; return n; }\n"
      "int main() { char buf[16] = \"hello\"; return len(buf); }");
  EXPECT_EQ(R.ExitCode, 5);
}

TEST(Interp, TwoDimensionalArrayIndexing) {
  RunResult R = compileAndRun(
      "int m[3][4];\n"
      "int main() { int i; int j;\n"
      "  for (i = 0; i < 3; i++)\n"
      "    for (j = 0; j < 4; j++)\n"
      "      m[i][j] = i * 10 + j;\n"
      "  return m[2][3]; }");
  EXPECT_EQ(R.ExitCode, 23);
}

TEST(Interp, StructsAndLinkedList) {
  RunResult R = compileAndRun(
      "struct node { int value; struct node *next; };\n"
      "int main() {\n"
      "  struct node *head = NULL; int i;\n"
      "  for (i = 1; i <= 4; i++) {\n"
      "    struct node *n = (struct node *)malloc(sizeof(struct node));\n"
      "    n->value = i; n->next = head; head = n;\n"
      "  }\n"
      "  int sum = 0;\n"
      "  while (head != NULL) { sum += head->value;\n"
      "    struct node *dead = head; head = head->next; free(dead); }\n"
      "  return sum; }");
  EXPECT_EQ(R.ExitCode, 10);
}

TEST(Interp, StructAssignmentCopies) {
  RunResult R = compileAndRun(
      "struct pair { int a; int b; };\n"
      "int main() { struct pair x; struct pair y;\n"
      "  x.a = 1; x.b = 2; y = x; x.a = 99;\n"
      "  return y.a * 10 + y.b; }");
  EXPECT_EQ(R.ExitCode, 12);
}

TEST(Interp, StructByValueParameter) {
  RunResult R = compileAndRun(
      "struct pair { int a; int b; };\n"
      "int sum(struct pair p) { p.a += 100; return p.a + p.b; }\n"
      "int main() { struct pair x; x.a = 3; x.b = 4;\n"
      "  int s = sum(x); return s * 100 + x.a; }");
  EXPECT_EQ(R.ExitCode, 10703);
}

TEST(Interp, FunctionPointerDispatch) {
  RunResult R = compileAndRun(
      "int add(int a, int b) { return a + b; }\n"
      "int mul(int a, int b) { return a * b; }\n"
      "int (*ops[2])(int, int) = { add, mul };\n"
      "int main() { return ops[0](3, 4) + ops[1](3, 4); }");
  EXPECT_EQ(R.ExitCode, 19);
}

TEST(Interp, GlobalInitializersRunInOrder) {
  RunResult R = compileAndRun(
      "int a = 5; int b = a * 2; int c[3] = {1, b, a + b};\n"
      "int main() { return c[0] + c[1] + c[2]; }");
  EXPECT_EQ(R.ExitCode, 1 + 10 + 15);
}

TEST(Interp, OutputBuiltins) {
  RunResult R = compileAndRun(
      "int main() { print_str(\"n=\"); print_int(42);\n"
      "  print_char('\\n'); print_double(1.5); return 0; }");
  EXPECT_EQ(R.Output, "n=42\n1.5");
}

TEST(Interp, InputBuiltins) {
  RunResult R = compileAndRun(
      "int main() { int a = read_int(); int b = read_int();\n"
      "  int c = read_char();\n"
      "  return a * 100 + b * 10 + (c == -1); }",
      "7 3");
  EXPECT_EQ(R.ExitCode, 731);
}

TEST(Interp, RandIsDeterministicPerSeed) {
  const char *Src = "int main() { srand(7); return rand() % 1000; }";
  RunResult A = compileAndRun(Src);
  RunResult B = compileAndRun(Src);
  EXPECT_EQ(A.ExitCode, B.ExitCode);
}

TEST(Interp, MathBuiltins) {
  RunResult R = compileAndRun(
      "int main() { double s = sqrt(16.0) + fabs(-2.5) + floor(3.9);\n"
      "  return (int)s; }");
  EXPECT_EQ(R.ExitCode, 9);
}

TEST(Interp, ExitStopsExecution) {
  RunResult R = compileAndRun(
      "int main() { print_int(1); exit(3); print_int(2); return 0; }");
  EXPECT_EQ(R.ExitCode, 3);
  EXPECT_EQ(R.Output, "1");
}

TEST(Interp, SwitchFallthroughSemantics) {
  const char *Src =
      "int f(int x) { int r = 0;\n"
      "  switch (x) {\n"
      "  case 1: r += 1;\n"
      "  case 2: r += 2; break;\n"
      "  case 3: r += 3; break;\n"
      "  default: r = 100;\n"
      "  }\n"
      "  return r; }\n";
  EXPECT_EQ(compileAndRun(std::string(Src) +
                          "int main() { return f(1); }")
                .ExitCode,
            3);
  EXPECT_EQ(compileAndRun(std::string(Src) +
                          "int main() { return f(2); }")
                .ExitCode,
            2);
  EXPECT_EQ(compileAndRun(std::string(Src) +
                          "int main() { return f(3); }")
                .ExitCode,
            3);
  EXPECT_EQ(compileAndRun(std::string(Src) +
                          "int main() { return f(9); }")
                .ExitCode,
            100);
}

TEST(Interp, GotoLoop) {
  RunResult R = compileAndRun("int main() { int n = 0;\n"
                              "top: n++; if (n < 5) goto top;\n"
                              "  return n; }");
  EXPECT_EQ(R.ExitCode, 5);
}

TEST(Interp, LocalDeclReinitializedEachIteration) {
  RunResult R = compileAndRun(
      "int main() { int s = 0; int i;\n"
      "  for (i = 0; i < 3; i++) { int acc = 1; acc += i; s += acc; }\n"
      "  return s; }");
  EXPECT_EQ(R.ExitCode, 1 + 2 + 3);
}

//===----------------------------------------------------------------------===//
// Runtime error detection
//===----------------------------------------------------------------------===//

RunResult runExpectError(const std::string &Source,
                         const std::string &Needle) {
  auto C = compile(Source);
  if (!C)
    return {};
  ProgramInput In;
  RunResult R = runProgram(C->unit(), *C->Cfgs, In);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find(Needle), std::string::npos) << R.Error;
  return R;
}

TEST(InterpErrors, NullDereference) {
  runExpectError("int main() { int *p = NULL; return *p; }", "null");
}

TEST(InterpErrors, OutOfBoundsArrayAccess) {
  runExpectError("int main() { int a[3]; return a[100]; }",
                 "out of bounds");
}

TEST(InterpErrors, UseAfterFree) {
  runExpectError("int main() { int *p = (int *)malloc(4); free(p);\n"
                 "  return *p; }",
                 "use-after-free");
}

TEST(InterpErrors, DoubleFree) {
  runExpectError("int main() { int *p = (int *)malloc(4); free(p);\n"
                 "  free(p); return 0; }",
                 "double free");
}

TEST(InterpErrors, DivisionByZero) {
  runExpectError("int main() { int z = 0; return 4 / z; }",
                 "division by zero");
}

TEST(InterpErrors, AbortReportsError) {
  runExpectError("int main() { abort(); return 0; }", "abort");
}

TEST(InterpErrors, InfiniteLoopHitsStepLimit) {
  auto C = compile("int main() { for (;;) {} return 0; }");
  ASSERT_TRUE(C);
  ProgramInput In;
  InterpOptions Opts;
  Opts.MaxSteps = 10000;
  RunResult R = runProgram(C->unit(), *C->Cfgs, In, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST(InterpErrors, RunawayRecursionHitsDepthLimit) {
  auto C = compile("int f(int n) { return f(n + 1); }\n"
                   "int main() { return f(0); }");
  ASSERT_TRUE(C);
  ProgramInput In;
  RunResult R = runProgram(C->unit(), *C->Cfgs, In);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("depth"), std::string::npos) << R.Error;
}

//===----------------------------------------------------------------------===//
// Profile collection
//===----------------------------------------------------------------------===//

TEST(InterpProfile, BlockCountsForCountedLoop) {
  auto C = compile("int main() { int s = 0; int i;\n"
                   "  for (i = 0; i < 10; i++) s += i;\n"
                   "  return s; }");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  EXPECT_EQ(R.ExitCode, 45);
  const FunctionDecl *Main = C->fn("main");
  const FunctionProfile &FP =
      R.TheProfile.Functions[Main->functionId()];
  EXPECT_EQ(FP.EntryCount, 1.0);
  // The loop body runs 10 times; the test 11 times.
  const Cfg *G = C->cfg("main");
  bool SawBody = false, SawCond = false;
  for (const auto &B : G->blocks()) {
    if (B->label().find("for.body") == 0) {
      EXPECT_EQ(FP.BlockCounts[B->id()], 10.0);
      SawBody = true;
    }
    if (B->label().find("for.cond") == 0) {
      EXPECT_EQ(FP.BlockCounts[B->id()], 11.0);
      SawCond = true;
    }
  }
  EXPECT_TRUE(SawBody);
  EXPECT_TRUE(SawCond) << printCfg(*G);
}

TEST(InterpProfile, ArcCountsSumToBlockCounts) {
  auto C = compile("int main() { int s = 0; int i;\n"
                   "  for (i = 0; i < 7; i++)\n"
                   "    if (i % 2 == 0) s += i; else s -= i;\n"
                   "  return s; }");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  const FunctionDecl *Main = C->fn("main");
  const FunctionProfile &FP = R.TheProfile.Functions[Main->functionId()];
  const Cfg *G = C->cfg("main");
  // Flow conservation: block count == sum of outgoing arc counts for every
  // block with successors.
  for (const auto &B : G->blocks()) {
    if (B->successors().empty())
      continue;
    double Out = 0;
    for (double A : FP.ArcCounts[B->id()])
      Out += A;
    EXPECT_EQ(Out, FP.BlockCounts[B->id()]) << B->label();
  }
}

TEST(InterpProfile, CallSiteCountsRecorded) {
  auto C = compile("int f(int x) { return x; }\n"
                   "int main() { int s = 0; int i;\n"
                   "  for (i = 0; i < 5; i++) s += f(i);\n"
                   "  s += f(100);\n"
                   "  return s; }");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  ASSERT_EQ(R.TheProfile.CallSiteCounts.size(), 2u);
  // Sites are numbered in sema (checking) order: loop site first.
  EXPECT_EQ(R.TheProfile.CallSiteCounts[0], 5.0);
  EXPECT_EQ(R.TheProfile.CallSiteCounts[1], 1.0);
  EXPECT_EQ(R.TheProfile.Functions[C->fn("f")->functionId()].EntryCount,
            6.0);
}

TEST(InterpProfile, IndirectCallsCounted) {
  auto C = compile("int f() { return 1; }\n"
                   "int main() { int (*p)() = f; return p() + p(); }");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  EXPECT_EQ(R.TheProfile.Functions[C->fn("f")->functionId()].EntryCount,
            2.0);
}

TEST(InterpProfile, CyclesAccumulate) {
  auto C = compile("int main() { int s = 0; int i;\n"
                   "  for (i = 0; i < 100; i++) s += i;\n"
                   "  return s; }");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  EXPECT_GT(R.TheProfile.TotalCycles, 100.0);
}

TEST(InterpProfile, OptimizedFunctionsCostLess) {
  auto C = compile("int work() { int s = 0; int i;\n"
                   "  for (i = 0; i < 1000; i++) s += i;\n"
                   "  return s; }\n"
                   "int main() { return work() != 0; }");
  ASSERT_TRUE(C);
  ProgramInput In;
  InterpOptions Plain;
  RunResult A = runProgram(C->unit(), *C->Cfgs, In, Plain);
  InterpOptions Opt;
  Opt.OptimizedFunctions.insert(C->fn("work"));
  RunResult B = runProgram(C->unit(), *C->Cfgs, In, Opt);
  ASSERT_TRUE(A.Ok);
  ASSERT_TRUE(B.Ok);
  EXPECT_LT(B.TheProfile.TotalCycles, A.TheProfile.TotalCycles * 0.7);
  EXPECT_EQ(A.ExitCode, B.ExitCode);
}

//===----------------------------------------------------------------------===//
// The paper's strchr example (Figure 1 / Table 2 actual counts)
//===----------------------------------------------------------------------===//

TEST(InterpProfile, StrchrPaperCounts) {
  auto C = compile(R"(
char *strchr(char *str, int c) {
  while (*str) {
    if (*str == c)
      return str;
    str++;
  }
  return NULL;
}
int main() {
  char s[4] = "abc";
  strchr(s, 'a');
  strchr(s, 'b');
  return 0;
}
)");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  const FunctionDecl *F = C->fn("strchr");
  const Cfg *G = C->cfg("strchr");
  const FunctionProfile &FP = R.TheProfile.Functions[F->functionId()];

  // Paper Table 2 actual counts: while=3, if=3, return1=2, incr=1,
  // return2=0 — generated by searching "abc" for 'a' and for 'b'.
  std::map<std::string, double> Expected = {
      {"while.cond", 3}, {"while.body", 3}, {"if.then", 2},
      {"if.end", 1},     {"while.end", 0}};
  ASSERT_EQ(G->size(), 5u) << printCfg(*G);
  for (const auto &B : G->blocks()) {
    auto It = Expected.find(B->label());
    ASSERT_NE(It, Expected.end()) << "unexpected block " << B->label();
    EXPECT_EQ(FP.BlockCounts[B->id()], It->second) << B->label();
  }
  EXPECT_EQ(FP.EntryCount, 2.0);
}

} // namespace

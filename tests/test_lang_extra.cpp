//===- tests/test_lang_extra.cpp - Frontend/interpreter edge cases ---------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace sest;
using namespace sest::test;

namespace {

//===----------------------------------------------------------------------===//
// Declarator corner cases
//===----------------------------------------------------------------------===//

TEST(Declarators, FunctionReturningFunctionPointer) {
  RunResult R = compileAndRun(
      "int one() { return 1; }\n"
      "int two() { return 2; }\n"
      "int (*choose(int x))() { if (x) return one; return two; }\n"
      "int main() { return choose(1)() * 10 + choose(0)(); }");
  EXPECT_EQ(R.ExitCode, 12);
}

TEST(Declarators, PointerToPointer) {
  RunResult R = compileAndRun(
      "int main() { int x = 7; int *p = &x; int **pp = &p;\n"
      "  **pp = 9; return x; }");
  EXPECT_EQ(R.ExitCode, 9);
}

TEST(Declarators, ArrayOfPointers) {
  RunResult R = compileAndRun(
      "int main() { int a = 1; int b = 2; int c = 3;\n"
      "  int *ptrs[3]; ptrs[0] = &a; ptrs[1] = &b; ptrs[2] = &c;\n"
      "  *ptrs[1] = 20;\n"
      "  return *ptrs[0] + b + *ptrs[2]; }");
  EXPECT_EQ(R.ExitCode, 24);
}

TEST(Declarators, FunctionPointerParameter) {
  RunResult R = compileAndRun(
      "int twice(int (*f)(int), int x) { return f(f(x)); }\n"
      "int inc(int x) { return x + 1; }\n"
      "int main() { return twice(inc, 5); }");
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(Declarators, ArrayParameterDecays) {
  RunResult R = compileAndRun(
      "int sum(int a[4]) { return a[0] + a[1] + a[2] + a[3]; }\n"
      "int main() { int v[4] = {1, 2, 3, 4}; return sum(v); }");
  EXPECT_EQ(R.ExitCode, 10);
}

TEST(Declarators, DanglingElseBindsToInner) {
  RunResult R = compileAndRun(
      "int f(int a, int b) {\n"
      "  if (a)\n"
      "    if (b) return 1;\n"
      "    else return 2;\n" // binds to the inner if
      "  return 3; }\n"
      "int main() { return f(1, 0) * 100 + f(0, 0) * 10 + f(1, 1); }");
  EXPECT_EQ(R.ExitCode, 231);
}

//===----------------------------------------------------------------------===//
// Structs
//===----------------------------------------------------------------------===//

TEST(Structs, NestedMembers) {
  RunResult R = compileAndRun(
      "struct inner { int a; int b; };\n"
      "struct outer { int x; struct inner in; int y; };\n"
      "int main() { struct outer o;\n"
      "  o.x = 1; o.in.a = 2; o.in.b = 3; o.y = 4;\n"
      "  return o.x * 1000 + o.in.a * 100 + o.in.b * 10 + o.y; }");
  EXPECT_EQ(R.ExitCode, 1234);
}

TEST(Structs, ArrayFieldInsideStruct) {
  RunResult R = compileAndRun(
      "struct vec { int len; int data[4]; };\n"
      "int main() { struct vec v; v.len = 3; int i;\n"
      "  for (i = 0; i < v.len; i++) v.data[i] = i * i;\n"
      "  return v.data[0] + v.data[1] + v.data[2]; }");
  EXPECT_EQ(R.ExitCode, 5);
}

TEST(Structs, PointerToField) {
  RunResult R = compileAndRun(
      "struct pair { int a; int b; };\n"
      "int main() { struct pair p; p.a = 1; p.b = 2;\n"
      "  int *q = &p.b; *q = 42;\n"
      "  return p.b; }");
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Structs, FunctionPointerField) {
  RunResult R = compileAndRun(
      "int add(int a, int b) { return a + b; }\n"
      "int mul(int a, int b) { return a * b; }\n"
      "struct op { int code; int (*fn)(int, int); };\n"
      "int main() { struct op ops[2];\n"
      "  ops[0].code = 1; ops[0].fn = add;\n"
      "  ops[1].code = 2; ops[1].fn = mul;\n"
      "  return ops[0].fn(3, 4) + ops[1].fn(3, 4); }");
  EXPECT_EQ(R.ExitCode, 19);
}

TEST(Structs, ArrayOfStructsWithArrowChains) {
  RunResult R = compileAndRun(
      "struct node { int v; struct node *next; };\n"
      "int main() { struct node n[3];\n"
      "  n[0].v = 1; n[1].v = 2; n[2].v = 3;\n"
      "  n[0].next = &n[1]; n[1].next = &n[2]; n[2].next = NULL;\n"
      "  return n[0].next->next->v; }");
  EXPECT_EQ(R.ExitCode, 3);
}

TEST(Structs, StructCopyThroughPointerDeref) {
  RunResult R = compileAndRun(
      "struct pair { int a; int b; };\n"
      "int main() { struct pair x; struct pair y; struct pair *p = &x;\n"
      "  x.a = 5; x.b = 6;\n"
      "  y = *p; x.a = 0;\n"
      "  return y.a * 10 + y.b; }");
  EXPECT_EQ(R.ExitCode, 56);
}

//===----------------------------------------------------------------------===//
// Arithmetic and conversions
//===----------------------------------------------------------------------===//

TEST(Arithmetic, NegativeDivisionTruncatesTowardZero) {
  EXPECT_EQ(compileAndRun("int main() { return -7 / 2; }").ExitCode, -3);
  EXPECT_EQ(compileAndRun("int main() { return -7 % 2; }").ExitCode, -1);
  EXPECT_EQ(compileAndRun("int main() { return 7 / -2; }").ExitCode, -3);
}

TEST(Arithmetic, MixedIntDoublePromotes) {
  EXPECT_EQ(
      compileAndRun("int main() { return (int)(1 / 4.0 * 100.0); }")
          .ExitCode,
      25);
  EXPECT_EQ(compileAndRun("int main() { double d = 3; int i = 2;\n"
                          "  return (int)(d / i * 10.0); }")
                .ExitCode,
            15);
}

TEST(Arithmetic, CharsAreSmallIntegers) {
  EXPECT_EQ(compileAndRun("int main() { char c = 'A'; c = c + 2;\n"
                          "  return c; }")
                .ExitCode,
            'C');
  EXPECT_EQ(compileAndRun("int main() { return 'z' - 'a'; }").ExitCode,
            25);
}

TEST(Arithmetic, TernaryChoosesLazily) {
  RunResult R = compileAndRun(
      "int g = 0;\n"
      "int bump() { g += 1; return g; }\n"
      "int main() { int v = 1 ? 5 : bump(); return v * 10 + g; }");
  EXPECT_EQ(R.ExitCode, 50);
}

TEST(Arithmetic, DeeplyNestedExpression) {
  EXPECT_EQ(
      compileAndRun(
          "int main() { return ((((1 + 2) * (3 + 4)) - ((5 - 6) *\n"
          "  (7 + 8))) << 1) / 2; }")
          .ExitCode,
      36);
}

//===----------------------------------------------------------------------===//
// Control flow corners
//===----------------------------------------------------------------------===//

TEST(ControlFlow, SwitchOnCharWithCaseExpressions) {
  RunResult R = compileAndRun(
      "int classify(int c) {\n"
      "  switch (c) {\n"
      "  case 'a': case 'e': case 'i': case 'o': case 'u': return 1;\n"
      "  case '0' + 5: return 2;\n"
      "  default: return 0;\n"
      "  } }\n"
      "int main() { return classify('e') * 100 + classify('5') * 10 +\n"
      "  classify('x'); }");
  EXPECT_EQ(R.ExitCode, 120);
}

TEST(ControlFlow, NestedSwitchInLoop) {
  RunResult R = compileAndRun(
      "int main() { int s = 0; int i;\n"
      "  for (i = 0; i < 6; i++) {\n"
      "    switch (i % 3) {\n"
      "    case 0: s += 1; break;\n"
      "    case 1: s += 10; break;\n"
      "    default: s += 100;\n"
      "    }\n"
      "  }\n"
      "  return s; }");
  EXPECT_EQ(R.ExitCode, 222);
}

TEST(ControlFlow, BreakInsideSwitchInsideLoopExitsSwitchOnly) {
  RunResult R = compileAndRun(
      "int main() { int s = 0; int i;\n"
      "  for (i = 0; i < 3; i++) {\n"
      "    switch (i) { case 0: break; default: s += i; }\n"
      "    s += 100;\n"
      "  }\n"
      "  return s; }");
  EXPECT_EQ(R.ExitCode, 303);
}

TEST(ControlFlow, GotoForwardSkipsCode) {
  RunResult R = compileAndRun(
      "int main() { int s = 1;\n"
      "  goto skip;\n"
      "  s = 100;\n"
      "skip:\n"
      "  s += 2;\n"
      "  return s; }");
  EXPECT_EQ(R.ExitCode, 3);
}

TEST(ControlFlow, DoWhileRunsBodyAtLeastOnce) {
  RunResult R = compileAndRun(
      "int main() { int n = 0;\n"
      "  do n++; while (0);\n"
      "  return n; }");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(ControlFlow, CommaOperatorIsRejected) {
  // No comma operator in mini-C: this must fail to compile.
  std::string E = compileExpectError(
      "int main() { int s = 0; int i;\n"
      "  for (i = 0; i < 5; s += i, i++) ;\n"
      "  return s; }");
  EXPECT_FALSE(E.empty());
}

TEST(ControlFlow, WhileWithComplexCondition) {
  RunResult R = compileAndRun(
      "int main() { int a = 0; int b = 10;\n"
      "  while (a < 5 && b > 5) { a++; b--; }\n"
      "  return a * 10 + b; }");
  EXPECT_EQ(R.ExitCode, 55);
}

//===----------------------------------------------------------------------===//
// More sema rejections
//===----------------------------------------------------------------------===//

TEST(SemaExtra, StructReturnRejected) {
  std::string E = compileExpectError(
      "struct p { int a; };\n"
      "struct p make() { struct p v; v.a = 1; return v; }\n"
      "int main() { return 0; }");
  EXPECT_NE(E.find("struct"), std::string::npos) << E;
}

TEST(SemaExtra, IndirectCallArityChecked) {
  std::string E = compileExpectError(
      "int f(int x) { return x; }\n"
      "int main() { int (*p)(int) = f; return p(1, 2); }");
  EXPECT_NE(E.find("argument"), std::string::npos) << E;
}

TEST(SemaExtra, VoidValueUseRejected) {
  std::string E = compileExpectError(
      "void f() {}\n"
      "int main() { return f() + 1; }");
  EXPECT_FALSE(E.empty());
}

TEST(SemaExtra, IncompatiblePointerComparisonRejected) {
  std::string E = compileExpectError(
      "int main() { int x; double d; int *p = &x; double *q = &d;\n"
      "  return p == q; }");
  EXPECT_NE(E.find("incompatible"), std::string::npos) << E;
}

TEST(SemaExtra, ArrayAssignmentRejected) {
  std::string E = compileExpectError(
      "int main() { int a[3]; int b[3]; a = b; return 0; }");
  EXPECT_NE(E.find("cannot assign"), std::string::npos) << E;
}

TEST(SemaExtra, CaseOutsideSwitchRejected) {
  std::string E =
      compileExpectError("int main() { case 1: return 0; }");
  EXPECT_NE(E.find("case"), std::string::npos) << E;
}

TEST(SemaExtra, CallingNonFunctionRejected) {
  std::string E =
      compileExpectError("int main() { int x = 3; return x(); }");
  EXPECT_NE(E.find("non-function"), std::string::npos) << E;
}

TEST(SemaExtra, DerefOfIntRejected) {
  std::string E =
      compileExpectError("int main() { int x = 3; return *x; }");
  EXPECT_NE(E.find("dereference"), std::string::npos) << E;
}

TEST(SemaExtra, SwitchOnDoubleRejected) {
  std::string E = compileExpectError(
      "int main() { double d = 1.0; switch (d) { default: return 0; }\n"
      "  return 1; }");
  EXPECT_NE(E.find("switch"), std::string::npos) << E;
}

TEST(SemaExtra, VoidTypedParameterRejected) {
  std::string E = compileExpectError(
      "int f(void x) { return 0; }\n"
      "int main() { return 0; }");
  EXPECT_NE(E.find("invalid type"), std::string::npos) << E;
}

TEST(SemaExtra, VoidParameterListAccepted) {
  auto C = compile("int f(void) { return 4; }\n"
                   "int main() { return f(); }");
  ASSERT_TRUE(C);
  EXPECT_EQ(run(*C).ExitCode, 4);
}

//===----------------------------------------------------------------------===//
// String handling
//===----------------------------------------------------------------------===//

TEST(Strings, LiteralsAreNulTerminatedGlobals) {
  RunResult R = compileAndRun(
      "int len(char *s) { int n = 0; while (s[n]) n++; return n; }\n"
      "int main() { char *msg = \"hello world\"; return len(msg); }");
  EXPECT_EQ(R.ExitCode, 11);
}

TEST(Strings, EscapesInLiterals) {
  RunResult R = compileAndRun(
      "int main() { char *s = \"a\\nb\\tc\";\n"
      "  return (s[1] == '\\n') * 10 + (s[3] == '\\t'); }");
  EXPECT_EQ(R.ExitCode, 11);
}

TEST(Strings, CharArrayInitPadsWithZeros) {
  RunResult R = compileAndRun(
      "int main() { char buf[8] = \"ab\";\n"
      "  return (buf[2] == 0) * 10 + (buf[7] == 0); }");
  EXPECT_EQ(R.ExitCode, 11);
}

TEST(Strings, StrcpyPattern) {
  RunResult R = compileAndRun(
      "void copy(char *dst, char *src) {\n"
      "  while ((*dst = *src) != 0) { dst++; src++; } }\n"
      "int main() { char a[8]; copy(a, \"xyz\");\n"
      "  return a[0] * 10000 + a[2] + (a[3] == 0); }");
  EXPECT_EQ(R.ExitCode, 'x' * 10000 + 'z' + 1);
}

} // namespace

//===- tests/test_lexer.cpp - Lexer unit tests -----------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace sest;

namespace {

std::vector<Token> lex(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kindsOf(const std::string &Source) {
  std::vector<TokenKind> Out;
  for (const Token &T : lex(Source))
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::EndOfFile);
}

TEST(Lexer, Identifiers) {
  auto Tokens = lex("foo _bar baz42");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "baz42");
}

TEST(Lexer, Keywords) {
  auto Kinds = kindsOf("int char double void struct if else while for do "
                       "switch case default break continue return goto "
                       "sizeof NULL");
  std::vector<TokenKind> Expected = {
      TokenKind::KwInt,      TokenKind::KwChar,    TokenKind::KwDouble,
      TokenKind::KwVoid,     TokenKind::KwStruct,  TokenKind::KwIf,
      TokenKind::KwElse,     TokenKind::KwWhile,   TokenKind::KwFor,
      TokenKind::KwDo,       TokenKind::KwSwitch,  TokenKind::KwCase,
      TokenKind::KwDefault,  TokenKind::KwBreak,   TokenKind::KwContinue,
      TokenKind::KwReturn,   TokenKind::KwGoto,    TokenKind::KwSizeof,
      TokenKind::KwNull,     TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, IntegerLiterals) {
  auto Tokens = lex("0 42 0x1F 1000000");
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 31);
  EXPECT_EQ(Tokens[3].IntValue, 1000000);
}

TEST(Lexer, DoubleLiterals) {
  auto Tokens = lex("3.5 0.25 1e3 2.5e-2");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::DoubleLiteral);
  EXPECT_DOUBLE_EQ(Tokens[0].DoubleValue, 3.5);
  EXPECT_DOUBLE_EQ(Tokens[1].DoubleValue, 0.25);
  EXPECT_DOUBLE_EQ(Tokens[2].DoubleValue, 1000.0);
  EXPECT_DOUBLE_EQ(Tokens[3].DoubleValue, 0.025);
}

TEST(Lexer, IntThenDotIsNotADouble) {
  // "1." without a following digit stays an int followed by '.'.
  auto Kinds = kindsOf("x.y");
  std::vector<TokenKind> Expected = {TokenKind::Identifier, TokenKind::Dot,
                                     TokenKind::Identifier,
                                     TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, CharLiterals) {
  auto Tokens = lex("'a' '\\n' '\\0' '\\\\'");
  EXPECT_EQ(Tokens[0].IntValue, 'a');
  EXPECT_EQ(Tokens[1].IntValue, '\n');
  EXPECT_EQ(Tokens[2].IntValue, 0);
  EXPECT_EQ(Tokens[3].IntValue, '\\');
}

TEST(Lexer, StringLiterals) {
  auto Tokens = lex("\"hello\\nworld\"");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "hello\nworld");
}

TEST(Lexer, MultiCharOperators) {
  auto Kinds = kindsOf("<< >> <= >= == != && || ++ -- -> += -= *= /= %= "
                       "&= |= ^= <<= >>=");
  std::vector<TokenKind> Expected = {
      TokenKind::LessLess,      TokenKind::GreaterGreater,
      TokenKind::LessEqual,     TokenKind::GreaterEqual,
      TokenKind::EqualEqual,    TokenKind::BangEqual,
      TokenKind::AmpAmp,        TokenKind::PipePipe,
      TokenKind::PlusPlus,      TokenKind::MinusMinus,
      TokenKind::Arrow,         TokenKind::PlusEqual,
      TokenKind::MinusEqual,    TokenKind::StarEqual,
      TokenKind::SlashEqual,    TokenKind::PercentEqual,
      TokenKind::AmpEqual,      TokenKind::PipeEqual,
      TokenKind::CaretEqual,    TokenKind::LessLessEqual,
      TokenKind::GreaterGreaterEqual, TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, CommentsAreSkipped) {
  auto Kinds = kindsOf("a // line comment\nb /* block\ncomment */ c");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Identifier, TokenKind::Identifier,
      TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, SourceLocations) {
  auto Tokens = lex("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(Lexer, UnterminatedStringIsDiagnosed) {
  DiagnosticEngine Diags;
  Lexer L("\"abc", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnterminatedBlockCommentIsDiagnosed) {
  DiagnosticEngine Diags;
  Lexer L("/* never closed", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnknownCharacterIsDiagnosed) {
  DiagnosticEngine Diags;
  Lexer L("a @ b", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace

//===- tests/test_metrics.cpp - Metric unit tests --------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "callgraph/CallGraph.h"
#include "estimators/Pipeline.h"
#include "metrics/BranchMiss.h"
#include "metrics/Evaluation.h"
#include "metrics/WeightMatching.h"
#include "profile/Profile.h"

#include <gtest/gtest.h>

using namespace sest;
using namespace sest::test;

namespace {

//===----------------------------------------------------------------------===//
// Weight matching (paper §3, Table 2)
//===----------------------------------------------------------------------===//

TEST(WeightMatching, PaperTable2Strchr) {
  // Estimated: while 5, if 4, return1 0.8, incr 3.2, return2 1.
  // Actual:    while 3, if 3, return1 2, incr 1, return2 0.
  std::vector<double> Est = {5, 4, 0.8, 3.2, 1};
  std::vector<double> Act = {3, 3, 2, 1, 0};
  // 20% of 5 = 1 block: both pick "while" -> 100%.
  EXPECT_NEAR(weightMatchingScore(Est, Act, 0.20), 1.0, 1e-9);
  // 60% of 5 = 3 blocks: estimate picks while,if,incr (3+3+1=7); actual
  // picks while,if,return1 (3+3+2=8) -> 7/8 = 88%.
  EXPECT_NEAR(weightMatchingScore(Est, Act, 0.60), 7.0 / 8.0, 1e-9);
}

TEST(WeightMatching, PerfectEstimateScoresOne) {
  std::vector<double> Act = {5, 1, 9, 3, 7};
  for (double Cutoff : {0.1, 0.25, 0.5, 0.75, 1.0})
    EXPECT_NEAR(weightMatchingScore(Act, Act, Cutoff), 1.0, 1e-12)
        << Cutoff;
}

TEST(WeightMatching, FractionalRounding) {
  // 4 items at 30% -> 1.2 items: top item + 0.2 * second.
  std::vector<double> Act = {10, 8, 2, 1};
  std::vector<double> Est = {1, 2, 3, 4}; // reversed ranking
  // Estimate picks 1 (value 1) + 0.2 * item of est-rank 2 (value 2).
  double Num = 1 + 0.2 * 2;
  double Den = 10 + 0.2 * 8;
  EXPECT_NEAR(weightMatchingScore(Est, Act, 0.30), Num / Den, 1e-9);
}

TEST(WeightMatching, TiesAtCutoffDoNotPenalize) {
  // Two items tied in actual weight; estimate picks "the other one".
  std::vector<double> Act = {5, 5, 1, 0};
  std::vector<double> EstA = {9, 0, 0, 0};
  std::vector<double> EstB = {0, 9, 0, 0};
  EXPECT_NEAR(weightMatchingScore(EstA, Act, 0.25), 1.0, 1e-9);
  EXPECT_NEAR(weightMatchingScore(EstB, Act, 0.25), 1.0, 1e-9);
}

TEST(WeightMatching, OmittedItemsExcluded) {
  std::vector<double> Est = {-1, 4, 2, -1};
  std::vector<double> Act = {100, 4, 2, 100};
  // The -1 items drop out entirely: remaining estimate ranks match.
  EXPECT_NEAR(weightMatchingScore(Est, Act, 0.5), 1.0, 1e-9);
}

TEST(WeightMatching, DegenerateCases) {
  EXPECT_NEAR(weightMatchingScore({}, {}, 0.25), 1.0, 1e-12);
  EXPECT_NEAR(weightMatchingScore({1, 2}, {0, 0}, 0.5), 1.0, 1e-12);
  EXPECT_NEAR(weightMatchingScore({1, 2}, {3, 4}, 0.0), 1.0, 1e-12);
}

TEST(WeightMatching, WorstCaseScoresLow) {
  std::vector<double> Act = {100, 0, 0, 0};
  std::vector<double> Est = {0, 9, 8, 7};
  EXPECT_NEAR(weightMatchingScore(Est, Act, 0.25), 0.0, 1e-9);
}

TEST(WeightMatching, QuantileWeightHelper) {
  std::vector<double> Keys = {3, 1, 2};
  std::vector<double> Vals = {30, 10, 20};
  EXPECT_NEAR(quantileWeight(Keys, Vals, 1.0 / 3.0), 30.0, 1e-9);
  EXPECT_NEAR(quantileWeight(Keys, Vals, 2.0 / 3.0), 50.0, 1e-9);
  EXPECT_NEAR(quantileWeight(Keys, Vals, 0.5), 30.0 + 0.5 * 20.0, 1e-9);
}

//===----------------------------------------------------------------------===//
// Profile aggregation (paper §3)
//===----------------------------------------------------------------------===//

Profile makeProfile(double Scale) {
  Profile P;
  P.Functions.resize(1);
  P.Functions[0].BlockCounts = {10 * Scale, 5 * Scale, 1 * Scale};
  P.Functions[0].ArcCounts = {{8 * Scale}, {5 * Scale}, {}};
  P.Functions[0].EntryCount = Scale;
  P.CallSiteCounts = {2 * Scale};
  P.TotalCycles = 100 * Scale;
  return P;
}

TEST(ProfileAggregation, NormalizesToCommonTotal) {
  // Two profiles with the same shape but different magnitudes aggregate
  // to proportional counts.
  std::vector<Profile> Profiles = {makeProfile(1.0), makeProfile(10.0)};
  Profile Agg = aggregateProfiles(Profiles);
  // Each contributes equally after normalization: ratios preserved.
  const auto &B = Agg.Functions[0].BlockCounts;
  EXPECT_NEAR(B[0] / B[1], 2.0, 1e-9);
  EXPECT_NEAR(B[1] / B[2], 5.0, 1e-9);
  // Total equals 2 * mean total (each scaled profile sums to the mean).
  double MeanTotal = (16.0 + 160.0) / 2.0;
  EXPECT_NEAR(Agg.totalBlockCount(), 2 * MeanTotal, 1e-6);
}

TEST(ProfileAggregation, LeaveOneOut) {
  std::vector<Profile> Profiles = {makeProfile(1), makeProfile(2),
                                   makeProfile(3)};
  Profile Agg = aggregateExcept(Profiles, 1);
  // Aggregate of #0 and #2 only; shape preserved.
  EXPECT_TRUE(Agg.shapeMatches(Profiles[0]));
}

TEST(ProfileSerialization, RoundTrips) {
  Profile P = makeProfile(3.5);
  P.ProgramName = "demo";
  P.InputName = "input1";
  std::string Text = writeProfileText(P);
  Profile Q;
  ASSERT_TRUE(readProfileText(Text, Q));
  EXPECT_EQ(Q.ProgramName, "demo");
  EXPECT_TRUE(P.shapeMatches(Q));
  EXPECT_NEAR(Q.Functions[0].BlockCounts[0], 35.0, 1e-6);
  EXPECT_NEAR(Q.TotalCycles, 350.0, 1e-3);
}

TEST(ProfileSerialization, RejectsGarbage) {
  Profile Q;
  EXPECT_FALSE(readProfileText("not a profile", Q));
  EXPECT_FALSE(readProfileText("", Q));
}

//===----------------------------------------------------------------------===//
// Branch miss rates (Fig. 2)
//===----------------------------------------------------------------------===//

struct MissFixture {
  std::unique_ptr<Compiled> C;
  std::vector<FunctionBranchPredictions> Preds;
  Profile Prof;

  MissFixture(const std::string &Source, const std::string &Input = "") {
    C = compile(Source);
    if (!C)
      return;
    BranchPredictor BP;
    Preds = predictAllFunctions(C->unit(), *C->Cfgs, BP);
    ProgramInput In;
    In.Text = Input;
    RunResult R = runProgram(C->unit(), *C->Cfgs, In);
    EXPECT_TRUE(R.Ok) << R.Error;
    Prof = std::move(R.TheProfile);
  }
};

TEST(BranchMiss, LoopHeavyCodePredictsWell) {
  MissFixture F("int main() { int s = 0; int i;\n"
                "  for (i = 0; i < 100; i++) s += i;\n"
                "  return s != 4950; }");
  ASSERT_TRUE(F.C);
  BranchMissCounts M = branchMissRate(*F.C->Cfgs, F.Preds, F.Prof,
                                      BranchOracle::Static);
  // 101 executions, 1 miss (the final exit).
  EXPECT_NEAR(M.Executed, 101.0, 1e-9);
  EXPECT_NEAR(M.Misses, 1.0, 1e-9);
}

TEST(BranchMiss, PerfectOracleIsLowerBound) {
  MissFixture F("int main() { int s = 0; int i;\n"
                "  for (i = 0; i < 50; i++)\n"
                "    if (i % 3 == 0) s += i; else s -= i;\n"
                "  return s < 0; }");
  ASSERT_TRUE(F.C);
  BranchMissCounts Static = branchMissRate(*F.C->Cfgs, F.Preds, F.Prof,
                                           BranchOracle::Static);
  BranchMissCounts Perfect = branchMissRate(*F.C->Cfgs, F.Preds, F.Prof,
                                            BranchOracle::Perfect);
  EXPECT_LE(Perfect.rate(), Static.rate());
  EXPECT_EQ(Perfect.Executed, Static.Executed);
}

TEST(BranchMiss, ConstantBranchesExcluded) {
  MissFixture F("int main() { int s = 0;\n"
                "  if (1 < 2) s = 1;\n"  // constant: excluded
                "  if (s == 5) s = 2;\n" // real branch
                "  return s; }");
  ASSERT_TRUE(F.C);
  BranchMissCounts M = branchMissRate(*F.C->Cfgs, F.Preds, F.Prof,
                                      BranchOracle::Static);
  EXPECT_NEAR(M.Executed, 1.0, 1e-9);
}

TEST(BranchMiss, SwitchesNotCounted) {
  MissFixture F("int main() { int s = 0; int i;\n"
                "  for (i = 0; i < 9; i++)\n"
                "    switch (i % 3) { case 0: s++; break; default: s--; }\n"
                "  return s + 3; }");
  ASSERT_TRUE(F.C);
  BranchMissCounts M = branchMissRate(*F.C->Cfgs, F.Preds, F.Prof,
                                      BranchOracle::Static);
  // Only the for-loop branch counts: 10 executions.
  EXPECT_NEAR(M.Executed, 10.0, 1e-9);
}

TEST(BranchMiss, TrainingOracleUsesOtherProfile) {
  const char *Source = "int main() { int n = read_int(); int s = 0;\n"
                       "  int i;\n"
                       "  for (i = 0; i < 20; i++)\n"
                       "    if (i < n) s++; else s--;\n"
                       "  return s + 20; }";
  auto C = compile(Source);
  ASSERT_TRUE(C);
  BranchPredictor BP;
  auto Preds = predictAllFunctions(C->unit(), *C->Cfgs, BP);
  ProgramInput InA;
  InA.Text = "18"; // "i < n" mostly true
  ProgramInput InB;
  InB.Text = "2"; // "i < n" mostly false
  Profile A = runProgram(C->unit(), *C->Cfgs, InA).TheProfile;
  Profile B = runProgram(C->unit(), *C->Cfgs, InB).TheProfile;

  // Trained on A, scored on B: the if-branch flips -> many misses.
  BranchMissCounts Cross = branchMissRate(*C->Cfgs, Preds, B,
                                          BranchOracle::Training, &A);
  BranchMissCounts Self = branchMissRate(*C->Cfgs, Preds, B,
                                         BranchOracle::Perfect);
  EXPECT_GT(Cross.Misses, Self.Misses);
}

//===----------------------------------------------------------------------===//
// Evaluation drivers
//===----------------------------------------------------------------------===//

TEST(Evaluation, IntraScoreWeightsByInvocation) {
  auto C = compile(
      "int hot(int n) { int s = 0; int i;\n"
      "  for (i = 0; i < n; i++) s += i;\n"
      "  return s; }\n"
      "int cold(int n) { if (n > 0) return 1; return 0; }\n"
      "int main() { int i; int s = 0;\n"
      "  for (i = 0; i < 10; i++) s += hot(6);\n"
      "  s += cold(3);\n"
      "  return s != 0; }");
  ASSERT_TRUE(C);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  EstimatorOptions Options;
  ProgramEstimate E = estimateProgram(C->unit(), *C->Cfgs, CG, Options);
  ProgramInput In;
  Profile P = runProgram(C->unit(), *C->Cfgs, In).TheProfile;
  double Score = intraProceduralScore(E, P, scoredFunctionIds(C->unit()),
                                      0.25);
  EXPECT_GT(Score, 0.0);
  EXPECT_LE(Score, 1.0);
}

TEST(Evaluation, SelfProfileScoresPerfectly) {
  // A profile used as its own estimate must score 100% everywhere.
  auto C = compile("int f(int n) { int s = 0; int i;\n"
                   "  for (i = 0; i < n; i++)\n"
                   "    if (i % 2 == 0) s += i; else s -= 1;\n"
                   "  return s; }\n"
                   "int main() { return f(30) != 0; }");
  ASSERT_TRUE(C);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  ProgramInput In;
  Profile P = runProgram(C->unit(), *C->Cfgs, In).TheProfile;
  ProgramEstimate E = estimateFromProfile(P, CG);
  auto Ids = scoredFunctionIds(C->unit());
  for (double Cutoff : {0.05, 0.1, 0.25, 0.5}) {
    EXPECT_NEAR(intraProceduralScore(E, P, Ids, Cutoff), 1.0, 1e-9);
    EXPECT_NEAR(functionInvocationScore(E, P, Ids, Cutoff), 1.0, 1e-9);
    EXPECT_NEAR(callSiteScore(E, P, Cutoff), 1.0, 1e-9);
  }
}

TEST(Evaluation, AverageOverProfiles) {
  std::vector<Profile> Profiles(3);
  int Calls = 0;
  double Avg = averageOverProfiles(Profiles, [&Calls](const Profile &) {
    ++Calls;
    return static_cast<double>(Calls);
  });
  EXPECT_EQ(Calls, 3);
  EXPECT_NEAR(Avg, 2.0, 1e-12);
}

} // namespace

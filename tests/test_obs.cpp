//===- tests/test_obs.cpp - Telemetry subsystem unit tests -----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the observability substrate: the JSON writer/reader, the
/// counter/gauge/histogram registry, phase timer nesting, trace-JSON
/// well-formedness (validated by parsing it back), the disabled path,
/// and the pipeline / interpreter instrumentation built on top.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "obs/EventLog.h"
#include "obs/Telemetry.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <limits>

using namespace sest;
using namespace sest::test;

namespace {

//===----------------------------------------------------------------------===//
// JSON writer / reader
//===----------------------------------------------------------------------===//

TEST(Json, WriterProducesParseableDocument) {
  JsonWriter W;
  W.beginObject();
  W.member("name", "sest");
  W.member("count", 3);
  W.member("ratio", 0.25);
  W.member("big", uint64_t(1) << 53);
  W.member("flag", true);
  W.key("nested");
  W.beginObject();
  W.key("null");
  W.nullValue();
  W.endObject();
  W.key("items");
  W.beginArray();
  W.value(1).value("two").value(3.5);
  W.endArray();
  W.endObject();
  ASSERT_TRUE(W.complete());

  auto V = parseJson(W.str());
  ASSERT_TRUE(V.has_value());
  ASSERT_TRUE(V->isObject());
  EXPECT_EQ(V->find("name")->StringVal, "sest");
  EXPECT_EQ(V->numberOr("count", -1), 3);
  EXPECT_EQ(V->numberOr("ratio", -1), 0.25);
  EXPECT_TRUE(V->find("flag")->BoolVal);
  EXPECT_TRUE(V->find("nested")->find("null")->isNull());
  ASSERT_EQ(V->find("items")->Items.size(), 3u);
  EXPECT_EQ(V->find("items")->Items[1].StringVal, "two");
}

TEST(Json, EscapesControlAndQuoteCharacters) {
  JsonWriter W;
  W.beginObject();
  W.member("s", "a\"b\\c\n\t\x01");
  W.endObject();
  auto V = parseJson(W.str());
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->find("s")->StringVal, "a\"b\\c\n\t\x01");
}

TEST(Json, NumbersRoundTrip) {
  EXPECT_EQ(jsonNumber(3.0), "3");
  EXPECT_EQ(jsonNumber(-17.0), "-17");
  EXPECT_EQ(jsonNumber(0.5), "0.5");
  // JSON has no NaN/Infinity; they degrade to null.
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_FALSE(parseJson("{").has_value());
  EXPECT_FALSE(parseJson("[1,]").has_value());
  EXPECT_FALSE(parseJson("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(parseJson("'single'").has_value());
  EXPECT_TRUE(parseJson(" { \"a\" : [ 1 , 2 ] } ").has_value());
}

//===----------------------------------------------------------------------===//
// Counter / gauge / histogram registry
//===----------------------------------------------------------------------===//

TEST(Telemetry, CountersAccumulate) {
  obs::Telemetry T;
  T.install();
  obs::counterAdd("a.b.c");
  obs::counterAdd("a.b.c", 4.0);
  obs::counterAdd("x.y.z", 2.5);
  T.uninstall();
  EXPECT_EQ(T.counters().at("a.b.c"), 5.0);
  EXPECT_EQ(T.counters().at("x.y.z"), 2.5);
}

TEST(Telemetry, GaugesKeepHighWater) {
  obs::Telemetry T;
  T.install();
  obs::gaugeMax("g", 3.0);
  obs::gaugeMax("g", 7.0);
  obs::gaugeMax("g", 5.0);
  T.uninstall();
  EXPECT_EQ(T.gauges().at("g"), 7.0);
}

TEST(Telemetry, HistogramsTrackCountSumMinMaxMean) {
  obs::Telemetry T;
  T.install();
  obs::histRecord("h", 1.0);
  obs::histRecord("h", 4.0);
  obs::histRecord("h", 10.0);
  T.uninstall();
  const obs::HistogramStats &H = T.histograms().at("h");
  EXPECT_EQ(H.Count, 3u);
  EXPECT_EQ(H.Sum, 15.0);
  EXPECT_EQ(H.Min, 1.0);
  EXPECT_EQ(H.Max, 10.0);
  EXPECT_EQ(H.mean(), 5.0);
}

TEST(Telemetry, NothingRecordedWithoutInstall) {
  // The disabled path: with no context installed these are no-ops, and
  // a context that is never installed collects nothing.
  obs::Telemetry T;
  EXPECT_FALSE(obs::telemetryActive());
  obs::counterAdd("dropped");
  obs::gaugeMax("dropped", 1.0);
  obs::histRecord("dropped", 1.0);
  { obs::ScopedPhase P("dropped.phase"); }
  EXPECT_TRUE(T.counters().empty());
  EXPECT_TRUE(T.gauges().empty());
  EXPECT_TRUE(T.histograms().empty());
  EXPECT_TRUE(T.events().empty());
  EXPECT_EQ(T.traceJson().find("dropped"), std::string::npos);
}

TEST(Telemetry, InstallsStack) {
  obs::Telemetry Outer, Inner;
  Outer.install();
  obs::counterAdd("n");
  Inner.install();
  obs::counterAdd("n");
  Inner.uninstall();
  obs::counterAdd("n");
  Outer.uninstall();
  EXPECT_EQ(Outer.counters().at("n"), 2.0);
  EXPECT_EQ(Inner.counters().at("n"), 1.0);
  EXPECT_FALSE(obs::telemetryActive());
}

//===----------------------------------------------------------------------===//
// Phase timers
//===----------------------------------------------------------------------===//

TEST(Telemetry, PhasesNestAndAggregate) {
  obs::Telemetry T;
  T.install();
  for (int I = 0; I < 2; ++I) {
    obs::ScopedPhase Outer("outer");
    obs::ScopedPhase InnerA("inner.a");
    { obs::ScopedPhase InnerB("inner.b"); }
  }
  T.uninstall();
  EXPECT_EQ(T.openPhaseDepth(), 0u);

  const obs::PhaseNode &Root = T.phaseTree();
  ASSERT_EQ(Root.Children.size(), 1u);
  const obs::PhaseNode &Outer = *Root.Children[0];
  EXPECT_EQ(Outer.Name, "outer");
  EXPECT_EQ(Outer.Count, 2u);
  ASSERT_EQ(Outer.Children.size(), 1u);
  const obs::PhaseNode &InnerA = *Outer.Children[0];
  EXPECT_EQ(InnerA.Name, "inner.a");
  EXPECT_EQ(InnerA.Count, 2u);
  ASSERT_EQ(InnerA.Children.size(), 1u);
  EXPECT_EQ(InnerA.Children[0]->Name, "inner.b");
  // Every span covers its children.
  EXPECT_GE(Outer.TotalUs, Outer.ChildUs);
  EXPECT_GE(InnerA.TotalUs, InnerA.ChildUs);

  // Events carry nesting depth (completion order: innermost first).
  ASSERT_EQ(T.events().size(), 6u);
  EXPECT_EQ(T.events()[0].Name, "inner.b");
  EXPECT_EQ(T.events()[0].Depth, 2u);
  EXPECT_EQ(T.events()[2].Name, "outer");
  EXPECT_EQ(T.events()[2].Depth, 0u);

  // And the human-readable renderings mention every phase.
  std::string Summary = T.phaseSummary();
  EXPECT_NE(Summary.find("outer"), std::string::npos);
  EXPECT_NE(Summary.find("inner.b"), std::string::npos);
}

TEST(Telemetry, TraceJsonIsWellFormed) {
  obs::Telemetry T;
  T.install();
  {
    obs::ScopedPhase Outer("estimate");
    obs::ScopedPhase Inner("estimate.intra", "main");
  }
  obs::counterAdd("cfg.blocks.built", 7);
  obs::gaugeMax("interp.heap_cells.high_water", 42);
  T.uninstall();

  auto V = parseJson(T.traceJson());
  ASSERT_TRUE(V.has_value()) << T.traceJson();
  const JsonValue *Events = V->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());

  unsigned NumSpans = 0, NumCounters = 0;
  bool SawInner = false;
  for (const JsonValue &E : Events->Items) {
    const JsonValue *Ph = E.find("ph");
    ASSERT_NE(Ph, nullptr);
    if (Ph->StringVal == "X") {
      ++NumSpans;
      EXPECT_TRUE(E.find("name")->isString());
      EXPECT_TRUE(E.find("ts")->isNumber());
      EXPECT_TRUE(E.find("dur")->isNumber());
      if (E.find("name")->StringVal == "estimate.intra") {
        SawInner = true;
        EXPECT_EQ(E.find("args")->find("detail")->StringVal, "main");
      }
    } else if (Ph->StringVal == "C") {
      ++NumCounters;
    }
  }
  EXPECT_EQ(NumSpans, 2u);
  EXPECT_TRUE(SawInner);
  EXPECT_EQ(NumCounters, 2u);
}

TEST(Telemetry, ReportRoundTripsThroughReader) {
  obs::Telemetry T;
  T.install();
  { obs::ScopedPhase P("phase.one"); }
  obs::counterAdd("c", 3);
  obs::histRecord("h", 2.0);
  T.uninstall();

  JsonWriter W;
  T.writeReport(W);
  auto V = parseJson(W.str());
  ASSERT_TRUE(V.has_value()) << W.str();
  EXPECT_EQ(V->find("counters")->numberOr("c", -1), 3.0);
  EXPECT_EQ(V->find("histograms")->find("h")->numberOr("count", -1), 1.0);
  ASSERT_EQ(V->find("phases")->Items.size(), 1u);
  EXPECT_EQ(V->find("phases")->Items[0].find("name")->StringVal,
            "phase.one");
}

//===----------------------------------------------------------------------===//
// Pipeline instrumentation
//===----------------------------------------------------------------------===//

TEST(Telemetry, PipelineEmitsFrontendAndInterpCounters) {
  obs::Telemetry T;
  T.install();
  auto C = compile("int add(int a, int b) { return a + b; }\n"
                   "int main() { int s = 0; int i;\n"
                   "  for (i = 0; i < 10; i++) s = add(s, i);\n"
                   "  return s; }");
  ASSERT_NE(C, nullptr);
  RunResult R = run(*C);
  T.uninstall();

  EXPECT_EQ(R.ExitCode, 45);
  EXPECT_GT(T.counters().at("frontend.tokens.lexed"), 0.0);
  EXPECT_GT(T.counters().at("frontend.ast.nodes"), 0.0);
  EXPECT_EQ(T.counters().at("cfg.functions.built"), 2.0);
  EXPECT_EQ(T.counters().at("interp.steps.executed"),
            static_cast<double>(R.StepsExecuted));
  EXPECT_EQ(T.gauges().at("interp.call_depth.high_water"),
            static_cast<double>(R.CallDepthHighWater));
  // Both functions accrued self time.
  EXPECT_GT(T.counters().at("interp.fn_self_steps.main"), 0.0);
  EXPECT_GT(T.counters().at("interp.fn_self_steps.add"), 0.0);

  // The frontend phase nests lex/parse/sema under it.
  const obs::PhaseNode &Root = T.phaseTree();
  const obs::PhaseNode *Frontend = nullptr;
  for (const auto &Child : Root.Children)
    if (Child->Name == "frontend")
      Frontend = Child.get();
  ASSERT_NE(Frontend, nullptr);
  EXPECT_EQ(Frontend->Children.size(), 3u);
}

//===----------------------------------------------------------------------===//
// Interpreter resource-limit reporting
//===----------------------------------------------------------------------===//

TEST(Telemetry, StepLimitReportsLimitAndHighWater) {
  auto C = compile("int main() { while (1) {} return 0; }");
  ASSERT_NE(C, nullptr);
  InterpOptions Opts;
  Opts.MaxSteps = 1000;
  RunResult R = runProgram(C->unit(), *C->Cfgs, ProgramInput{}, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.LimitHit, RunLimit::Steps);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
  EXPECT_NE(R.Error.find("MaxSteps=1000"), std::string::npos);
  EXPECT_NE(R.Error.find("high-water"), std::string::npos);
  EXPECT_GT(R.StepsExecuted, 1000u);
}

TEST(Telemetry, HeapLimitReportsLimitAndHighWater) {
  auto C = compile("int main() { while (1) { malloc(64); } return 0; }");
  ASSERT_NE(C, nullptr);
  InterpOptions Opts;
  Opts.MaxHeapCells = 256;
  RunResult R = runProgram(C->unit(), *C->Cfgs, ProgramInput{}, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.LimitHit, RunLimit::HeapCells);
  EXPECT_NE(R.Error.find("heap limit exceeded"), std::string::npos);
  EXPECT_NE(R.Error.find("MaxHeapCells=256"), std::string::npos);
  EXPECT_EQ(R.HeapCellsHighWater, 256);
}

TEST(Telemetry, CallDepthLimitReportsLimitAndHighWater) {
  auto C = compile("int f(int n) { return f(n + 1); }\n"
                   "int main() { return f(0); }");
  ASSERT_NE(C, nullptr);
  InterpOptions Opts;
  Opts.MaxCallDepth = 50;
  RunResult R = runProgram(C->unit(), *C->Cfgs, ProgramInput{}, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.LimitHit, RunLimit::CallDepth);
  EXPECT_NE(R.Error.find("call depth limit exceeded"), std::string::npos);
  EXPECT_NE(R.Error.find("MaxCallDepth=50"), std::string::npos);
  EXPECT_EQ(R.CallDepthHighWater, 50u);
  EXPECT_STREQ(runLimitName(R.LimitHit), "call-depth");
}

TEST(Telemetry, SuccessfulRunReportsUsageWithoutLimit) {
  auto C = compile("int main() { int *p = (int *)malloc(8);\n"
                   "  if (p == 0) return 1; return 0; }");
  ASSERT_NE(C, nullptr);
  RunResult R = runProgram(C->unit(), *C->Cfgs, ProgramInput{});
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.LimitHit, RunLimit::None);
  EXPECT_GT(R.StepsExecuted, 0u);
  EXPECT_EQ(R.HeapCellsHighWater, 8);
  EXPECT_EQ(R.CallDepthHighWater, 1u);
}

//===----------------------------------------------------------------------===//
// mergeFrom edge cases
//===----------------------------------------------------------------------===//

TEST(Telemetry, MergeFromDisjointHistogramKeys) {
  obs::Telemetry A, B;
  A.install();
  obs::histRecord("only.a", 2.0);
  obs::histRecord("shared", 1.0);
  A.uninstall();
  B.install();
  obs::histRecord("only.b", 8.0);
  obs::histRecord("shared", 5.0);
  obs::histRecord("shared", 3.0);
  B.uninstall();

  A.mergeFrom(B);

  // A key only the source had is copied over wholesale...
  const obs::HistogramStats &OnlyB = A.histograms().at("only.b");
  EXPECT_EQ(OnlyB.Count, 1u);
  EXPECT_EQ(OnlyB.Sum, 8.0);
  EXPECT_EQ(OnlyB.Min, 8.0);
  EXPECT_EQ(OnlyB.Max, 8.0);
  // ...a key only the destination had is untouched...
  const obs::HistogramStats &OnlyA = A.histograms().at("only.a");
  EXPECT_EQ(OnlyA.Count, 1u);
  EXPECT_EQ(OnlyA.Sum, 2.0);
  // ...and a shared key pools count/sum/min/max.
  const obs::HistogramStats &Shared = A.histograms().at("shared");
  EXPECT_EQ(Shared.Count, 3u);
  EXPECT_EQ(Shared.Sum, 9.0);
  EXPECT_EQ(Shared.Min, 1.0);
  EXPECT_EQ(Shared.Max, 5.0);
  // The source context is not consumed by the merge.
  EXPECT_EQ(B.histograms().at("shared").Count, 2u);
}

TEST(Telemetry, MergeFromGraftsUnderActivePhaseStack) {
  // Merging while phases are open must graft the source's phase tree
  // under the innermost open phase (the suite runner merges per-run
  // contexts from inside "suite.run"), and replayed events must be
  // re-based to the open depth.
  obs::Telemetry Src;
  Src.install();
  { obs::ScopedPhase P("worker.run"); }
  Src.uninstall();
  ASSERT_EQ(Src.events().size(), 1u);
  EXPECT_EQ(Src.events()[0].Depth, 0u);

  obs::Telemetry Dst;
  Dst.install();
  {
    obs::ScopedPhase Outer("suite");
    {
      obs::ScopedPhase Inner("suite.run");
      EXPECT_EQ(Dst.openPhaseDepth(), 2u);
      Dst.mergeFrom(Src);
    }
  }
  Dst.uninstall();

  // Tree: suite > suite.run > worker.run.
  const obs::PhaseNode &Root = Dst.phaseTree();
  ASSERT_EQ(Root.Children.size(), 1u);
  const obs::PhaseNode &Outer = *Root.Children[0];
  EXPECT_EQ(Outer.Name, "suite");
  ASSERT_EQ(Outer.Children.size(), 1u);
  const obs::PhaseNode &Inner = *Outer.Children[0];
  EXPECT_EQ(Inner.Name, "suite.run");
  ASSERT_EQ(Inner.Children.size(), 1u);
  EXPECT_EQ(Inner.Children[0]->Name, "worker.run");
  EXPECT_EQ(Inner.Children[0]->Count, 1u);

  // The replayed event sits two levels below the top.
  bool FoundWorker = false;
  for (const obs::TraceEvent &E : Dst.events())
    if (E.Name == "worker.run") {
      FoundWorker = true;
      EXPECT_EQ(E.Depth, 2u);
    }
  EXPECT_TRUE(FoundWorker);
  EXPECT_EQ(Dst.openPhaseDepth(), 0u);
}

TEST(Telemetry, TripleNestedInstallOrdering) {
  // install() stacks: recording always goes to the innermost context,
  // and uninstall() restores the next-outer one — across three levels.
  obs::Telemetry A, B, C;
  A.install();
  obs::counterAdd("depth", 1.0);
  B.install();
  obs::counterAdd("depth", 10.0);
  C.install();
  obs::counterAdd("depth", 100.0);
  EXPECT_EQ(obs::Telemetry::active(), &C);
  C.uninstall();
  EXPECT_EQ(obs::Telemetry::active(), &B);
  obs::counterAdd("depth", 10.0);
  B.uninstall();
  EXPECT_EQ(obs::Telemetry::active(), &A);
  obs::counterAdd("depth", 1.0);
  A.uninstall();
  EXPECT_FALSE(obs::telemetryActive());

  EXPECT_EQ(A.counters().at("depth"), 2.0);
  EXPECT_EQ(B.counters().at("depth"), 20.0);
  EXPECT_EQ(C.counters().at("depth"), 100.0);

  // Folding inner contexts outward (the parallel-runner pattern) pools
  // everything into the outermost context.
  B.mergeFrom(C);
  A.mergeFrom(B);
  EXPECT_EQ(A.counters().at("depth"), 122.0);
}

//===----------------------------------------------------------------------===//
// Histogram percentiles
//===----------------------------------------------------------------------===//

TEST(Telemetry, HistogramPercentilesFromBuckets) {
  obs::Telemetry T;
  T.install();
  for (int I = 1; I <= 100; ++I)
    obs::histRecord("h", static_cast<double>(I));
  T.uninstall();

  const obs::HistogramStats &H = T.histograms().at("h");
  // Bucket boundaries are powers of two split 8 ways, so the expected
  // midpoints are exact: rank 50 lands in [48,52) -> 50, rank 90 in
  // [88,96) -> 92, rank 99 in [96,104) -> 100 after the Max clamp.
  EXPECT_EQ(H.p50(), 50.0);
  EXPECT_EQ(H.p90(), 92.0);
  EXPECT_EQ(H.p99(), 100.0);
  // Percentiles never escape the observed range.
  EXPECT_EQ(H.percentile(0.0), H.percentile(0.01));
  EXPECT_LE(H.percentile(1.0), H.Max);
  EXPECT_GE(H.percentile(0.01), H.Min);
}

TEST(Telemetry, HistogramPercentileDegenerateCases) {
  obs::HistogramStats Empty;
  EXPECT_EQ(Empty.percentile(0.5), 0.0);

  // All-identical samples: every percentile is that value (the bucket
  // midpoint clamps to [Min, Max]).
  obs::Telemetry T;
  T.install();
  for (int I = 0; I < 5; ++I)
    obs::histRecord("same", 7.0);
  // Non-positive samples share the underflow bucket and report Min.
  obs::histRecord("neg", -5.0);
  obs::histRecord("neg", -1.0);
  obs::histRecord("neg", 3.0);
  T.uninstall();
  const obs::HistogramStats &Same = T.histograms().at("same");
  EXPECT_EQ(Same.p50(), 7.0);
  EXPECT_EQ(Same.p99(), 7.0);
  const obs::HistogramStats &Neg = T.histograms().at("neg");
  EXPECT_EQ(Neg.percentile(0.5), -5.0);

  // The bucket index itself: monotone in the sample, underflow for
  // non-positive/non-finite input.
  EXPECT_EQ(obs::HistogramStats::bucketIndex(0.0), INT32_MIN);
  EXPECT_EQ(obs::HistogramStats::bucketIndex(-1.0), INT32_MIN);
  EXPECT_LT(obs::HistogramStats::bucketIndex(1.0),
            obs::HistogramStats::bucketIndex(2.0));
  EXPECT_LT(obs::HistogramStats::bucketIndex(0.001),
            obs::HistogramStats::bucketIndex(0.002));
}

TEST(Telemetry, HistogramPercentilesMergeAdditively) {
  // Percentiles of merged halves must match the combined distribution:
  // the bucket maps are additive, so partitioning the samples across
  // workers (the parallel suite) cannot move the percentile estimates.
  obs::Telemetry Combined, A, B;
  Combined.install();
  for (int I = 1; I <= 100; ++I)
    obs::histRecord("h", static_cast<double>(I));
  Combined.uninstall();
  A.install();
  for (int I = 1; I <= 50; ++I)
    obs::histRecord("h", static_cast<double>(I));
  A.uninstall();
  B.install();
  for (int I = 51; I <= 100; ++I)
    obs::histRecord("h", static_cast<double>(I));
  B.uninstall();

  A.mergeFrom(B);
  const obs::HistogramStats &Whole = Combined.histograms().at("h");
  const obs::HistogramStats &Merged = A.histograms().at("h");
  EXPECT_EQ(Merged.Count, Whole.Count);
  EXPECT_EQ(Merged.p50(), Whole.p50());
  EXPECT_EQ(Merged.p90(), Whole.p90());
  EXPECT_EQ(Merged.p99(), Whole.p99());
}

TEST(Telemetry, StatsTableAndReportCarryPercentiles) {
  obs::Telemetry T;
  T.install();
  for (int I = 1; I <= 10; ++I)
    obs::histRecord("h", static_cast<double>(I));
  T.uninstall();

  std::string Table = T.statsTable();
  EXPECT_NE(Table.find("P50"), std::string::npos);
  EXPECT_NE(Table.find("P90"), std::string::npos);
  EXPECT_NE(Table.find("P99"), std::string::npos);

  JsonWriter W;
  T.writeReport(W);
  auto V = parseJson(W.str());
  ASSERT_TRUE(V.has_value()) << W.str();
  const JsonValue *H = V->find("histograms")->find("h");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->numberOr("p50", -1), T.histograms().at("h").p50());
  EXPECT_EQ(H->numberOr("p90", -1), T.histograms().at("h").p90());
  EXPECT_EQ(H->numberOr("p99", -1), T.histograms().at("h").p99());
}

//===----------------------------------------------------------------------===//
// Trace tracks (per-worker timelines)
//===----------------------------------------------------------------------===//

TEST(Telemetry, TraceJsonEmitsPerTrackThreads) {
  // A worker context tagged with a track renders its spans on a
  // distinct tid (track + 1) with a thread_name metadata record, so the
  // trace viewer shows real per-worker timelines.
  obs::Telemetry Main, Worker;
  Worker.setTrack(2, "worker-2");
  Worker.install();
  { obs::ScopedPhase P("task.on.worker"); }
  Worker.uninstall();
  Main.install();
  { obs::ScopedPhase P("task.on.main"); }
  Main.uninstall();
  Main.mergeFrom(Worker);

  auto V = parseJson(Main.traceJson());
  ASSERT_TRUE(V.has_value()) << Main.traceJson();
  const JsonValue *Events = V->find("traceEvents");
  ASSERT_NE(Events, nullptr);

  std::map<double, std::string> ThreadNames; // tid -> name
  std::map<std::string, double> SpanTids;    // span name -> tid
  for (const JsonValue &E : Events->Items) {
    const std::string &Ph = E.find("ph")->StringVal;
    if (Ph == "M" && E.find("name")->StringVal == "thread_name")
      ThreadNames[E.numberOr("tid", -1)] =
          E.find("args")->find("name")->StringVal;
    else if (Ph == "X")
      SpanTids[E.find("name")->StringVal] = E.numberOr("tid", -1);
  }
  // Main's span sits on tid 1 ("main"), the worker's on tid 3.
  EXPECT_EQ(SpanTids.at("task.on.main"), 1.0);
  EXPECT_EQ(SpanTids.at("task.on.worker"), 3.0);
  EXPECT_EQ(ThreadNames.at(1.0), "main");
  EXPECT_EQ(ThreadNames.at(3.0), "worker-2");
}

TEST(Telemetry, MergePreservesEventTracksAndNames) {
  obs::Telemetry Dst, Src;
  Src.setTrack(5, "worker-5");
  Src.install();
  { obs::ScopedPhase P("remote"); }
  Src.uninstall();

  Dst.install();
  Dst.mergeFrom(Src);
  Dst.uninstall();

  bool Found = false;
  for (const obs::TraceEvent &E : Dst.events())
    if (E.Name == "remote") {
      Found = true;
      EXPECT_EQ(E.Track, 5u);
    }
  EXPECT_TRUE(Found);
  ASSERT_EQ(Dst.trackNames().count(5), 1u);
  EXPECT_EQ(Dst.trackNames().at(5), "worker-5");
  // The destination itself still records on the main track.
  EXPECT_EQ(Dst.track(), 0u);
}

TEST(Telemetry, SerialEventsStayOnSingleTrack) {
  obs::Telemetry T;
  T.install();
  { obs::ScopedPhase A("one"); }
  { obs::ScopedPhase B("two"); }
  T.uninstall();
  for (const obs::TraceEvent &E : T.events())
    EXPECT_EQ(E.Track, 0u);
}

//===----------------------------------------------------------------------===//
// EventLog (decision-provenance flight recorder)
//===----------------------------------------------------------------------===//

TEST(EventLog, ProvenanceIdFormats) {
  EXPECT_EQ(obs::provFunction("main"), "fn:main");
  EXPECT_EQ(obs::provBlock("main", 3), "blk:main#3");
  EXPECT_EQ(obs::provCallSite(17), "cs:17");
  EXPECT_EQ(obs::provProgram("wc"), "prog:wc");
}

TEST(EventLog, NothingRecordedWithoutInstall) {
  obs::EventLog L;
  EXPECT_FALSE(obs::eventLogActive());
  obs::logEvent("dropped", obs::provFunction("f"));
  EXPECT_TRUE(L.events().empty());
}

TEST(EventLog, InstallsStackAndCollect) {
  obs::EventLog Outer, Inner;
  Outer.install();
  obs::logEvent("k.outer", obs::provFunction("a"));
  Inner.install();
  EXPECT_EQ(obs::EventLog::active(), &Inner);
  obs::logEvent("k.inner", obs::provFunction("b"));
  Inner.uninstall();
  obs::logEvent("k.outer2", obs::provFunction("c"));
  Outer.uninstall();
  EXPECT_FALSE(obs::eventLogActive());

  ASSERT_EQ(Outer.events().size(), 2u);
  EXPECT_EQ(Outer.events()[0].Kind, "k.outer");
  EXPECT_EQ(Outer.events()[1].Kind, "k.outer2");
  ASSERT_EQ(Inner.events().size(), 1u);
  EXPECT_EQ(Inner.events()[0].Prov, "fn:b");
}

TEST(EventLog, MergeAppendsInCallOrder) {
  obs::EventLog Dst, T1, T2;
  T1.install();
  obs::logEvent("first", obs::provFunction("x"));
  T1.uninstall();
  T2.install();
  obs::logEvent("second", obs::provFunction("y"));
  T2.uninstall();
  Dst.install();
  obs::logEvent("zeroth", obs::provFunction("z"));
  Dst.uninstall();

  // Task-order merges define the deterministic stream order.
  Dst.mergeFrom(T1);
  Dst.mergeFrom(T2);
  ASSERT_EQ(Dst.events().size(), 3u);
  EXPECT_EQ(Dst.events()[0].Kind, "zeroth");
  EXPECT_EQ(Dst.events()[1].Kind, "first");
  EXPECT_EQ(Dst.events()[2].Kind, "second");
  // Sources are not consumed.
  EXPECT_EQ(T1.events().size(), 1u);
}

TEST(EventLog, JsonlHeaderAndRecordsParse) {
  obs::EventLog L;
  L.install();
  obs::logEvent("inline.site.selected", obs::provCallSite(4),
                {obs::attr("caller", "main"), obs::attr("weight", 12.5)});
  obs::logEvent("layout.cold.boundary", obs::provBlock("f", 7));
  L.uninstall();

  std::string Doc = L.jsonl();
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Doc.size()) {
    size_t Nl = Doc.find('\n', Pos);
    ASSERT_NE(Nl, std::string::npos) << "unterminated line";
    Lines.push_back(Doc.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  ASSERT_EQ(Lines.size(), 3u);

  // Header line: schema + event count.
  auto Header = parseJson(Lines[0]);
  ASSERT_TRUE(Header.has_value()) << Lines[0];
  EXPECT_EQ(Header->find("schema")->StringVal, "sest-events/1");
  EXPECT_EQ(Header->numberOr("events", -1), 2.0);

  auto E0 = parseJson(Lines[1]);
  ASSERT_TRUE(E0.has_value()) << Lines[1];
  EXPECT_EQ(E0->find("kind")->StringVal, "inline.site.selected");
  EXPECT_EQ(E0->find("prov")->StringVal, "cs:4");
  EXPECT_EQ(E0->find("attrs")->find("caller")->StringVal, "main");
  EXPECT_EQ(E0->find("attrs")->numberOr("weight", -1), 12.5);

  // No wall-clock fields anywhere — that is the determinism contract.
  EXPECT_EQ(Doc.find("\"ts\":"), std::string::npos);
  EXPECT_EQ(Doc.find("\"dur\":"), std::string::npos);
  EXPECT_EQ(Doc.find("_us\":"), std::string::npos);
  EXPECT_EQ(Doc.find("_ms\":"), std::string::npos);

  // Events without attributes omit the attrs object entirely.
  auto E1 = parseJson(Lines[2]);
  ASSERT_TRUE(E1.has_value()) << Lines[2];
  EXPECT_EQ(E1->find("attrs"), nullptr);
  EXPECT_EQ(E1->find("prov")->StringVal, "blk:f#7");
}

TEST(EventLog, TaskCaptureRunsAndMergesPrivateContexts) {
  obs::Telemetry Tele;
  obs::EventLog Log;
  Tele.install();
  Log.install();

  obs::TaskCapture Cap;
  EXPECT_TRUE(Cap.wanted());
  obs::TaskCapture::Slot S1, S2;
  // Simulate two worker tasks (run here serially; the capture contract
  // is about context routing, not threads).
  Cap.run(S1, 1, "worker-1", [] {
    obs::ScopedPhase P("task.a");
    obs::counterAdd("task.count");
    obs::logEvent("decision.a", obs::provFunction("fa"));
  });
  Cap.run(S2, 2, "worker-2", [] {
    obs::ScopedPhase P("task.b");
    obs::counterAdd("task.count");
    obs::logEvent("decision.b", obs::provFunction("fb"));
  });
  // Nothing reaches the ambient contexts until merge.
  EXPECT_TRUE(Log.events().empty());
  EXPECT_EQ(Tele.counters().count("task.count"), 0u);

  Cap.merge(S1);
  Cap.merge(S2);
  Log.uninstall();
  Tele.uninstall();

  EXPECT_EQ(Tele.counters().at("task.count"), 2.0);
  ASSERT_EQ(Log.events().size(), 2u);
  EXPECT_EQ(Log.events()[0].Kind, "decision.a");
  EXPECT_EQ(Log.events()[1].Kind, "decision.b");
  // Task spans landed on their worker tracks with names unioned in.
  std::map<std::string, uint32_t> Tracks;
  for (const obs::TraceEvent &E : Tele.events())
    Tracks[E.Name] = E.Track;
  EXPECT_EQ(Tracks.at("task.a"), 1u);
  EXPECT_EQ(Tracks.at("task.b"), 2u);
  EXPECT_EQ(Tele.trackNames().at(1), "worker-1");
  EXPECT_EQ(Tele.trackNames().at(2), "worker-2");
}

TEST(EventLog, TaskCaptureSkipsContextsWhenNothingAmbient) {
  // With no ambient telemetry or log, tasks run bare: no private
  // contexts are allocated, so parallelism stays observation-free.
  obs::TaskCapture Cap;
  EXPECT_FALSE(Cap.wanted());
  obs::TaskCapture::Slot S;
  bool Ran = false;
  Cap.run(S, 1, "worker-1", [&] { Ran = true; });
  EXPECT_TRUE(Ran);
  EXPECT_EQ(S.T, nullptr);
  EXPECT_EQ(S.E, nullptr);
  Cap.merge(S); // must be a no-op, not a crash
}

} // namespace

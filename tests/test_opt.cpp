//===- tests/test_opt.cpp - Optimizer subsystem tests ----------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for src/opt/: WeightSource construction and rankings, the
/// Pettis–Hansen-style block layout (chaining, cold outlining,
/// determinism), branch hints, the layout-sensitive dynamic cost model
/// (identity == default, reclassification == a real laid-out run, both
/// engines bit-identical), the call-site inliner (every statement form,
/// loop-header callees, differential verification), and byte-stability
/// of the sest-opt-report/1 document across engines and job counts.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "callgraph/CallGraph.h"
#include "estimators/Pipeline.h"
#include "obs/EventLog.h"
#include "opt/OptReport.h"
#include "suite/SuiteRunner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string_view>

using namespace sest;
using namespace sest::test;

namespace {

CallGraph buildCG(Compiled &C) {
  return CallGraph::build(C.unit(), *C.Cfgs);
}

RunResult runWith(Compiled &C, InterpEngine Engine,
                  const std::string &Input = "",
                  const ProgramBlockOrder *Layout = nullptr) {
  ProgramInput In;
  In.Text = Input;
  InterpOptions O;
  O.Engine = Engine;
  O.Layout = Layout;
  RunResult R = runProgram(C.unit(), *C.Cfgs, In, O);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R;
}

/// Exact equality of the profile fields the inliner maps back.
void expectMappedEqual(const Profile &Base, const Profile &Mapped) {
  ASSERT_EQ(Base.Functions.size(), Mapped.Functions.size());
  for (size_t F = 0; F < Base.Functions.size(); ++F) {
    EXPECT_EQ(Base.Functions[F].EntryCount,
              Mapped.Functions[F].EntryCount)
        << "fn " << F;
    EXPECT_EQ(Base.Functions[F].BlockCounts,
              Mapped.Functions[F].BlockCounts)
        << "fn " << F;
    EXPECT_EQ(Base.Functions[F].ArcCounts, Mapped.Functions[F].ArcCounts)
        << "fn " << F;
  }
  EXPECT_EQ(Base.CallSiteCounts, Mapped.CallSiteCounts);
}

const char *LoopyProgram = R"(
int work(int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    if (i % 3 == 0)
      s = s + 2;
    else
      s = s - 1;
    i = i + 1;
  }
  return s;
}
int main() {
  print_int(work(50));
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// WeightSource
//===----------------------------------------------------------------------===//

TEST(WeightSourceTest, ProfileWeightsMirrorProfile) {
  auto C = compile(LoopyProgram);
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  opt::WeightSource W =
      opt::weightsFromProfile(C->unit(), R.TheProfile);
  EXPECT_EQ(W.Origin, "profile");
  const FunctionDecl *Work = C->fn("work");
  ASSERT_NE(Work, nullptr);
  uint32_t Fid = Work->functionId();
  const FunctionProfile &FP = R.TheProfile.Functions[Fid];
  for (uint32_t B = 0; B < FP.BlockCounts.size(); ++B)
    EXPECT_EQ(W.blockWeight(Fid, B), FP.BlockCounts[B]);
  EXPECT_EQ(W.functionWeight(Fid), 1.0);
  // Out-of-range accessors are total.
  EXPECT_EQ(W.blockWeight(999, 0), 0.0);
  EXPECT_EQ(W.callSiteWeight(999), -1.0);
}

TEST(WeightSourceTest, RankingsAreDeterministicHotFirst) {
  auto C = compile(R"(
int a() { return 1; }
int b() { return 2; }
int c() { return 3; }
int main() {
  int i = 0;
  int s = 0;
  while (i < 4) { s = s + b(); i = i + 1; }
  s = s + a() + c();
  print_int(s);
  return 0;
}
)");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  opt::WeightSource W =
      opt::weightsFromProfile(C->unit(), R.TheProfile);
  std::vector<opt::RankedFunction> Fns =
      opt::rankFunctions(C->unit(), W);
  ASSERT_GE(Fns.size(), 4u);
  // b (4 calls) before main (1 entry)... both before the tied a/c,
  // which keep function-id order.
  EXPECT_EQ(Fns[0].F->name(), "b");
  const auto posOf = [&](const char *N) {
    return std::find_if(Fns.begin(), Fns.end(), [&](const auto &X) {
             return X.F->name() == N;
           }) -
           Fns.begin();
  };
  EXPECT_LT(posOf("a"), posOf("c")) << "equal weights must keep id order";

  CallGraph CG = buildCG(*C);
  std::vector<opt::RankedCallSite> Sites = opt::rankCallSites(CG, W);
  ASSERT_FALSE(Sites.empty());
  EXPECT_EQ(Sites[0].Site->Callee->name(), "b");
  for (size_t I = 1; I < Sites.size(); ++I)
    EXPECT_GE(Sites[I - 1].Weight, Sites[I].Weight);
}

//===----------------------------------------------------------------------===//
// Block layout
//===----------------------------------------------------------------------===//

TEST(LayoutTest, HotArcBecomesFallThrough) {
  auto C = compile(LoopyProgram);
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  opt::WeightSource W =
      opt::weightsFromProfile(C->unit(), R.TheProfile);
  opt::ProgramLayout PL =
      opt::computeBlockLayout(C->unit(), *C->Cfgs, W);
  const ProgramBlockOrder Order = PL.blockOrder();

  // The laid-out run must spend at least as many transfers falling
  // through as the source-order run.
  RunResult Laid = runWith(*C, InterpEngine::Bytecode, "", &Order);
  EXPECT_EQ(Laid.Output, R.Output);
  EXPECT_GE(Laid.LayoutCost.FallThrough, R.LayoutCost.FallThrough);
  EXPECT_LE(Laid.LayoutCost.cost(), R.LayoutCost.cost());
}

TEST(LayoutTest, ZeroWeightsGiveIdentity) {
  auto C = compile(LoopyProgram);
  ASSERT_TRUE(C);
  opt::WeightSource W; // all weights absent == zero
  W.Origin = "empty";
  opt::ProgramLayout PL =
      opt::computeBlockLayout(C->unit(), *C->Cfgs, W);
  for (const opt::FunctionLayout &F : PL.Functions) {
    if (!F.Order.empty()) {
      EXPECT_TRUE(F.isIdentity());
    }
  }
}

TEST(LayoutTest, ColdBlocksOutlinedPastBoundary) {
  auto C = compile(R"(
int main() {
  int x = read_int();
  int i = 0;
  int s = 0;
  while (i < 100) { s = s + i; i = i + 1; }
  if (x == 12345) {
    print_str("rare path\n");
    s = 0;
  }
  print_int(s);
  return 0;
}
)");
  ASSERT_TRUE(C);
  RunResult R = run(*C, "7");
  opt::WeightSource W =
      opt::weightsFromProfile(C->unit(), R.TheProfile);
  opt::ProgramLayout PL =
      opt::computeBlockLayout(C->unit(), *C->Cfgs, W);
  const FunctionDecl *Main = C->fn("main");
  ASSERT_NE(Main, nullptr);
  const opt::FunctionLayout &FL = PL.Functions[Main->functionId()];
  ASSERT_LT(FL.FirstColdPos, FL.Order.size());
  const FunctionProfile &FP = R.TheProfile.Functions[Main->functionId()];
  double Hottest = 0.0;
  for (double N : FP.BlockCounts)
    Hottest = std::max(Hottest, N);
  // Every outlined block is below the cold threshold, and the
  // never-executed "rare path" block is among them.
  bool SawNeverRun = false;
  for (uint32_t P = FL.FirstColdPos; P < FL.Order.size(); ++P) {
    double N = FP.BlockCounts[FL.Order[P]];
    EXPECT_LT(N, opt::LayoutOptions().ColdFraction * Hottest)
        << "block " << FL.Order[P] << " is not cold";
    SawNeverRun = SawNeverRun || N == 0.0;
  }
  EXPECT_TRUE(SawNeverRun) << "the rare path was not outlined";
}

TEST(LayoutTest, DeterministicAndPositionConsistent) {
  auto C = compile(LoopyProgram);
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  opt::WeightSource W =
      opt::weightsFromProfile(C->unit(), R.TheProfile);
  opt::ProgramLayout A = opt::computeBlockLayout(C->unit(), *C->Cfgs, W);
  opt::ProgramLayout B = opt::computeBlockLayout(C->unit(), *C->Cfgs, W);
  ASSERT_EQ(A.Functions.size(), B.Functions.size());
  for (size_t F = 0; F < A.Functions.size(); ++F) {
    EXPECT_EQ(A.Functions[F].Order, B.Functions[F].Order);
    // Pos is the inverse permutation of Order.
    const opt::FunctionLayout &FL = A.Functions[F];
    for (uint32_t P = 0; P < FL.Order.size(); ++P)
      EXPECT_EQ(FL.Pos[FL.Order[P]], P);
    // Entry block first.
    if (!FL.Order.empty()) {
      EXPECT_EQ(FL.Order[0], 0u);
    }
  }
}

TEST(LayoutTest, BranchHintsMarkNeverTakenArcs) {
  auto C = compile(R"(
int main() {
  int i = 0;
  while (i < 20) {
    if (i < 0)
      print_str("impossible\n");
    i = i + 1;
  }
  print_int(i);
  return 0;
}
)");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  opt::WeightSource W =
      opt::weightsFromProfile(C->unit(), R.TheProfile);
  opt::BranchHints H =
      opt::computeBranchHints(C->unit(), *C->Cfgs, W);
  // The i<0 branch never fires: one arc out of an executed multi-way
  // block has zero weight.
  EXPECT_GE(H.NeverTaken.size(), 1u);
  for (const opt::BranchHints::ColdArc &A : H.NeverTaken)
    EXPECT_EQ(W.arcWeight(A.Fid, A.Block, A.Slot), 0.0);
}

//===----------------------------------------------------------------------===//
// Layout-sensitive cost model
//===----------------------------------------------------------------------===//

TEST(CostModelTest, IdentityLayoutEqualsDefaultRunBothEngines) {
  auto C = compile(LoopyProgram);
  ASSERT_TRUE(C);
  opt::ProgramLayout Id = opt::identityLayout(C->unit(), *C->Cfgs);
  const ProgramBlockOrder Order = Id.blockOrder();
  for (InterpEngine E : {InterpEngine::Ast, InterpEngine::Bytecode}) {
    RunResult Plain = runWith(*C, E);
    RunResult Laid = runWith(*C, E, "", &Order);
    EXPECT_EQ(Plain.LayoutCost, Laid.LayoutCost);
  }
}

TEST(CostModelTest, EnginesCountIdenticallyUnderAnyLayout) {
  auto C = compile(LoopyProgram);
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  opt::WeightSource W =
      opt::weightsFromProfile(C->unit(), R.TheProfile);
  opt::ProgramLayout PL =
      opt::computeBlockLayout(C->unit(), *C->Cfgs, W);
  const ProgramBlockOrder Order = PL.blockOrder();
  RunResult Ast = runWith(*C, InterpEngine::Ast, "", &Order);
  RunResult Bc = runWith(*C, InterpEngine::Bytecode, "", &Order);
  EXPECT_EQ(Ast.LayoutCost, Bc.LayoutCost);
  EXPECT_GT(Bc.LayoutCost.Calls, 0u);
  EXPECT_EQ(Bc.LayoutCost.Calls, Bc.LayoutCost.Returns);
}

TEST(CostModelTest, ReclassificationMatchesRealLaidOutRun) {
  auto C = compile(LoopyProgram);
  ASSERT_TRUE(C);
  RunResult Base = run(*C);
  opt::WeightSource W =
      opt::weightsFromProfile(C->unit(), Base.TheProfile);
  opt::ProgramLayout PL =
      opt::computeBlockLayout(C->unit(), *C->Cfgs, W);
  const ProgramBlockOrder Order = PL.blockOrder();
  LayoutCostCounters Predicted = opt::reclassifyLayoutCost(
      C->unit(), *C->Cfgs, Base.TheProfile, &Order, Base.LayoutCost);
  RunResult Real = runWith(*C, InterpEngine::Bytecode, "", &Order);
  EXPECT_EQ(Predicted, Real.LayoutCost);
}

//===----------------------------------------------------------------------===//
// Inliner
//===----------------------------------------------------------------------===//

/// Inlines everything plannable under profile weights and checks the
/// differential: identical output/exit and an exactly mapped profile,
/// on both engines.
void checkInlineDifferential(const std::string &Source,
                             const std::string &Input = "",
                             size_t ExpectSites = 1) {
  for (InterpEngine E : {InterpEngine::Ast, InterpEngine::Bytecode}) {
    auto Base = compile(Source);
    ASSERT_TRUE(Base);
    RunResult BaseRun = runWith(*Base, E, Input);

    auto Mut = compile(Source);
    ASSERT_TRUE(Mut);
    CallGraph CG = buildCG(*Mut);
    opt::WeightSource W =
        opt::weightsFromProfile(Mut->unit(), BaseRun.TheProfile);
    opt::InlinePlan Plan =
        opt::planInlining(Mut->unit(), *Mut->Cfgs, CG, W);
    ASSERT_GE(Plan.Sites.size(), ExpectSites);
    opt::InlineMap Map =
        opt::applyInlining(*Mut->Ctx, *Mut->Cfgs, Plan);
    EXPECT_EQ(Map.Applied.size(), Plan.Sites.size());

    RunResult InlRun = runWith(*Mut, E, Input);
    EXPECT_EQ(InlRun.Output, BaseRun.Output);
    EXPECT_EQ(InlRun.ExitCode, BaseRun.ExitCode);
    EXPECT_LT(InlRun.LayoutCost.Calls, BaseRun.LayoutCost.Calls);

    Profile Mapped = opt::mapInlinedProfile(Map, InlRun.TheProfile);
    expectMappedEqual(BaseRun.TheProfile, Mapped);
    opt::InlineVerifyResult V =
        opt::compareInlinedRun(BaseRun, InlRun, Map);
    EXPECT_TRUE(V.Match) << V.Detail;
  }
}

TEST(InlineTest, AssignFormInLoop) {
  checkInlineDifferential(R"(
int add(int a, int b) { return a + b; }
int main() {
  int i = 0;
  int s = 0;
  while (i < 10) {
    s = add(s, i);
    i = i + 1;
  }
  print_int(s);
  return 0;
}
)");
}

TEST(InlineTest, DiscardDeclInitAndAssignForms) {
  checkInlineDifferential(R"(
int counter = 0;
int bump(int d) { counter = counter + d; return counter; }
int main() {
  bump(3);
  int x = bump(4);
  int y = 0;
  y = bump(5);
  print_int(counter + x + y);
  return 0;
}
)",
                          "", 3);
}

TEST(InlineTest, LoopHeaderCalleeEntryMapsBackExactly) {
  // Regression: the callee's entry block doubles as its loop header, so
  // in-region back edges re-enter the cloned entry. Counting region
  // entries through that clone over-counts by the iteration count; the
  // dedicated trampoline block keeps the map-back exact.
  checkInlineDifferential(R"(
int pos = 0;
int skip(int n) {
  while (pos < n)
    pos = pos + 1;
  return pos;
}
int main() {
  int r = 0;
  int i = 0;
  while (i < 6) {
    r = skip(i * 3);
    i = i + 1;
  }
  print_int(r + pos);
  return 0;
}
)");
}

TEST(InlineTest, CalleeWithBranchesAndMultipleReturns) {
  checkInlineDifferential(R"(
int classify(int v) {
  if (v < 0)
    return 0 - 1;
  if (v == 0)
    return 0;
  return 1;
}
int main() {
  int i = 0 - 5;
  int s = 0;
  while (i < 6) {
    int c = classify(i);
    s = s + c;
    i = i + 1;
  }
  print_int(s);
  return 0;
}
)");
}

TEST(InlineTest, PlansSkipRecursionAndRespectTopK) {
  auto C = compile(R"(
int fact(int n) {
  if (n <= 1)
    return 1;
  return n * fact(n - 1);
}
int twice(int v) { return v + v; }
int main() {
  print_int(fact(6) + twice(4));
  return 0;
}
)");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  CallGraph CG = buildCG(*C);
  opt::WeightSource W =
      opt::weightsFromProfile(C->unit(), R.TheProfile);
  opt::InlineOptions Budget;
  Budget.TopK = 1;
  opt::InlinePlan Plan =
      opt::planInlining(C->unit(), *C->Cfgs, CG, W, Budget);
  EXPECT_LE(Plan.Sites.size(), 1u);
  for (const opt::InlineDecision &D : Plan.Sites)
    EXPECT_NE(D.Caller, D.Callee) << "self-recursion must not inline";
}

//===----------------------------------------------------------------------===//
// Opt report
//===----------------------------------------------------------------------===//

class OptReportTest : public ::testing::Test {
protected:
  static std::vector<CompiledSuiteProgram>
  compileSubset(InterpEngine Engine) {
    InterpOptions O;
    O.Engine = Engine;
    std::vector<CompiledSuiteProgram> Out;
    for (const char *Name : {"bison", "gs", "cholesky"}) {
      const SuiteProgram *Spec = findSuiteProgram(Name);
      EXPECT_NE(Spec, nullptr) << Name;
      Out.push_back(compileAndProfileProgram(*Spec, O));
      EXPECT_TRUE(Out.back().Ok) << Out.back().Error;
    }
    return Out;
  }
};

TEST_F(OptReportTest, VerifiesAndCrossChecksOnSuitePrograms) {
  std::vector<CompiledSuiteProgram> Programs =
      compileSubset(InterpEngine::Bytecode);
  opt::OptReportOptions O;
  opt::OptSuiteReport Rep = opt::computeOptReport(Programs, O);
  ASSERT_EQ(Rep.Programs.size(), 3u);
  for (const opt::OptProgramReport &P : Rep.Programs) {
    EXPECT_TRUE(P.Ok) << P.Name << ": " << P.Error;
    EXPECT_GT(P.IdentityCost, 0.0) << P.Name;
    ASSERT_EQ(P.Layout.size(), 3u) << P.Name;
    EXPECT_EQ(P.Layout[0].Source, "static");
    EXPECT_EQ(P.Layout[1].Source, "profile");
    EXPECT_EQ(P.Layout[2].Source, "oracle");
    for (const opt::InlineSourceResult &I : P.Inline)
      EXPECT_TRUE(I.Verified) << P.Name << "/" << I.Source << ": "
                              << I.VerifyDetail;
  }
  EXPECT_TRUE(Rep.AllCrossChecksOk);
  EXPECT_TRUE(Rep.AllInlineVerified);
}

TEST_F(OptReportTest, ByteStableAcrossJobsAndEngines) {
  std::vector<CompiledSuiteProgram> Bc =
      compileSubset(InterpEngine::Bytecode);
  std::vector<CompiledSuiteProgram> Ast =
      compileSubset(InterpEngine::Ast);

  opt::OptReportOptions Serial;
  Serial.Jobs = 1;
  opt::OptReportOptions Wide = Serial;
  Wide.Jobs = 4;
  opt::OptReportOptions AstOpts = Serial;
  AstOpts.Engine = InterpEngine::Ast;

  opt::OptSuiteReport R1 = opt::computeOptReport(Bc, Serial);
  opt::OptSuiteReport R4 = opt::computeOptReport(Bc, Wide);
  opt::OptSuiteReport RA = opt::computeOptReport(Ast, AstOpts);

  const std::string J1 = opt::optReportJson(R1, Serial);
  EXPECT_EQ(J1, opt::optReportJson(R4, Serial));
  // Engines must agree on every measured number; serialize both under
  // the same options so the self-describing engine label matches too.
  EXPECT_EQ(J1, opt::optReportJson(RA, Serial));
  EXPECT_NE(J1.find("\"schema\":\"sest-opt-report/1\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Decision event log (flight recorder)
//===----------------------------------------------------------------------===//

const obs::EventAttr *findAttr(const obs::Event &E, std::string_view Key) {
  for (const obs::EventAttr &A : E.Attrs)
    if (A.Key == Key)
      return &A;
  return nullptr;
}

TEST(EventLogOpt, InlinePlanLogsBudgetWalk) {
  auto C = compile(R"(
int add(int a, int b) { return a + b; }
int rec(int n) {
  if (n <= 0)
    return 0;
  return rec(n - 1);
}
int main() {
  int s = 0;
  int i = 0;
  while (i < 10) { s = add(s, i); i = i + 1; }
  s = s + rec(3);
  print_int(s);
  return 0;
}
)");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  CallGraph CG = buildCG(*C);
  opt::WeightSource W = opt::weightsFromProfile(C->unit(), R.TheProfile);

  obs::EventLog Log;
  Log.install();
  opt::InlinePlan Plan = opt::planInlining(C->unit(), *C->Cfgs, CG, W);
  Log.uninstall();

  // Every ranked site produced exactly one selected/rejected event.
  ASSERT_EQ(Log.events().size(), 4u);
  const obs::Event *Selected = nullptr;
  std::vector<std::string> Reasons;
  for (const obs::Event &E : Log.events()) {
    if (E.Kind == "inline.site.selected") {
      EXPECT_EQ(Selected, nullptr) << "only the add site qualifies";
      Selected = &E;
    } else {
      ASSERT_EQ(E.Kind, "inline.site.rejected");
      const obs::EventAttr *Reason = findAttr(E, "reason");
      ASSERT_NE(Reason, nullptr);
      Reasons.push_back(Reason->Str);
    }
  }
  // The hot loop-body call is the rank-1 selection...
  ASSERT_NE(Selected, nullptr);
  ASSERT_EQ(Plan.Sites.size(), 1u);
  EXPECT_EQ(Selected->Prov,
            obs::provCallSite(Plan.Sites[0].CallSiteId));
  EXPECT_EQ(findAttr(*Selected, "caller")->Str, "main");
  EXPECT_EQ(findAttr(*Selected, "callee")->Str, "add");
  EXPECT_EQ(findAttr(*Selected, "origin")->Str, "profile");
  EXPECT_EQ(findAttr(*Selected, "rank")->Num, 1.0);
  EXPECT_EQ(findAttr(*Selected, "weight")->Num, 10.0);
  // ...and each rejection names the first disqualifying reason: the
  // self-recursive rec site, the non-statement-form rec() use in a
  // compound expression, and the builtin print_int callee.
  std::sort(Reasons.begin(), Reasons.end());
  EXPECT_EQ(Reasons,
            (std::vector<std::string>{"callee-undefined-or-builtin",
                                      "not-statement-form",
                                      "recursive-or-main"}));

  // A TopK budget of 1 stops the walk right after the first selection:
  // the rank-2 site logs "top-k-budget" and nothing after it is ranked.
  obs::EventLog Tight;
  Tight.install();
  opt::InlineOptions Budget;
  Budget.TopK = 1;
  opt::planInlining(C->unit(), *C->Cfgs, CG, W, Budget);
  Tight.uninstall();
  ASSERT_EQ(Tight.events().size(), 2u);
  EXPECT_EQ(Tight.events()[0].Kind, "inline.site.selected");
  EXPECT_EQ(Tight.events()[1].Kind, "inline.site.rejected");
  EXPECT_EQ(findAttr(Tight.events()[1], "reason")->Str, "top-k-budget");
  EXPECT_EQ(findAttr(Tight.events()[1], "rank")->Num, 2.0);
}

TEST(EventLogOpt, LayoutLogsMergesColdBoundaryAndHints) {
  // The else arm never executes, so under profile weights it is a
  // zero-weight block on a hot branch: cold-outlined by the layout and
  // flagged never-taken by the hint pass.
  auto C = compile(R"(
int main() {
  int i = 0;
  int s = 0;
  while (i < 20) {
    if (i < 100)
      s = s + 1;
    else
      s = s - 1;
    i = i + 1;
  }
  print_int(s);
  return 0;
}
)");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  opt::WeightSource W = opt::weightsFromProfile(C->unit(), R.TheProfile);

  obs::EventLog Log;
  Log.install();
  opt::ProgramLayout L = opt::computeBlockLayout(C->unit(), *C->Cfgs, W);
  opt::BranchHints H = opt::computeBranchHints(C->unit(), *C->Cfgs, W);
  Log.uninstall();
  ASSERT_FALSE(H.NeverTaken.empty());

  unsigned Merges = 0, Boundaries = 0, Hints = 0;
  for (const obs::Event &E : Log.events()) {
    // Every layout decision anchors to a block of the one function.
    EXPECT_EQ(E.Prov.rfind("blk:main#", 0), 0u) << E.Prov;
    EXPECT_EQ(findAttr(E, "function")->Str, "main");
    EXPECT_EQ(findAttr(E, "origin")->Str, "profile");
    if (E.Kind == "layout.chain.merge") {
      ++Merges;
      EXPECT_NE(findAttr(E, "to"), nullptr);
      EXPECT_GT(findAttr(E, "weight")->Num, 0.0);
    } else if (E.Kind == "layout.cold.boundary") {
      ++Boundaries;
      EXPECT_GE(findAttr(E, "outlined_blocks")->Num, 1.0);
    } else {
      EXPECT_EQ(E.Kind, "layout.hint.never_taken");
      ++Hints;
    }
  }
  EXPECT_GE(Merges, 1u);
  EXPECT_EQ(Boundaries, 1u);
  EXPECT_EQ(Hints, static_cast<unsigned>(H.NeverTaken.size()));
  (void)L;
}

/// The sestc --suite --log decision pass: compile + profile the suite,
/// then walk each ok program once with the default static estimate.
std::string suiteDecisionLog(InterpEngine Engine, unsigned Jobs) {
  obs::EventLog Log;
  Log.install();
  InterpOptions O;
  O.Engine = Engine;
  std::vector<CompiledSuiteProgram> Programs =
      compileAndProfileSuite(O, Jobs);
  EstimatorOptions Est;
  Est.Jobs = 1;
  for (const CompiledSuiteProgram &P : Programs) {
    if (!P.Ok || P.Profiles.empty())
      continue;
    obs::logEvent("program.begin", obs::provProgram(P.Spec->Name));
    ProgramEstimate E = estimateProgram(P.unit(), *P.Cfgs, *P.CG, Est);
    opt::WeightSource W =
        opt::weightsFromEstimate(P.unit(), *P.Cfgs, E, Est);
    opt::computeBlockLayout(P.unit(), *P.Cfgs, W);
    opt::computeBranchHints(P.unit(), *P.Cfgs, W);
    opt::planInlining(P.unit(), *P.Cfgs, *P.CG, W);
  }
  Log.uninstall();
  return Log.jsonl();
}

TEST(EventLogOpt, SuiteDecisionLogByteIdenticalAcrossJobsAndEngines) {
  // The determinism contract of sest-events/1: no wall-clock data and
  // task-order merges, so the rendered document cannot depend on the
  // worker count or the interpreter tier that produced the profiles.
  const std::string Serial =
      suiteDecisionLog(InterpEngine::Bytecode, 1);
  EXPECT_FALSE(Serial.empty());
  EXPECT_NE(Serial.find("\"schema\":\"sest-events/1\""),
            std::string::npos);
  EXPECT_EQ(Serial, suiteDecisionLog(InterpEngine::Bytecode, 2));
  EXPECT_EQ(Serial, suiteDecisionLog(InterpEngine::Bytecode, 8));
  EXPECT_EQ(Serial, suiteDecisionLog(InterpEngine::Ast, 2));
}

TEST(EventLogOpt, DecisionProvenanceResolvesToAccuracyEntities) {
  // Every decision event must name an entity the accuracy report also
  // scores — that join is the whole point of stable provenance IDs.
  std::vector<CompiledSuiteProgram> Programs =
      compileAndProfileSuite(InterpOptions{}, 0);
  std::vector<obs::AccuracyReport> Reports =
      computeSuiteAccuracy(Programs, {}, 1);

  // Per-program entity universes, keyed exactly like prov IDs.
  struct Universe {
    std::set<std::string> Fns;    // "fn:<name>"
    std::set<std::string> Blocks; // "blk:<fn>#<id>"
    std::set<std::string> Sites;  // "cs:<id>"
  };
  std::map<std::string, Universe> ByProgram;
  for (const obs::AccuracyReport &R : Reports) {
    Universe &U = ByProgram[R.Program];
    for (const obs::EntityDivergence &D : R.Blocks.Entities)
      U.Blocks.insert(obs::provBlock(D.Function, D.EntityId));
    for (const obs::EntityDivergence &D : R.Functions.Entities)
      U.Fns.insert(obs::provFunction(D.Function));
    for (const obs::EntityDivergence &D : R.CallSites.Entities)
      U.Sites.insert(obs::provCallSite(D.EntityId));
  }

  obs::EventLog Log;
  Log.install();
  EstimatorOptions Est;
  Est.Jobs = 1;
  for (const CompiledSuiteProgram &P : Programs) {
    if (!P.Ok || P.Profiles.empty())
      continue;
    obs::logEvent("program.begin", obs::provProgram(P.Spec->Name));
    ProgramEstimate E = estimateProgram(P.unit(), *P.Cfgs, *P.CG, Est);
    opt::WeightSource W =
        opt::weightsFromEstimate(P.unit(), *P.Cfgs, E, Est);
    opt::computeBlockLayout(P.unit(), *P.Cfgs, W);
    opt::computeBranchHints(P.unit(), *P.Cfgs, W);
    opt::planInlining(P.unit(), *P.Cfgs, *P.CG, W);
  }
  Log.uninstall();

  const Universe *U = nullptr;
  unsigned Checked = 0;
  for (const obs::Event &E : Log.events()) {
    if (E.Kind == "program.begin") {
      ASSERT_EQ(E.Prov.rfind("prog:", 0), 0u);
      std::string Name = E.Prov.substr(5);
      auto It = ByProgram.find(Name);
      ASSERT_NE(It, ByProgram.end())
          << "program.begin names an unscored program: " << Name;
      U = &It->second;
      continue;
    }
    ASSERT_NE(U, nullptr) << "decision event before any program.begin";
    ++Checked;
    if (E.Prov.rfind("fn:", 0) == 0)
      EXPECT_EQ(U->Fns.count(E.Prov), 1u) << E.Kind << " " << E.Prov;
    else if (E.Prov.rfind("blk:", 0) == 0)
      EXPECT_EQ(U->Blocks.count(E.Prov), 1u) << E.Kind << " " << E.Prov;
    else if (E.Prov.rfind("cs:", 0) == 0)
      EXPECT_EQ(U->Sites.count(E.Prov), 1u) << E.Kind << " " << E.Prov;
    else
      ADD_FAILURE() << "unknown provenance family: " << E.Prov;
  }
  EXPECT_GT(Checked, 100u) << "suite should produce many decisions";
}

} // namespace

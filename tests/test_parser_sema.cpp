//===- tests/test_parser_sema.cpp - Parser and sema unit tests -------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "lang/AstPrinter.h"
#include "lang/ConstFold.h"

#include <gtest/gtest.h>

using namespace sest;
using namespace sest::test;

namespace {

TEST(Parser, MinimalMain) {
  auto C = compile("int main() { return 0; }");
  ASSERT_TRUE(C);
  const FunctionDecl *Main = C->fn("main");
  ASSERT_TRUE(Main);
  EXPECT_TRUE(Main->isDefined());
  EXPECT_TRUE(Main->type()->returnType()->isInt());
}

TEST(Parser, GlobalVariablesWithInitializers) {
  auto C = compile("int x = 3; double d = 2.5; int a[4] = {1,2,3,4};\n"
                   "int main() { return x; }");
  ASSERT_TRUE(C);
  EXPECT_EQ(C->unit().Globals.size(), 3u);
  EXPECT_TRUE(C->unit().Globals[2]->type()->isArray());
}

TEST(Parser, StructDeclarationAndUse) {
  auto C = compile("struct point { int x; int y; };\n"
                   "int main() { struct point p; p.x = 1; p.y = 2;\n"
                   "  return p.x + p.y; }");
  ASSERT_TRUE(C);
}

TEST(Parser, SelfReferentialStruct) {
  auto C = compile("struct node { int value; struct node *next; };\n"
                   "int main() { struct node n; n.next = NULL;\n"
                   "  return n.next == NULL; }");
  ASSERT_TRUE(C);
}

TEST(Parser, FunctionPointerDeclarator) {
  auto C = compile("int add(int a, int b) { return a + b; }\n"
                   "int main() { int (*op)(int, int); op = add;\n"
                   "  return op(2, 3); }");
  ASSERT_TRUE(C);
  // "op = add" is an address-of operation on add.
  EXPECT_EQ(C->fn("add")->addressTakenCount(), 1u);
}

TEST(Parser, ArrayOfFunctionPointers) {
  auto C = compile(
      "int one() { return 1; }\n"
      "int two() { return 2; }\n"
      "int (*table[2])() = { one, two };\n"
      "int main() { return table[0]() + table[1](); }");
  ASSERT_TRUE(C);
  EXPECT_EQ(C->fn("one")->addressTakenCount(), 1u);
  EXPECT_EQ(C->fn("two")->addressTakenCount(), 1u);
}

TEST(Parser, FunctionReturningPointer) {
  auto C = compile("char *first(char *s) { return s; }\n"
                   "int main() { return 0; }");
  ASSERT_TRUE(C);
  const FunctionDecl *F = C->fn("first");
  ASSERT_TRUE(F);
  EXPECT_TRUE(F->type()->returnType()->isPointer());
}

TEST(Parser, TwoDimensionalArrays) {
  auto C = compile("int m[2][3];\n"
                   "int main() { m[1][2] = 7; return m[1][2]; }");
  ASSERT_TRUE(C);
  EXPECT_EQ(C->unit().Globals[0]->type()->sizeInCells(), 6);
}

TEST(Parser, PrototypeThenDefinitionMerges) {
  auto C = compile("int f(int x);\n"
                   "int main() { return f(3); }\n"
                   "int f(int x) { return x * 2; }");
  ASSERT_TRUE(C);
  // Only one canonical f.
  unsigned Count = 0;
  for (const FunctionDecl *F : C->unit().Functions)
    if (F->name() == "f")
      ++Count;
  EXPECT_EQ(Count, 1u);
  EXPECT_TRUE(C->fn("f")->isDefined());
}

TEST(Parser, SizeofFoldsToCells) {
  auto C = compile("struct pair { int a; int b; };\n"
                   "int main() { return sizeof(struct pair) + "
                   "sizeof(int) + sizeof(int[10]); }");
  ASSERT_TRUE(C);
  RunResult R = run(*C);
  EXPECT_EQ(R.ExitCode, 2 + 1 + 10);
}

TEST(Parser, PrecedenceAndAssociativity) {
  EXPECT_EQ(compileAndRun("int main() { return 2 + 3 * 4; }").ExitCode, 14);
  EXPECT_EQ(compileAndRun("int main() { return (2 + 3) * 4; }").ExitCode,
            20);
  EXPECT_EQ(compileAndRun("int main() { return 20 - 6 - 4; }").ExitCode,
            10);
  EXPECT_EQ(compileAndRun("int main() { return 1 << 3 | 1; }").ExitCode, 9);
  EXPECT_EQ(
      compileAndRun("int main() { int x; int y; x = y = 5; return x; }")
          .ExitCode,
      5);
  EXPECT_EQ(compileAndRun("int main() { return 1 ? 2 : 3; }").ExitCode, 2);
  EXPECT_EQ(
      compileAndRun("int main() { return 0 ? 1 : 0 ? 2 : 3; }").ExitCode,
      3);
}

TEST(Parser, CastSyntax) {
  EXPECT_EQ(compileAndRun("int main() { return (int)3.9; }").ExitCode, 3);
  EXPECT_EQ(
      compileAndRun("int main() { double d; d = (double)7 / 2;\n"
                    "  return (int)(d * 2.0); }")
          .ExitCode,
      7);
}

//===----------------------------------------------------------------------===//
// Sema diagnostics
//===----------------------------------------------------------------------===//

TEST(Sema, UndeclaredIdentifier) {
  std::string E = compileExpectError("int main() { return zzz; }");
  EXPECT_NE(E.find("undeclared identifier"), std::string::npos) << E;
}

TEST(Sema, RedefinedVariable) {
  std::string E =
      compileExpectError("int main() { int x; int x; return 0; }");
  EXPECT_NE(E.find("redefinition"), std::string::npos) << E;
}

TEST(Sema, CallArityMismatch) {
  std::string E = compileExpectError(
      "int f(int a) { return a; } int main() { return f(1, 2); }");
  EXPECT_NE(E.find("argument"), std::string::npos) << E;
}

TEST(Sema, AssignToRvalue) {
  std::string E = compileExpectError("int main() { 3 = 4; return 0; }");
  EXPECT_NE(E.find("lvalue"), std::string::npos) << E;
}

TEST(Sema, PointerIntAssignmentRejected) {
  std::string E = compileExpectError(
      "int main() { int *p; p = 7; return 0; }");
  EXPECT_NE(E.find("cannot assign"), std::string::npos) << E;
}

TEST(Sema, NullPointerConstantAllowed) {
  auto C = compile("int main() { int *p; p = 0; return p == NULL; }");
  ASSERT_TRUE(C);
}

TEST(Sema, BreakOutsideLoop) {
  std::string E = compileExpectError("int main() { break; return 0; }");
  EXPECT_NE(E.find("break"), std::string::npos) << E;
}

TEST(Sema, ContinueInsideSwitchNeedsLoop) {
  std::string E = compileExpectError(
      "int main() { switch (1) { case 1: continue; } return 0; }");
  EXPECT_NE(E.find("continue"), std::string::npos) << E;
}

TEST(Sema, DuplicateCaseValue) {
  std::string E = compileExpectError(
      "int main() { switch (1) { case 2: break; case 2: break; }\n"
      "  return 0; }");
  EXPECT_NE(E.find("duplicate case"), std::string::npos) << E;
}

TEST(Sema, GotoUnknownLabel) {
  std::string E =
      compileExpectError("int main() { goto nowhere; return 0; }");
  EXPECT_NE(E.find("label"), std::string::npos) << E;
}

TEST(Sema, ReturnValueFromVoid) {
  std::string E = compileExpectError(
      "void f() { return 3; } int main() { return 0; }");
  EXPECT_NE(E.find("void"), std::string::npos) << E;
}

TEST(Sema, MissingReturnValue) {
  std::string E =
      compileExpectError("int f() { return; } int main() { return 0; }");
  EXPECT_NE(E.find("returns no value"), std::string::npos) << E;
}

TEST(Sema, CallsForbiddenInGlobalInitializers) {
  std::string E = compileExpectError(
      "int f() { return 1; } int g = f(); int main() { return 0; }");
  EXPECT_NE(E.find("global initializer"), std::string::npos) << E;
}

TEST(Sema, UnknownStructField) {
  std::string E = compileExpectError(
      "struct p { int x; }; int main() { struct p v; return v.y; }");
  EXPECT_NE(E.find("no field"), std::string::npos) << E;
}

TEST(Sema, ConflictingPrototype) {
  std::string E = compileExpectError(
      "int f(int);\n"
      "double f(int x) { return 1.0; }\n"
      "int main() { return 0; }");
  EXPECT_NE(E.find("conflicting"), std::string::npos) << E;
}

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

TEST(ConstFold, BasicArithmetic) {
  auto C = compile("int x = 2 + 3 * 4; int main() { return x; }");
  ASSERT_TRUE(C);
  auto V = foldIntConstant(C->unit().Globals[0]->init());
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 14);
}

TEST(ConstFold, ShortCircuitWithNonConstRhs) {
  // "0 && f()" folds even though f() does not.
  auto C = compile("int f() { return 1; }\n"
                   "int main() { if (0 && f()) return 1; return 0; }");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("main");
  ASSERT_TRUE(G);
  // Find the conditional branch and fold its condition.
  for (const auto &B : G->blocks()) {
    if (B->terminator() == TerminatorKind::CondBranch) {
      auto V = foldConstant(B->condOrValue());
      ASSERT_TRUE(V.has_value());
      EXPECT_FALSE(V->isTruthy());
    }
  }
}

TEST(ConstFold, DivisionByZeroDoesNotFold) {
  auto C = compile("int main() { int x = 1; if (x / 0 == 0) return 1;\n"
                   "  return 0; }");
  // Division by zero at runtime — but folding must simply decline.
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("main");
  for (const auto &B : G->blocks()) {
    if (B->terminator() == TerminatorKind::CondBranch) {
      EXPECT_FALSE(foldConstant(B->condOrValue()).has_value());
    }
  }
}

TEST(ConstFold, NonConstantExpressionsDecline) {
  auto C = compile("int g = 1; int main() { return g + 1; }");
  ASSERT_TRUE(C);
  // "g + 1" references memory: not a constant.
  const Cfg *G = C->cfg("main");
  const Expr *Ret = nullptr;
  for (const auto &B : G->blocks())
    if (B->terminator() == TerminatorKind::Return)
      Ret = B->condOrValue();
  ASSERT_TRUE(Ret);
  EXPECT_FALSE(foldConstant(Ret).has_value());
}

//===----------------------------------------------------------------------===//
// AST printing
//===----------------------------------------------------------------------===//

TEST(AstPrinter, RendersControlFlow) {
  auto C = compile("int main() { int i;\n"
                   "  for (i = 0; i < 3; i++) { if (i == 1) continue; }\n"
                   "  while (i > 0) i--;\n"
                   "  return i; }");
  ASSERT_TRUE(C);
  std::string S = printFunctionAst(C->fn("main"));
  EXPECT_NE(S.find("for (...)"), std::string::npos) << S;
  EXPECT_NE(S.find("while ((i > 0))"), std::string::npos) << S;
  EXPECT_NE(S.find("continue;"), std::string::npos) << S;
}

} // namespace

//===- tests/test_properties.cpp - Property-based invariant tests ----------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style tests (parameterized over PRNG seeds) for the
/// invariants the paper's machinery rests on: weight-matching metric
/// laws, Markov solution laws, aggregation laws, and interpreter
/// arithmetic fidelity.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "estimators/MarkovIntra.h"
#include "metrics/WeightMatching.h"
#include "profile/Profile.h"
#include "support/Prng.h"

#include <gtest/gtest.h>

using namespace sest;
using namespace sest::test;

namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

std::vector<double> randomWeights(Prng &R, size_t N, double ZeroFraction) {
  std::vector<double> V(N);
  for (double &X : V) {
    if (R.nextDouble() < ZeroFraction)
      X = 0;
    else
      X = R.nextDouble() * 100.0;
  }
  return V;
}

//===----------------------------------------------------------------------===//
// Weight-matching laws
//===----------------------------------------------------------------------===//

TEST_P(SeededTest, WeightMatchingBoundedInUnitInterval) {
  Prng R(GetParam());
  for (int Trial = 0; Trial < 50; ++Trial) {
    size_t N = 1 + R.nextBelow(40);
    auto Est = randomWeights(R, N, 0.3);
    auto Act = randomWeights(R, N, 0.3);
    double Cutoff = R.nextDouble();
    double S = weightMatchingScore(Est, Act, Cutoff);
    EXPECT_GE(S, 0.0);
    EXPECT_LE(S, 1.0);
  }
}

TEST_P(SeededTest, WeightMatchingPerfectOnSelf) {
  Prng R(GetParam());
  for (int Trial = 0; Trial < 50; ++Trial) {
    size_t N = 1 + R.nextBelow(40);
    auto Act = randomWeights(R, N, 0.2);
    double Cutoff = 0.05 + R.nextDouble() * 0.9;
    EXPECT_NEAR(weightMatchingScore(Act, Act, Cutoff), 1.0, 1e-12);
  }
}

TEST_P(SeededTest, WeightMatchingFullCutoffIsPerfect) {
  Prng R(GetParam());
  size_t N = 1 + R.nextBelow(30);
  auto Est = randomWeights(R, N, 0.3);
  auto Act = randomWeights(R, N, 0.3);
  EXPECT_NEAR(weightMatchingScore(Est, Act, 1.0), 1.0, 1e-12);
}

TEST_P(SeededTest, WeightMatchingInvariantUnderEstimateScaling) {
  // Only the *ranking* of the estimate matters.
  Prng R(GetParam());
  size_t N = 2 + R.nextBelow(30);
  auto Est = randomWeights(R, N, 0.0);
  auto Act = randomWeights(R, N, 0.3);
  double Cutoff = 0.05 + R.nextDouble() * 0.9;
  auto Scaled = Est;
  double Factor = 0.5 + R.nextDouble() * 10.0;
  for (double &V : Scaled)
    V *= Factor;
  EXPECT_NEAR(weightMatchingScore(Est, Act, Cutoff),
              weightMatchingScore(Scaled, Act, Cutoff), 1e-12);
}

//===----------------------------------------------------------------------===//
// Aggregation laws
//===----------------------------------------------------------------------===//

Profile randomProfile(Prng &R, size_t Blocks) {
  Profile P;
  P.Functions.resize(1);
  auto &F = P.Functions[0];
  F.EntryCount = 1 + R.nextBelow(10);
  F.BlockCounts = randomWeights(R, Blocks, 0.2);
  F.ArcCounts.assign(Blocks, {});
  P.CallSiteCounts = randomWeights(R, 3, 0.0);
  return P;
}

TEST_P(SeededTest, AggregationOfIdenticalProfilesPreservesRatios) {
  Prng R(GetParam());
  Profile P = randomProfile(R, 8);
  if (P.totalBlockCount() <= 0)
    return;
  std::vector<Profile> Copies = {P, P, P};
  Profile Agg = aggregateProfiles(Copies);
  for (size_t B = 0; B < 8; ++B)
    EXPECT_NEAR(Agg.Functions[0].BlockCounts[B],
                3.0 * P.Functions[0].BlockCounts[B], 1e-6);
}

TEST_P(SeededTest, AggregationGivesEqualVotesToEachInput) {
  // A profile scaled by any constant contributes identically.
  Prng R(GetParam());
  Profile P = randomProfile(R, 6);
  if (P.totalBlockCount() <= 0)
    return;
  Profile Q = P;
  double Factor = 1.0 + R.nextDouble() * 20.0;
  for (double &C : Q.Functions[0].BlockCounts)
    C *= Factor;
  Q.Functions[0].EntryCount *= Factor;
  for (double &C : Q.CallSiteCounts)
    C *= Factor;

  Profile AggPP = aggregateProfiles(std::vector<Profile>{P, P});
  Profile AggPQ = aggregateProfiles(std::vector<Profile>{P, Q});
  // Ratios between blocks must be identical in both aggregates.
  const auto &A = AggPP.Functions[0].BlockCounts;
  const auto &B = AggPQ.Functions[0].BlockCounts;
  for (size_t I = 1; I < A.size(); ++I) {
    if (A[0] <= 0 || B[0] <= 0)
      continue;
    EXPECT_NEAR(A[I] / A[0], B[I] / B[0], 1e-9);
  }
}

//===----------------------------------------------------------------------===//
// Markov solution laws on randomized counted programs
//===----------------------------------------------------------------------===//

/// Builds a little program whose shape depends on the seed: nested loops
/// and conditionals with varying counts.
std::string randomProgram(Prng &R) {
  std::string Body;
  unsigned Loops = 1 + R.nextBelow(3);
  for (unsigned L = 0; L < Loops; ++L) {
    std::string I = "i" + std::to_string(L);
    Body += "  for (int " + I + " = 0; " + I + " < " +
            std::to_string(2 + R.nextBelow(20)) + "; " + I + "++) {\n";
    if (R.nextBelow(2))
      Body += "    if (" + I + " % " + std::to_string(2 + R.nextBelow(5)) +
              " == 0) s += " + I + "; else s -= 1;\n";
    else
      Body += "    s += " + I + ";\n";
  }
  for (unsigned L = 0; L < Loops; ++L)
    Body += "  }\n";
  return "int f() { int s = 0;\n" + Body +
         "  return s; }\nint main() { return f() != -12345; }";
}

TEST_P(SeededTest, MarkovFrequenciesNonNegativeAndConserving) {
  Prng R(GetParam());
  for (int Trial = 0; Trial < 5; ++Trial) {
    auto C = compile(randomProgram(R));
    ASSERT_TRUE(C);
    const Cfg *G = C->cfg("f");
    MarkovIntraResult M = markovBlockFrequencies(*G, MarkovIntraConfig());
    for (const auto &B : G->blocks()) {
      EXPECT_GE(M.BlockFrequencies[B->id()], 0.0);
      // f(b) = entry + inflow.
      double In = B.get() == G->entry() ? 1.0 : 0.0;
      for (const auto &P : G->blocks())
        for (size_t S = 0; S < P->successors().size(); ++S)
          if (P->successors()[S] == B.get())
            In += M.ArcFrequencies[P->id()][S];
      EXPECT_NEAR(In, M.BlockFrequencies[B->id()], 1e-6) << B->label();
    }
    // Total return flow equals the entry flow of 1.
    double ReturnFlow = 0;
    for (const auto &B : G->blocks())
      if (B->terminator() == TerminatorKind::Return)
        ReturnFlow += M.BlockFrequencies[B->id()];
    EXPECT_NEAR(ReturnFlow, 1.0, 1e-6);
  }
}

TEST_P(SeededTest, ActualProfilesSatisfyReturnFlowToo) {
  Prng R(GetParam());
  auto C = compile(randomProgram(R));
  ASSERT_TRUE(C);
  RunResult Res = run(*C);
  const Cfg *G = C->cfg("f");
  const FunctionDecl *F = C->fn("f");
  const FunctionProfile &FP = Res.TheProfile.Functions[F->functionId()];
  double ReturnFlow = 0;
  for (const auto &B : G->blocks())
    if (B->terminator() == TerminatorKind::Return)
      ReturnFlow += FP.BlockCounts[B->id()];
  EXPECT_DOUBLE_EQ(ReturnFlow, FP.EntryCount);
}

//===----------------------------------------------------------------------===//
// Interpreter arithmetic fidelity
//===----------------------------------------------------------------------===//

TEST_P(SeededTest, InterpreterMatchesHostArithmetic) {
  Prng R(GetParam());
  for (int Trial = 0; Trial < 20; ++Trial) {
    int64_t A = R.nextInRange(-1000, 1000);
    int64_t B = R.nextInRange(-1000, 1000);
    if (B == 0)
      B = 7;
    int64_t Expected = (A + B) * 3 - A / B + (A % B) + ((A < B) ? 10 : 20) +
                       ((A ^ B) & 0xFF);
    RunResult Res = compileAndRun(
        "int main() { int a = read_int(); int b = read_int();\n"
        "  return (a + b) * 3 - a / b + (a % b) + ((a < b) ? 10 : 20) +\n"
        "         ((a ^ b) & 0xFF); }",
        std::to_string(A) + " " + std::to_string(B));
    EXPECT_EQ(Res.ExitCode, Expected) << "a=" << A << " b=" << B;
  }
}

TEST_P(SeededTest, InterpreterShiftAndCompoundOpsMatchHost) {
  Prng R(GetParam());
  for (int Trial = 0; Trial < 20; ++Trial) {
    int64_t A = R.nextInRange(0, 100000);
    int64_t S = R.nextInRange(0, 16);
    int64_t Expected = A;
    Expected <<= S;
    Expected >>= (S / 2);
    Expected |= 0x55;
    Expected &= 0xFFFFF;
    RunResult Res = compileAndRun(
        "int main() { int a = read_int(); int s = read_int();\n"
        "  a <<= s; a >>= s / 2; a |= 0x55; a &= 0xFFFFF;\n"
        "  return a; }",
        std::to_string(A) + " " + std::to_string(S));
    EXPECT_EQ(Res.ExitCode, Expected);
  }
}

//===----------------------------------------------------------------------===//
// Frontend robustness
//===----------------------------------------------------------------------===//

TEST_P(SeededTest, ParserNeverCrashesOnGarbage) {
  Prng R(GetParam());
  const char Alphabet[] =
      "abcxyz0123456789 \t\n(){}[];,.*&|^%+-<>=!?:\"'/intcharwhile";
  for (int Trial = 0; Trial < 30; ++Trial) {
    size_t Len = R.nextBelow(200);
    std::string Junk;
    for (size_t I = 0; I < Len; ++I)
      Junk += Alphabet[R.nextBelow(sizeof(Alphabet) - 1)];
    AstContext Ctx;
    DiagnosticEngine Diags;
    // Must terminate without crashing; success or failure both fine.
    (void)parseAndAnalyze(Junk, Ctx, Diags);
  }
}

TEST_P(SeededTest, ParserNeverCrashesOnTruncatedPrograms) {
  Prng R(GetParam());
  const std::string Program =
      "struct node { int v; struct node *next; };\n"
      "int f(int *p, int n) { int s = 0;\n"
      "  while (n > 0) { if (p != NULL && n % 2 == 0) s++; n--; }\n"
      "  switch (s) { case 1: return 1; default: break; }\n"
      "  return s; }\n"
      "int main() { int x; return f(&x, 9); }\n";
  for (int Trial = 0; Trial < 30; ++Trial) {
    size_t Cut = R.nextBelow(Program.size());
    AstContext Ctx;
    DiagnosticEngine Diags;
    (void)parseAndAnalyze(Program.substr(0, Cut), Ctx, Diags);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

} // namespace

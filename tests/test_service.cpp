//===- tests/test_service.cpp - Analysis service unit tests ----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-correctness edge cases for the sestd analysis service
/// (src/service/): the sharded LRU tiers in isolation, key separation
/// (a one-token source edit misses every tier; identical source under
/// different options never collides), and the determinism contract —
/// responses byte-identical cold vs warm, under eviction churn, and
/// across --jobs values.
///
//===----------------------------------------------------------------------===//

#include "backend/Native.h"
#include "obs/EventLog.h"
#include "obs/Export.h"
#include "obs/Telemetry.h"
#include "service/Cache.h"
#include "service/Service.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace sest;
using namespace sest::service;

namespace {

//===----------------------------------------------------------------------===//
// ShardedCache
//===----------------------------------------------------------------------===//

std::shared_ptr<const void> box(int V) {
  return std::make_shared<int>(V);
}

TEST(ShardedCache, HitAfterPutAndMissCounters) {
  ShardedCache C("t", 1024, 1);
  EXPECT_EQ(C.get(1), nullptr);
  C.put(1, box(41), 100);
  auto V = C.getAs<int>(1);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(*V, 41);
  CacheTierStats S = C.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Bytes, 100u);
}

TEST(ShardedCache, DuplicatePutKeepsResidentValue) {
  ShardedCache C("t", 1024, 1);
  C.put(1, box(1), 100);
  C.put(1, box(2), 100); // deterministic artifacts: first insert wins
  EXPECT_EQ(*C.getAs<int>(1), 1);
  EXPECT_EQ(C.stats().Bytes, 100u);
  EXPECT_EQ(C.stats().Entries, 1u);
}

TEST(ShardedCache, EvictsLeastRecentlyUsedWithinBudget) {
  ShardedCache C("t", 300, 1);
  C.put(1, box(1), 100);
  C.put(2, box(2), 100);
  C.put(3, box(3), 100);
  ASSERT_NE(C.get(1), nullptr); // 1 is now most recent
  C.put(4, box(4), 100);        // evicts 2, the least recent
  EXPECT_EQ(C.get(2), nullptr);
  EXPECT_NE(C.get(1), nullptr);
  EXPECT_NE(C.get(3), nullptr);
  EXPECT_NE(C.get(4), nullptr);
  EXPECT_EQ(C.stats().Evictions, 1u);
  EXPECT_LE(C.stats().Bytes, 300u);
}

TEST(ShardedCache, EvictedValueSurvivesWhileHeld) {
  ShardedCache C("t", 100, 1);
  C.put(1, box(7), 100);
  auto Held = C.getAs<int>(1);
  C.put(2, box(8), 100); // evicts key 1
  EXPECT_EQ(C.get(1), nullptr);
  ASSERT_NE(Held, nullptr); // the holder keeps the artifact alive
  EXPECT_EQ(*Held, 7);
}

TEST(ShardedCache, OversizedValueIsNotAdmitted) {
  ShardedCache C("t", 100, 1);
  C.put(1, box(1), 101);
  EXPECT_EQ(C.get(1), nullptr);
  EXPECT_EQ(C.stats().Entries, 0u);
}

TEST(ShardedCache, ZeroBudgetDisablesCaching) {
  ShardedCache C("t", 0, 4);
  C.put(1, box(1), 0); // even zero-byte values are refused
  EXPECT_EQ(C.get(1), nullptr);
  EXPECT_EQ(C.stats().Entries, 0u);
}

TEST(ShardedCache, ClearDropsEntriesButKeepsCounters) {
  ShardedCache C("t", 1024, 2);
  C.put(1, box(1), 10);
  C.put(2, box(2), 10);
  ASSERT_NE(C.get(1), nullptr);
  C.clear();
  EXPECT_EQ(C.stats().Entries, 0u);
  EXPECT_EQ(C.stats().Bytes, 0u);
  EXPECT_EQ(C.stats().Hits, 1u); // counters keep counting
  EXPECT_EQ(C.get(2), nullptr);
}

//===----------------------------------------------------------------------===//
// Service cache correctness
//===----------------------------------------------------------------------===//

// A program with a loop, a branch, and a call — touches every tier.
const char *SourceA =
    "int triangle(int n) { int s = 0; int i; "
    "for (i = 1; i <= n; i++) s += i; return s; } "
    "int main() { int n = read_int(); print_int(triangle(n)); "
    "return 0; }";
// One token differs from SourceA: `i <= n` became `i < n`.
const char *SourceB =
    "int triangle(int n) { int s = 0; int i; "
    "for (i = 1; i < n; i++) s += i; return s; } "
    "int main() { int n = read_int(); print_int(triangle(n)); "
    "return 0; }";

std::string estimateRequest(const char *Source,
                            const std::string &OptionsJson = "",
                            bool Blocks = false) {
  std::string R = "{\"op\":\"estimate\",\"source\":\"";
  R += jsonEscape(Source);
  R += "\"";
  if (Blocks)
    R += ",\"blocks\":true";
  if (!OptionsJson.empty())
    R += ",\"options\":" + OptionsJson;
  R += "}";
  return R;
}

uint64_t totalMisses(const Service &S) {
  uint64_t N = 0;
  for (const ShardedCache *C : S.caches().all())
    N += C->stats().Misses;
  return N;
}

std::string optimizeRequest(const char *Source) {
  return std::string("{\"op\":\"optimize\",\"source\":\"") +
         jsonEscape(Source) + "\",\"passes\":\"all\"}";
}

TEST(Service, OneTokenEditMissesEveryTier) {
  Service S;
  // optimize walks every tier except native (ast, cfg, branch, solve,
  // plan, response); only engine:"native" reports touch that one.
  EXPECT_TRUE(S.handle(optimizeRequest(SourceA)).find("\"ok\":true") !=
              std::string::npos);
  // Every tier now holds SourceA's artifacts. The edited program must
  // hit NONE of them: each tier's miss counter advances.
  std::vector<CacheTierStats> Before;
  for (const ShardedCache *C : S.caches().all())
    Before.push_back(C->stats());
  EXPECT_TRUE(S.handle(optimizeRequest(SourceB)).find("\"ok\":true") !=
              std::string::npos);
  size_t I = 0;
  for (const ShardedCache *C : S.caches().all()) {
    if (C->tier() == "native") {
      ++I;
      continue;
    }
    CacheTierStats After = C->stats();
    EXPECT_GT(After.Misses, Before[I].Misses)
        << "tier '" << C->tier()
        << "' served a stale artifact for an edited program";
    EXPECT_EQ(After.Hits, Before[I].Hits)
        << "tier '" << C->tier()
        << "' hit on a program it never saw";
    ++I;
  }
}

TEST(Service, DifferentOptionsDoNotCollide) {
  Service S;
  std::string R1 = S.handle(estimateRequest(SourceA, "", /*Blocks=*/true));
  // Same source, very different loop count: the block estimates must
  // change, which they cannot if the solve tier collides the two keys.
  std::string R2 = S.handle(estimateRequest(
      SourceA, "{\"loop_iterations\":100}", /*Blocks=*/true));
  EXPECT_NE(R1, R2);
  // Distinct entries for both configurations in the options-keyed
  // tiers; the source-keyed tiers (ast, cfg) are shared.
  EXPECT_EQ(S.caches().Solve.stats().Entries, 2u);
  EXPECT_EQ(S.caches().Branch.stats().Entries, 2u);
  EXPECT_EQ(S.caches().Ast.stats().Entries, 1u);
  EXPECT_EQ(S.caches().Cfg.stats().Entries, 1u);
  // And an option that only affects the inter-procedural stage shares
  // the branch tier but not the solve tier.
  S.handle(estimateRequest(SourceA, "{\"inter\":\"direct\"}"));
  EXPECT_EQ(S.caches().Solve.stats().Entries, 3u);
  EXPECT_EQ(S.caches().Branch.stats().Entries, 2u);
}

TEST(Service, WarmResponsesAreByteIdentical) {
  Service S;
  std::vector<std::string> Requests = {
      std::string("{\"id\":1,\"op\":\"parse\",\"source\":\"") +
          jsonEscape(SourceA) + "\"}",
      estimateRequest(SourceA),
      estimateRequest(SourceA, "{\"intra\":\"markov\"}"),
      std::string("{\"op\":\"optimize\",\"source\":\"") +
          jsonEscape(SourceA) + "\",\"passes\":\"all\"}",
      std::string("{\"op\":\"report\",\"source\":\"") +
          jsonEscape(SourceA) + "\",\"input\":\"12\"}",
  };
  std::vector<std::string> Cold = S.handleBatch(Requests);
  std::vector<std::string> Warm = S.handleBatch(Requests);
  ASSERT_EQ(Cold.size(), Warm.size());
  for (size_t I = 0; I < Cold.size(); ++I) {
    EXPECT_TRUE(Cold[I].find("\"ok\":true") != std::string::npos)
        << Cold[I];
    EXPECT_EQ(Cold[I], Warm[I]) << "request " << I;
  }
  // The second pass was actually served warm.
  EXPECT_GT(S.caches().Response.stats().Hits, 0u);
}

/// The `tune` verb: cold, warm, and across job counts the report must
/// be byte-identical, and a warm replay must hit the plan tier (where
/// tune documents live under their own key domain).
TEST(Service, TuneVerbIsByteIdenticalColdWarmAndAcrossJobs) {
  std::string Req = std::string("{\"op\":\"tune\",\"source\":\"") +
                    jsonEscape(SourceA) +
                    "\",\"input\":\"12\",\"budget\":3}";
  Service S;
  std::string Cold = S.handle(Req);
  EXPECT_NE(Cold.find("\"ok\":true"), std::string::npos) << Cold;
  EXPECT_NE(Cold.find("sest-tune-report/1"), std::string::npos);
  uint64_t PlanHitsBefore = S.caches().Plan.stats().Hits;
  std::string Warm = S.handle(Req);
  EXPECT_EQ(Cold, Warm);
  // Warm was served from a tier (response or plan), not recomputed.
  EXPECT_GT(S.caches().Response.stats().Hits +
                S.caches().Plan.stats().Hits,
            PlanHitsBefore);

  ServiceOptions O8;
  O8.Jobs = 8;
  Service S8(O8);
  EXPECT_EQ(S8.handle(Req), Cold);

  // Unknown oracles and a native engine are rejected cleanly.
  EXPECT_NE(S.handle(std::string("{\"op\":\"tune\",\"source\":\"") +
                     jsonEscape(SourceA) + "\",\"oracles\":\"bogus\"}")
                .find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(S.handle(std::string("{\"op\":\"tune\",\"source\":\"") +
                     jsonEscape(SourceA) + "\",\"engine\":\"native\"}")
                .find("\"ok\":false"),
            std::string::npos);
}

std::string reportRequest(const char *Source, const std::string &Engine) {
  std::string R = std::string("{\"op\":\"report\",\"source\":\"") +
                  jsonEscape(Source) + "\",\"input\":\"12\"";
  if (!Engine.empty())
    R += ",\"engine\":\"" + Engine + "\"";
  R += "}";
  return R;
}

/// engine:"bytecode" must produce the identical report to the default
/// ast engine — the engines are bit-identical — differing only in the
/// echoed engine field, and the two must not alias one response entry.
TEST(Service, ReportEngineBytecodeMatchesAstModuloEcho) {
  Service S;
  std::string Ast = S.handle(reportRequest(SourceA, ""));
  std::string Bc = S.handle(reportRequest(SourceA, "bytecode"));
  EXPECT_NE(Ast, Bc); // distinct cache keys, distinct echo
  size_t Pos = Bc.find("\"engine\":\"bytecode\"");
  ASSERT_NE(Pos, std::string::npos) << Bc;
  EXPECT_EQ(Ast, Bc.replace(Pos, 19, "\"engine\":\"ast\""));
  // An explicit engine:"ast" is the same semantic request as the
  // default and must be served from the response tier.
  uint64_t Hits = S.caches().Response.stats().Hits;
  EXPECT_EQ(Ast, S.handle(reportRequest(SourceA, "ast")));
  EXPECT_GT(S.caches().Response.stats().Hits, Hits);
}

TEST(Service, ReportEngineNativeUsesArtifactTier) {
  std::string Why;
  if (!backend::nativeEngineAvailable(&Why))
    GTEST_SKIP() << "native tier unavailable: " << Why;
  Service S;
  std::string Ast = S.handle(reportRequest(SourceA, ""));
  std::string Native = S.handle(reportRequest(SourceA, "native"));
  std::string Normalized = Native;
  size_t Pos = Normalized.find("\"engine\":\"native\"");
  ASSERT_NE(Pos, std::string::npos) << Native;
  EXPECT_EQ(Ast, Normalized.replace(Pos, 17, "\"engine\":\"ast\""));
  // The artifact landed in the native tier, and a repeat serves it (and
  // the whole response) warm and byte-identically.
  EXPECT_EQ(S.caches().Native.stats().Entries, 1u);
  EXPECT_EQ(S.caches().Native.stats().Misses, 1u);
  EXPECT_EQ(Native, S.handle(reportRequest(SourceA, "native")));
  EXPECT_GT(S.caches().Response.stats().Hits, 0u);
}

TEST(Service, ReportRejectsUnknownEngine) {
  Service S;
  std::string R = S.handle(reportRequest(SourceA, "jit"));
  EXPECT_NE(R.find("\"ok\":false"), std::string::npos) << R;
  EXPECT_NE(R.find("engine must be"), std::string::npos) << R;
}

TEST(Service, EvictionChurnCannotChangeResponses) {
  // Budget so small the tiers evict constantly (but still admit one
  // entry at a time); alternate two programs so every request evicts
  // the other's artifacts.
  ServiceOptions Tiny;
  Tiny.CacheBudgetBytes = 6 * 16 * 1024; // ~16 KiB per tier
  Tiny.CacheShards = 1;
  Service Churn(Tiny);
  Service Roomy; // default budget: no eviction
  for (int Round = 0; Round < 3; ++Round)
    for (const char *Src : {SourceA, SourceB}) {
      std::string Req = estimateRequest(Src);
      EXPECT_EQ(Churn.handle(Req), Roomy.handle(Req));
    }
}

TEST(Service, DisabledCacheMatchesEnabledCache) {
  ServiceOptions Off;
  Off.CacheBudgetBytes = 0;
  Service NoCache(Off);
  Service Cached;
  for (int Round = 0; Round < 2; ++Round)
    for (const char *Src : {SourceA, SourceB}) {
      std::string Req = estimateRequest(Src);
      EXPECT_EQ(NoCache.handle(Req), Cached.handle(Req));
    }
  uint64_t Entries = 0;
  for (const ShardedCache *C : NoCache.caches().all())
    Entries += C->stats().Entries;
  EXPECT_EQ(Entries, 0u);
}

TEST(Service, JobsOneAndEightAreByteIdentical) {
  // A batch of distinct + repeated requests, executed serially and on
  // eight workers: responses must match byte for byte, in order.
  std::vector<std::string> Requests;
  for (int I = 0; I < 24; ++I) {
    const char *Src = I % 2 ? SourceA : SourceB;
    switch (I % 4) {
    case 0:
      Requests.push_back(estimateRequest(Src));
      break;
    case 1:
      Requests.push_back(estimateRequest(Src, "{\"intra\":\"markov\"}"));
      break;
    case 2:
      Requests.push_back(std::string("{\"op\":\"parse\",\"source\":\"") +
                         jsonEscape(Src) + "\"}");
      break;
    default:
      Requests.push_back(
          std::string("{\"op\":\"optimize\",\"source\":\"") +
          jsonEscape(Src) + "\"}");
      break;
    }
  }
  ServiceOptions J1, J8;
  J1.Jobs = 1;
  J8.Jobs = 8;
  Service S1(J1), S8(J8);
  std::vector<std::string> Out1 = S1.handleBatch(Requests);
  std::vector<std::string> Out8 = S8.handleBatch(Requests);
  ASSERT_EQ(Out1.size(), Out8.size());
  for (size_t I = 0; I < Out1.size(); ++I)
    EXPECT_EQ(Out1[I], Out8[I]) << "request " << I;
}

TEST(Service, MalformedRequestsFailCleanly) {
  Service S;
  EXPECT_NE(S.handle("not json").find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(S.handle("{\"op\":\"frobnicate\"}").find("unknown op"),
            std::string::npos);
  EXPECT_NE(S.handle("{\"op\":\"estimate\"}").find("'source'"),
            std::string::npos);
  EXPECT_NE(S.handle(estimateRequest(SourceA, "{\"bogus\":1}"))
                .find("unknown option"),
            std::string::npos);
  // A program that does not parse is an ok:false response with the
  // diagnostics — and it is cached like any other deterministic answer.
  std::string Bad = S.handle(estimateRequest("int main( {"));
  EXPECT_NE(Bad.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(S.handle(estimateRequest("int main( {")), Bad);
}

TEST(Service, ProgramHashIsSourceIdentity) {
  Service S;
  std::string RespA = S.handle(estimateRequest(SourceA));
  std::string RespB = S.handle(estimateRequest(SourceB));
  auto HashOf = [](const std::string &Resp) {
    size_t At = Resp.find("\"program_hash\":\"");
    EXPECT_NE(At, std::string::npos) << Resp;
    return Resp.substr(At + 16, 16);
  };
  EXPECT_NE(HashOf(RespA), HashOf(RespB));
  // Same source under different options: same identity.
  EXPECT_EQ(HashOf(RespA),
            HashOf(S.handle(
                estimateRequest(SourceA, "{\"inter\":\"direct\"}"))));
}

TEST(Service, ShutdownAndStats) {
  Service S;
  S.handle(estimateRequest(SourceA));
  S.handle(estimateRequest(SourceA));
  std::string Stats = S.handle("{\"op\":\"stats\"}");
  EXPECT_NE(Stats.find("sest-service-stats/1"), std::string::npos);
  EXPECT_NE(Stats.find("\"response\":{\"hit\":1"), std::string::npos)
      << Stats;
  EXPECT_FALSE(S.shutdownRequested());
  EXPECT_NE(S.handle("{\"op\":\"shutdown\"}").find("\"shutting_down\":true"),
            std::string::npos);
  EXPECT_TRUE(S.shutdownRequested());
}

//===----------------------------------------------------------------------===//
// Metrics exposition, health, and request spans
//===----------------------------------------------------------------------===//

/// The exposition string out of one `metrics` response line.
std::string expositionOf(const std::string &Response) {
  auto Doc = parseJson(Response);
  EXPECT_TRUE(Doc.has_value()) << Response;
  if (!Doc)
    return "";
  const JsonValue *Result = Doc->find("result");
  const JsonValue *Expo = Result ? Result->find("exposition") : nullptr;
  EXPECT_TRUE(Expo && Expo->isString()) << Response;
  return Expo && Expo->isString() ? Expo->StringVal : "";
}

/// A mixed request batch ending in a deterministic-scope metrics probe.
std::vector<std::string> metricsProbeBatch() {
  std::vector<std::string> Requests;
  for (int I = 0; I < 12; ++I) {
    const char *Src = I % 2 ? SourceA : SourceB;
    if (I % 3 == 0)
      Requests.push_back(estimateRequest(Src));
    else if (I % 3 == 1)
      Requests.push_back(std::string("{\"op\":\"parse\",\"source\":\"") +
                         jsonEscape(Src) + "\"}");
    else
      Requests.push_back(optimizeRequest(Src));
  }
  Requests.push_back("not even json"); // counts into service.requests.bad
  Requests.push_back("{\"op\":\"metrics\",\"scope\":\"deterministic\"}");
  return Requests;
}

TEST(Service, MetricsDeterministicScopeIsByteIdenticalAcrossJobsAndCache) {
  // The deterministic-scope metrics answer is part of the byte contract:
  // identical at every Jobs value and with the cache disabled, and a
  // mid-batch probe reflects exactly the requests that preceded it.
  auto Run = [](unsigned Jobs, size_t CacheBytes) {
    ServiceOptions SO;
    SO.Jobs = Jobs;
    SO.CacheBudgetBytes = CacheBytes;
    obs::Telemetry Tele;
    Tele.install();
    Service S(SO);
    std::vector<std::string> Out = S.handleBatch(metricsProbeBatch());
    Tele.uninstall();
    return Out.back();
  };
  std::string Jobs1 = Run(1, 256u << 20);
  EXPECT_EQ(Jobs1, Run(8, 256u << 20));
  EXPECT_EQ(Jobs1, Run(8, 0));
  EXPECT_EQ(Jobs1, Run(3, 256u << 20));

  std::string Expo = expositionOf(Jobs1);
  auto Doc = obs::parsePrometheus(Expo);
  ASSERT_TRUE(Doc.has_value()) << Expo;
  // 12 pipeline requests + 1 bad line + the probe itself.
  EXPECT_EQ(Doc->valueOr("sest_service_requests", -1), 14.0);
  EXPECT_EQ(Doc->valueOr("sest_service_requests_bad", -1), 1.0);
  EXPECT_EQ(Doc->valueOr("sest_service_requests_estimate", -1), 4.0);
  // Nothing live may leak into the deterministic scope.
  EXPECT_EQ(Doc->find("sest_service_request_us_count"), nullptr);
  EXPECT_EQ(Doc->find("sest_service_cache_ast_hits"), nullptr);
  EXPECT_EQ(Doc->find("sest_service_batches"), nullptr);
  EXPECT_TRUE(obs::lintPrometheus(Expo).empty());
}

TEST(Service, MetricsLiveScopeLintsCleanWithCacheGauges) {
  obs::Telemetry Tele;
  Tele.install();
  Service S;
  S.handle(estimateRequest(SourceA));
  S.handle(estimateRequest(SourceA));
  std::string Expo = expositionOf(S.handle("{\"op\":\"metrics\"}"));
  Tele.uninstall();

  auto Findings = obs::lintPrometheus(Expo);
  EXPECT_TRUE(Findings.empty()) << Findings.front();
  auto Doc = obs::parsePrometheus(Expo);
  ASSERT_TRUE(Doc.has_value());
  // Live scope carries the per-tier cache gauges and latency families.
  EXPECT_EQ(Doc->valueOr("sest_service_cache_response_hits", -1), 1.0);
  EXPECT_EQ(Doc->valueOr("sest_service_cache_response_misses", -1), 1.0);
  EXPECT_GE(Doc->valueOr("sest_service_cache_ast_bytes", -1), 1.0);
  EXPECT_EQ(Doc->valueOr("sest_service_request_us_count", -1), 2.0);
  EXPECT_EQ(Doc->Types.at("sest_service_cache_ast_hits"), "gauge");
}

TEST(Service, MetricsWithoutAmbientTelemetryStillServesCacheGauges) {
  // No Telemetry installed (a bare embedder): the exposition has no
  // registry series but still reports the tiers' lock-free totals.
  Service S;
  S.handle(estimateRequest(SourceA));
  std::string Expo = expositionOf(S.handle("{\"op\":\"metrics\"}"));
  auto Doc = obs::parsePrometheus(Expo);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("sest_service_requests"), nullptr);
  EXPECT_EQ(Doc->valueOr("sest_service_cache_ast_misses", -1), 1.0);
  EXPECT_TRUE(obs::lintPrometheus(Expo).empty());
}

TEST(Service, MetricsRejectsUnknownScope) {
  Service S;
  std::string Resp = S.handle("{\"op\":\"metrics\",\"scope\":\"weekly\"}");
  EXPECT_NE(Resp.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(Resp.find("scope"), std::string::npos);
}

TEST(Service, HealthVerbEchoesConfig) {
  ServiceOptions SO;
  SO.Jobs = 4;
  Service S(SO);
  std::string Resp = S.handle("{\"op\":\"health\"}");
  EXPECT_NE(Resp.find("sest-service-health/1"), std::string::npos);
  EXPECT_NE(Resp.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(Resp.find("\"accepting\":true"), std::string::npos);
  EXPECT_NE(Resp.find("\"jobs\":4"), std::string::npos);
  EXPECT_NE(Resp.find("\"cache_enabled\":true"), std::string::npos);
  S.handle("{\"op\":\"shutdown\"}");
  EXPECT_NE(S.handle("{\"op\":\"health\"}").find("\"accepting\":false"),
            std::string::npos);
}

TEST(Service, StatsCarriesPerTierGauges) {
  Service S;
  S.handle(estimateRequest(SourceA));
  S.handle(estimateRequest(SourceA));
  std::string Stats = S.handle("{\"op\":\"stats\"}");
  auto Doc = parseJson(Stats);
  ASSERT_TRUE(Doc.has_value()) << Stats;
  const JsonValue *Result = Doc->find("result");
  ASSERT_NE(Result, nullptr);
  const JsonValue *Gauges = Result->find("gauges");
  ASSERT_NE(Gauges, nullptr) << Stats;
  auto Gauge = [&](const char *Name) {
    const JsonValue *G = Gauges->find(Name);
    return G && G->isNumber() ? G->NumberVal : -1.0;
  };
  EXPECT_EQ(Gauge("service.cache.response.hits"), 1.0);
  EXPECT_EQ(Gauge("service.cache.response.misses"), 1.0);
  EXPECT_EQ(Gauge("service.cache.ast.entries"), 1.0);
  EXPECT_EQ(Gauge("service.cache.ast.evictions"), 0.0);
  EXPECT_GE(Gauge("service.cache.ast.bytes"), 1.0);
}

TEST(Service, RequestSpansAreByteIdenticalAcrossJobs) {
  // Each request gets a req:<ordinal> span: enqueue -> dequeue ->
  // execute -> respond, merged in request order. With one distinct
  // source per request (so no cross-request cache races), the event
  // stream is byte-identical across Jobs values.
  auto Run = [](unsigned Jobs) {
    std::vector<std::string> Requests;
    for (int I = 0; I < 8; ++I)
      Requests.push_back(estimateRequest(
          ("int main() { return " + std::to_string(I) + "; }").c_str()));
    ServiceOptions SO;
    SO.Jobs = Jobs;
    obs::EventLog Log;
    Log.install();
    Service S(SO);
    S.handleBatch(Requests);
    Log.uninstall();
    return Log.jsonl();
  };
  std::string Serial = Run(1);
  EXPECT_EQ(Serial, Run(8));

  // Span structure: every lifecycle kind present, tagged req:<N>.
  for (const char *Kind :
       {"service.request.enqueue", "service.request.dequeue",
        "service.request.execute", "service.request.respond"})
    EXPECT_NE(Serial.find(Kind), std::string::npos) << Kind;
  EXPECT_NE(Serial.find("\"prov\":\"req:0\""), std::string::npos);
  EXPECT_NE(Serial.find("\"prov\":\"req:7\""), std::string::npos);
  // Cache-outcome annotations ride on the spans.
  EXPECT_NE(Serial.find("service.request.cache"), std::string::npos);
  EXPECT_NE(Serial.find("\"outcome\":\"miss\""), std::string::npos);

  // All enqueues are emitted at intake, before any execution.
  size_t LastEnqueue = Serial.rfind("service.request.enqueue");
  size_t FirstExecute = Serial.find("service.request.execute");
  ASSERT_NE(LastEnqueue, std::string::npos);
  ASSERT_NE(FirstExecute, std::string::npos);
  EXPECT_LT(LastEnqueue, FirstExecute);
}

TEST(Service, WarmSpansRecordCacheHits) {
  obs::EventLog Log;
  Log.install();
  Service S;
  S.handle(estimateRequest(SourceA));
  S.handle(estimateRequest(SourceA));
  Log.uninstall();
  std::string Events = Log.jsonl();
  EXPECT_NE(Events.find("\"outcome\":\"hit\""), std::string::npos);
  EXPECT_NE(Events.find("\"tier\":\"response\""), std::string::npos);
}

} // namespace
//===- tests/test_sparse_markov.cpp - Sparse-vs-dense solver tests ---------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests for the sparse SCC-structured Markov solver
/// against the dense Gaussian-elimination oracle, and determinism tests
/// for the parallel estimation pipeline:
///
///  - randomized transition graphs: sparse and dense solutions agree to
///    1e-9 on well-conditioned systems;
///  - repair paths: the per-SCC-repaired system reported through
///    EffectiveProb is fed back to the dense solver, whose solution must
///    match the sparse one (the repair changes the model, not the math);
///  - fallback paths: with repair disabled both tiers degrade to the
///    same uniform fallback;
///  - every suite program and randomized synthetic CFGs: intra and
///    inter estimates identical across tiers;
///  - --jobs sweep: estimates, accuracy reports, and non-timing
///    telemetry are identical for every worker count.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "estimators/Pipeline.h"
#include "obs/Telemetry.h"
#include "suite/SuiteRunner.h"
#include "suite/Synthetic.h"
#include "support/LinearSystem.h"
#include "support/Prng.h"
#include "support/SparseMarkov.h"

#include <gtest/gtest.h>

using namespace sest;
using namespace sest::test;

namespace {

constexpr double Tol = 1e-9;

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

/// A random transition graph over \p N nodes. With \p Leaky, every
/// row's probabilities sum to at most 0.98, which makes I - Pᵀ strictly
/// column-diagonally dominant — guaranteed solvable by both tiers.
/// Without it rows sum to exactly 1, so probability-1 cycles (singular
/// systems needing repair) occur naturally.
std::vector<SparseArc> randomGraph(Prng &R, size_t N, bool Leaky) {
  std::vector<SparseArc> Arcs;
  for (uint32_t V = 0; V < N; ++V) {
    size_t Out = R.nextBelow(4);
    if (!Out)
      continue;
    std::vector<double> W(Out);
    double Sum = 0;
    for (double &X : W) {
      X = 0.05 + R.nextDouble();
      Sum += X;
    }
    double Scale = (Leaky ? 0.98 : 1.0) / Sum;
    for (size_t S = 0; S < Out; ++S)
      Arcs.push_back(
          {V, static_cast<uint32_t>(R.nextBelow(N)), W[S] * Scale});
  }
  return Arcs;
}

Matrix denseFromArcs(size_t N, const std::vector<SparseArc> &Arcs) {
  Matrix P(N, N);
  for (const SparseArc &A : Arcs)
    P.at(A.From, A.To) += A.Prob;
  return P;
}

std::vector<double> randomEntry(Prng &R, size_t N) {
  std::vector<double> Entry(N, 0.0);
  Entry[0] = 1.0;
  if (N > 1 && R.nextBelow(2))
    Entry[R.nextBelow(N)] += R.nextDouble();
  return Entry;
}

void expectNear(const std::vector<double> &A, const std::vector<double> &B,
                const std::string &What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_NEAR(A[I], B[I], Tol) << What << " [" << I << "]";
}

//===----------------------------------------------------------------------===//
// Raw solver differential
//===----------------------------------------------------------------------===//

TEST_P(SeededTest, LeakyRandomGraphsMatchDense) {
  Prng R(GetParam());
  for (int Trial = 0; Trial < 40; ++Trial) {
    size_t N = 2 + R.nextBelow(60);
    std::vector<SparseArc> Arcs = randomGraph(R, N, /*Leaky=*/true);
    std::vector<double> Entry = randomEntry(R, N);

    SparseMarkovResult S = solveSparseMarkov(N, Arcs, Entry);
    auto D = solveMarkovFrequencies(denseFromArcs(N, Arcs), Entry);
    ASSERT_TRUE(S.Frequencies.has_value());
    ASSERT_TRUE(D.has_value());
    expectNear(*S.Frequencies, *D, "leaky trial " + std::to_string(Trial));

    // Without repair the effective probabilities are the input ones.
    ASSERT_EQ(S.EffectiveProb.size(), Arcs.size());
    for (size_t I = 0; I < Arcs.size(); ++I)
      EXPECT_EQ(S.EffectiveProb[I], Arcs[I].Prob);
    EXPECT_FALSE(S.Stats.Repaired);
  }
}

TEST_P(SeededTest, SingularParityWithDenseWhenRepairDisabled) {
  Prng R(GetParam());
  for (int Trial = 0; Trial < 40; ++Trial) {
    size_t N = 2 + R.nextBelow(30);
    std::vector<SparseArc> Arcs = randomGraph(R, N, /*Leaky=*/false);
    std::vector<double> Entry = randomEntry(R, N);

    SparseMarkovResult S = solveSparseMarkov(N, Arcs, Entry);
    auto D = solveMarkovFrequencies(denseFromArcs(N, Arcs), Entry);
    ASSERT_EQ(S.Frequencies.has_value(), D.has_value())
        << "solvability diverged on trial " << Trial;
    if (S.Frequencies)
      expectNear(*S.Frequencies, *D,
                 "singular-parity trial " + std::to_string(Trial));
  }
}

TEST_P(SeededTest, RepairedSystemSatisfiesDenseOracle) {
  Prng R(GetParam());
  unsigned Repaired = 0;
  for (int Trial = 0; Trial < 40; ++Trial) {
    size_t N = 2 + R.nextBelow(30);
    std::vector<SparseArc> Arcs = randomGraph(R, N, /*Leaky=*/false);
    std::vector<double> Entry = randomEntry(R, N);

    SparseMarkovConfig Config;
    Config.MaxRepairIterations = 40;
    SparseMarkovResult S = solveSparseMarkov(N, Arcs, Entry, Config);
    ASSERT_TRUE(S.Frequencies.has_value())
        << "repair failed on trial " << Trial;
    if (S.Stats.Repaired)
      ++Repaired;

    // The sparse solution must solve the *repaired* system exactly:
    // rebuild it densely from EffectiveProb and let the oracle solve.
    std::vector<SparseArc> Eff = Arcs;
    for (size_t I = 0; I < Eff.size(); ++I)
      Eff[I].Prob = S.EffectiveProb[I];
    auto D = solveMarkovFrequencies(denseFromArcs(N, Eff), Entry);
    ASSERT_TRUE(D.has_value());
    expectNear(*S.Frequencies, *D,
               "repair-oracle trial " + std::to_string(Trial));
  }
  // Probability-1 rows make singular systems common; the repair path
  // must actually have been exercised.
  EXPECT_GT(Repaired, 0u);
}

TEST(SparseMarkov, TrivialAndDisconnectedGraphs) {
  // Single node, no arcs.
  SparseMarkovResult S = solveSparseMarkov(1, {}, {1.0});
  ASSERT_TRUE(S.Frequencies.has_value());
  EXPECT_DOUBLE_EQ((*S.Frequencies)[0], 1.0);
  EXPECT_EQ(S.Stats.SccCount, 1u);
  EXPECT_EQ(S.Stats.CyclicSccCount, 0u);

  // A chain plus an unreachable self-loop node: the unreachable cycle
  // has no inflow, so its block solves to zero without repair.
  std::vector<SparseArc> Arcs = {{0, 1, 1.0}, {2, 2, 0.5}};
  S = solveSparseMarkov(3, Arcs, {1.0, 0.0, 0.0});
  ASSERT_TRUE(S.Frequencies.has_value());
  EXPECT_NEAR((*S.Frequencies)[1], 1.0, Tol);
  EXPECT_NEAR((*S.Frequencies)[2], 0.0, Tol);
}

//===----------------------------------------------------------------------===//
// Estimator-level differential (suite + synthetic programs)
//===----------------------------------------------------------------------===//

/// Runs the intra Markov estimator on every CFG of \p C under both
/// tiers and checks agreement (values compared only when neither tier
/// repaired; per-SCC vs global repair legitimately differ).
void expectIntraTiersAgree(Compiled &C, const std::string &Name) {
  for (const auto &[F, G] : C.Cfgs->all()) {
    MarkovIntraConfig Sparse, Dense;
    Sparse.Solver = MarkovSolverKind::Sparse;
    Dense.Solver = MarkovSolverKind::Dense;
    MarkovIntraResult RS = markovBlockFrequencies(*G, Sparse);
    MarkovIntraResult RD = markovBlockFrequencies(*G, Dense);
    std::string What = Name + "/" + F->name();
    EXPECT_EQ(RS.Repaired, RD.Repaired) << What;
    if (RS.Repaired || RD.Repaired)
      continue;
    expectNear(RS.BlockFrequencies, RD.BlockFrequencies, What);
    ASSERT_EQ(RS.ArcFrequencies.size(), RD.ArcFrequencies.size()) << What;
    for (size_t B = 0; B < RS.ArcFrequencies.size(); ++B)
      expectNear(RS.ArcFrequencies[B], RD.ArcFrequencies[B],
                 What + " arcs of block " + std::to_string(B));
  }
}

TEST(SparseMarkov, SuiteProgramsIntraTiersAgree) {
  for (const SuiteProgram &P : benchmarkSuite()) {
    auto C = compile(P.Source);
    ASSERT_TRUE(C) << P.Name;
    expectIntraTiersAgree(*C, P.Name);
  }
}

TEST_P(SeededTest, SyntheticProgramsIntraTiersAgree) {
  SyntheticConfig Config;
  Config.Shape = SyntheticShape::Mixed;
  Config.TargetBlocks = 250;
  Config.Seed = GetParam();
  auto C = compile(generateSyntheticSource(Config));
  ASSERT_TRUE(C);
  expectIntraTiersAgree(*C, "synthetic");
}

/// Inter-procedural differential: the whole pipeline (Markov inter on
/// top of solver-independent smart intra) must agree across tiers —
/// including programs whose recursion drives the §5.2.2 repair ladder,
/// which is deliberately identical on both tiers.
void expectInterTiersAgree(Compiled &C, const std::string &Name) {
  CallGraph CG = CallGraph::build(C.unit(), *C.Cfgs);
  EstimatorOptions Sparse, Dense;
  Sparse.Intra = Dense.Intra = IntraEstimatorKind::Smart;
  Sparse.setSolver(MarkovSolverKind::Sparse);
  Dense.setSolver(MarkovSolverKind::Dense);
  ProgramEstimate ES = estimateProgram(C.unit(), *C.Cfgs, CG, Sparse);
  ProgramEstimate ED = estimateProgram(C.unit(), *C.Cfgs, CG, Dense);
  expectNear(ES.FunctionEstimates, ED.FunctionEstimates,
             Name + " function estimates");
  expectNear(ES.CallSiteEstimates, ED.CallSiteEstimates,
             Name + " call-site estimates");
}

TEST(SparseMarkov, SuiteProgramsInterTiersAgree) {
  for (const SuiteProgram &P : benchmarkSuite()) {
    auto C = compile(P.Source);
    ASSERT_TRUE(C) << P.Name;
    expectInterTiersAgree(*C, P.Name);
  }
}

TEST_P(SeededTest, SyntheticWideCallsInterTiersAgree) {
  SyntheticConfig Config;
  Config.Shape = SyntheticShape::WideCalls;
  Config.TargetBlocks = 300;
  Config.Seed = GetParam();
  auto C = compile(generateSyntheticSource(Config));
  ASSERT_TRUE(C);
  expectInterTiersAgree(*C, "synthetic-wide-calls");
}

TEST(SparseMarkov, FallbackParityWithRepairDisabled) {
  // A probability-1 cycle with repair off: both tiers must take the
  // identical uniform fallback.
  auto C = compile("int main() {\n"
                   "  for (;;) {\n"
                   "    int x = 1;\n"
                   "  }\n"
                   "  return 0;\n"
                   "}\n");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("main");
  ASSERT_NE(G, nullptr);
  MarkovIntraConfig Sparse, Dense;
  Sparse.Solver = MarkovSolverKind::Sparse;
  Dense.Solver = MarkovSolverKind::Dense;
  Sparse.MaxRepairIterations = Dense.MaxRepairIterations = 0;
  MarkovIntraResult RS = markovBlockFrequencies(*G, Sparse);
  MarkovIntraResult RD = markovBlockFrequencies(*G, Dense);
  EXPECT_TRUE(RS.Repaired);
  EXPECT_TRUE(RD.Repaired);
  EXPECT_EQ(RS.BlockFrequencies, RD.BlockFrequencies);
  EXPECT_EQ(RS.ArcFrequencies, RD.ArcFrequencies);
}

//===----------------------------------------------------------------------===//
// Parallel pipeline determinism
//===----------------------------------------------------------------------===//

TEST(ParallelPipeline, EstimatesBitIdenticalAcrossJobs) {
  SyntheticConfig Config;
  Config.Shape = SyntheticShape::Mixed;
  Config.TargetBlocks = 400;
  Config.Seed = 11;
  auto C = compile(generateSyntheticSource(Config));
  ASSERT_TRUE(C);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);

  EstimatorOptions Opts;
  Opts.Intra = IntraEstimatorKind::Markov;
  Opts.Jobs = 1;
  ProgramEstimate Serial = estimateProgram(C->unit(), *C->Cfgs, CG, Opts);
  for (unsigned Jobs : {2u, 8u, 0u}) {
    Opts.Jobs = Jobs;
    ProgramEstimate E = estimateProgram(C->unit(), *C->Cfgs, CG, Opts);
    EXPECT_EQ(Serial.BlockEstimates, E.BlockEstimates) << Jobs;
    EXPECT_EQ(Serial.FunctionEstimates, E.FunctionEstimates) << Jobs;
    EXPECT_EQ(Serial.CallSiteEstimates, E.CallSiteEstimates) << Jobs;
    ASSERT_EQ(Serial.Predictions.size(), E.Predictions.size());
  }
}

TEST(ParallelPipeline, SuiteAccuracyReportByteIdenticalAcrossJobs) {
  std::vector<CompiledSuiteProgram> Programs =
      compileAndProfileSuite(InterpOptions{}, /*Jobs=*/0);
  std::string Serial = suiteAccuracyReportJson(Programs, 20, 1);
  EXPECT_FALSE(Serial.empty());
  for (unsigned Jobs : {2u, 4u}) {
    std::string Parallel = suiteAccuracyReportJson(Programs, 20, Jobs);
    EXPECT_EQ(Serial, Parallel) << "jobs=" << Jobs;
  }
}

TEST(ParallelPipeline, SuiteAccuracyTelemetryMatchesSerial) {
  std::vector<CompiledSuiteProgram> Programs =
      compileAndProfileSuite(InterpOptions{}, /*Jobs=*/0);

  obs::Telemetry SerialTele, ParallelTele;
  SerialTele.install();
  std::vector<obs::AccuracyReport> Serial =
      computeSuiteAccuracy(Programs, {}, 1);
  SerialTele.uninstall();
  ParallelTele.install();
  std::vector<obs::AccuracyReport> Parallel =
      computeSuiteAccuracy(Programs, {}, 4);
  ParallelTele.uninstall();

  ASSERT_EQ(Serial.size(), Parallel.size());
  ASSERT_EQ(SerialTele.counters().size(), ParallelTele.counters().size());
  for (const auto &[Name, Value] : SerialTele.counters()) {
    auto It = ParallelTele.counters().find(Name);
    ASSERT_NE(It, ParallelTele.counters().end()) << Name;
    if (Name.find("_ms") == std::string::npos &&
        Name.find("_us") == std::string::npos)
      EXPECT_EQ(Value, It->second) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Telemetry surface
//===----------------------------------------------------------------------===//

TEST(SparseMarkov, RecordsSolverTelemetry) {
  auto C = compile("int main() {\n"
                   "  int i;\n"
                   "  int s = 0;\n"
                   "  for (i = 0; i < 10; i++)\n"
                   "    s = s + i;\n"
                   "  return s;\n"
                   "}\n");
  ASSERT_TRUE(C);
  const Cfg *G = C->cfg("main");
  ASSERT_NE(G, nullptr);

  obs::Telemetry Tele;
  Tele.install();
  markovBlockFrequencies(*G, MarkovIntraConfig());
  Tele.uninstall();

  EXPECT_GE(Tele.counters().at("support.sparse.solves"), 1.0);
  EXPECT_GE(Tele.counters().at("support.sparse.dense_subsolves"), 1.0);
  EXPECT_TRUE(Tele.histograms().count("support.sparse.scc_count"));
  EXPECT_TRUE(Tele.histograms().count("support.sparse.max_scc_size"));
  EXPECT_TRUE(Tele.histograms().count("support.sparse.dense_dim"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1u, 2u, 3u, 42u));

} // namespace

//===- tests/test_suite.cpp - Benchmark-suite integration tests ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"
#include "suite/SuiteRunner.h"

#include <gtest/gtest.h>

#include <set>

using namespace sest;

namespace {

TEST(Suite, HasFourteenPrograms) {
  EXPECT_EQ(benchmarkSuite().size(), 14u);
  std::set<std::string> Names;
  for (const SuiteProgram &P : benchmarkSuite())
    Names.insert(P.Name);
  EXPECT_EQ(Names.size(), 14u) << "duplicate program names";
}

TEST(Suite, EveryProgramHasAtLeastFourInputs) {
  for (const SuiteProgram &P : benchmarkSuite())
    EXPECT_GE(P.Inputs.size(), 4u) << P.Name;
}

TEST(Suite, FindByName) {
  EXPECT_NE(findSuiteProgram("compress"), nullptr);
  EXPECT_NE(findSuiteProgram("xlisp"), nullptr);
  EXPECT_EQ(findSuiteProgram("no-such-program"), nullptr);
}

TEST(Suite, SourceLineCountsAreSane) {
  for (const SuiteProgram &P : benchmarkSuite()) {
    EXPECT_GT(P.sourceLines(), 60u) << P.Name;
    EXPECT_LT(P.sourceLines(), 2000u) << P.Name;
  }
}

/// One parameterized test instance per program: compile, run all inputs,
/// check profiles.
class SuiteProgramTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteProgramTest, CompilesAndRunsAllInputs) {
  const SuiteProgram *P = findSuiteProgram(GetParam());
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileAndProfileProgram(*P);
  ASSERT_TRUE(C.Ok) << C.Error;
  ASSERT_EQ(C.Profiles.size(), P->Inputs.size());

  // Every input must exercise main at least once, and profiles of
  // different inputs must not be all identical (inputs are distinct).
  const FunctionDecl *Main = C.unit().findFunction("main");
  ASSERT_NE(Main, nullptr);
  for (const Profile &Prof : C.Profiles) {
    EXPECT_EQ(Prof.Functions[Main->functionId()].EntryCount, 1.0);
    EXPECT_GT(Prof.totalBlockCount(), 0.0);
  }
}

TEST_P(SuiteProgramTest, ProfilesAreDeterministic) {
  const SuiteProgram *P = findSuiteProgram(GetParam());
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram A = compileAndProfileProgram(*P);
  CompiledSuiteProgram B = compileAndProfileProgram(*P);
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  for (size_t I = 0; I < A.Profiles.size(); ++I) {
    EXPECT_EQ(A.Profiles[I].totalBlockCount(),
              B.Profiles[I].totalBlockCount());
    EXPECT_EQ(A.Profiles[I].TotalCycles, B.Profiles[I].TotalCycles);
  }
}

TEST_P(SuiteProgramTest, FlowConservationHolds) {
  const SuiteProgram *P = findSuiteProgram(GetParam());
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileAndProfileProgram(*P);
  ASSERT_TRUE(C.Ok) << C.Error;
  // Sum of outgoing arcs equals the block count for every block with
  // successors, in every profile.
  for (const Profile &Prof : C.Profiles) {
    for (const auto &[F, G] : C.Cfgs->all()) {
      const FunctionProfile &FP = Prof.Functions[F->functionId()];
      for (const auto &B : G->blocks()) {
        if (B->successors().empty())
          continue;
        double Out = 0;
        for (double A : FP.ArcCounts[B->id()])
          Out += A;
        EXPECT_DOUBLE_EQ(Out, FP.BlockCounts[B->id()])
            << P->Name << "/" << F->name() << "/" << B->label();
      }
    }
  }
}

std::vector<std::string> allProgramNames() {
  std::vector<std::string> Names;
  for (const SuiteProgram &P : benchmarkSuite())
    Names.push_back(P.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, SuiteProgramTest, ::testing::ValuesIn(allProgramNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

/// The xlisp and gs stand-ins must exhibit the paper's function-pointer
/// structure.
TEST(Suite, XlispDispatchesBuiltinsThroughPointers) {
  const SuiteProgram *P = findSuiteProgram("xlisp");
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileProgramOnly(*P);
  ASSERT_TRUE(C.Ok) << C.Error;
  EXPECT_FALSE(C.CG->indirectSites().empty());
  EXPECT_GE(C.CG->addressTakenFunctions().size(), 10u);
}

TEST(Suite, GsHasManyIndirectlyReferencedFunctions) {
  const SuiteProgram *P = findSuiteProgram("gs");
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileProgramOnly(*P);
  ASSERT_TRUE(C.Ok) << C.Error;
  // "about half the functions in the program" are referenced indirectly.
  size_t Defined = 0;
  for (const FunctionDecl *F : C.unit().Functions)
    if (F->isDefined())
      ++Defined;
  EXPECT_GE(C.CG->addressTakenFunctions().size(), Defined * 2 / 5);
}

TEST(Suite, CompressHasSixteenFunctions) {
  const SuiteProgram *P = findSuiteProgram("compress");
  ASSERT_NE(P, nullptr);
  CompiledSuiteProgram C = compileProgramOnly(*P);
  ASSERT_TRUE(C.Ok) << C.Error;
  size_t Defined = 0;
  for (const FunctionDecl *F : C.unit().Functions)
    if (F->isDefined())
      ++Defined;
  EXPECT_EQ(Defined, 16u);
}

} // namespace

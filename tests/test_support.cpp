//===- tests/test_support.cpp - Support library unit tests -----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Hash.h"
#include "support/LinearSystem.h"
#include "support/Prng.h"
#include "support/Scc.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sest;

namespace {

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, AllocatesAligned) {
  Arena A;
  void *P1 = A.allocate(3, 1);
  void *P2 = A.allocate(8, 8);
  EXPECT_NE(P1, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P2) % 8, 0u);
}

TEST(Arena, RunsNonTrivialDestructors) {
  int Count = 0;
  struct Probe {
    int *Counter;
    explicit Probe(int *C) : Counter(C) {}
    ~Probe() { ++*Counter; }
  };
  {
    Arena A;
    A.create<Probe>(&Count);
    A.create<Probe>(&Count);
    EXPECT_EQ(Count, 0);
  }
  EXPECT_EQ(Count, 2);
}

TEST(Arena, GrowsAcrossSlabs) {
  Arena A;
  for (int I = 0; I < 10000; ++I)
    A.allocate(16, 8);
  EXPECT_GE(A.bytesAllocated(), 160000u);
}

//===----------------------------------------------------------------------===//
// Prng
//===----------------------------------------------------------------------===//

TEST(Prng, DeterministicForSeed) {
  Prng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 10; ++I)
    if (A.next() != B.next())
      AnyDiff = true;
  EXPECT_TRUE(AnyDiff);
}

TEST(Prng, NextBelowInRange) {
  Prng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(Prng, NextInRangeInclusive) {
  Prng R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Prng, DoubleInUnitInterval) {
  Prng R(99);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

//===----------------------------------------------------------------------===//
// Linear solver
//===----------------------------------------------------------------------===//

TEST(LinearSystem, SolvesTwoByTwo) {
  Matrix A(2, 2);
  A.at(0, 0) = 2;
  A.at(0, 1) = 1;
  A.at(1, 0) = 1;
  A.at(1, 1) = 3;
  SolveResult R = solveLinearSystem(A, {5, 10});
  ASSERT_TRUE(R.Solution.has_value());
  EXPECT_NEAR((*R.Solution)[0], 1.0, 1e-9);
  EXPECT_NEAR((*R.Solution)[1], 3.0, 1e-9);
}

TEST(LinearSystem, DetectsSingularity) {
  Matrix A(2, 2);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(1, 0) = 2;
  A.at(1, 1) = 4;
  SolveResult R = solveLinearSystem(A, {1, 2});
  EXPECT_FALSE(R.Solution.has_value());
  EXPECT_TRUE(R.Singular);
}

TEST(LinearSystem, PivotingHandlesZeroDiagonal) {
  Matrix A(2, 2);
  A.at(0, 0) = 0;
  A.at(0, 1) = 1;
  A.at(1, 0) = 1;
  A.at(1, 1) = 0;
  SolveResult R = solveLinearSystem(A, {3, 4});
  ASSERT_TRUE(R.Solution.has_value());
  EXPECT_NEAR((*R.Solution)[0], 4.0, 1e-9);
  EXPECT_NEAR((*R.Solution)[1], 3.0, 1e-9);
}

TEST(LinearSystem, MatrixMultiplyAndTranspose) {
  Matrix A(2, 3);
  int V = 1;
  for (size_t I = 0; I < 2; ++I)
    for (size_t J = 0; J < 3; ++J)
      A.at(I, J) = V++;
  Matrix At = A.transposed();
  EXPECT_EQ(At.rows(), 3u);
  EXPECT_EQ(At.at(2, 1), 6.0);
  Matrix P = A.multiply(At); // 2x2
  EXPECT_EQ(P.at(0, 0), 1.0 + 4.0 + 9.0);
  EXPECT_EQ(P.at(1, 0), 4.0 + 10.0 + 18.0);
}

/// The paper's Figure 7: strchr's Markov system. States: entry, while,
/// if, return1, incr, return2 with probabilities 0.8/0.2 on the two
/// branches. The published solution is (1, 2.78, 2.22, 0.44, 1.78, 0.56).
TEST(LinearSystem, PaperFigure7Strchr) {
  // Prob.at(i, j) = flow i -> j.
  enum { Entry, While, If, Return1, Incr, Return2 };
  Matrix P(6, 6);
  P.at(Entry, While) = 1.0;
  P.at(While, If) = 0.8;
  P.at(While, Return2) = 0.2;
  P.at(If, Return1) = 0.2;
  P.at(If, Incr) = 0.8;
  P.at(Incr, While) = 1.0;
  std::vector<double> Entries = {1, 0, 0, 0, 0, 0};
  auto F = solveMarkovFrequencies(P, Entries);
  ASSERT_TRUE(F.has_value());
  EXPECT_NEAR((*F)[Entry], 1.0, 1e-9);
  EXPECT_NEAR((*F)[While], 2.7777777, 1e-5);
  EXPECT_NEAR((*F)[If], 2.2222222, 1e-5);
  EXPECT_NEAR((*F)[Return1], 0.4444444, 1e-5);
  EXPECT_NEAR((*F)[Incr], 1.7777777, 1e-5);
  EXPECT_NEAR((*F)[Return2], 0.5555555, 1e-5);
}

TEST(LinearSystem, MarkovSingularOnClosedLoop) {
  // A 1.0-probability self-cycle has no finite frequency solution.
  Matrix P(2, 2);
  P.at(0, 1) = 1.0;
  P.at(1, 0) = 1.0;
  auto F = solveMarkovFrequencies(P, {1, 0});
  EXPECT_FALSE(F.has_value());
}

//===----------------------------------------------------------------------===//
// SCC
//===----------------------------------------------------------------------===//

TEST(Scc, SinglesAndCycle) {
  // 0 -> 1 -> 2 -> 1, 2 -> 3.
  std::vector<std::vector<size_t>> Succ = {{1}, {2}, {1, 3}, {}};
  SccResult R = computeScc(4, Succ);
  EXPECT_EQ(R.Components.size(), 3u);
  EXPECT_EQ(R.ComponentOf[1], R.ComponentOf[2]);
  EXPECT_NE(R.ComponentOf[0], R.ComponentOf[1]);
  EXPECT_TRUE(R.inNontrivialComponent(1));
  EXPECT_FALSE(R.inNontrivialComponent(0));
  EXPECT_FALSE(R.inNontrivialComponent(3));
}

TEST(Scc, ReverseTopologicalOrder) {
  // 0 -> 1 -> 2 (no cycles): components come callee-first.
  std::vector<std::vector<size_t>> Succ = {{1}, {2}, {}};
  SccResult R = computeScc(3, Succ);
  ASSERT_EQ(R.Components.size(), 3u);
  EXPECT_EQ(R.Components[0][0], 2u);
  EXPECT_EQ(R.Components[2][0], 0u);
}

TEST(Scc, WholeGraphOneComponent) {
  std::vector<std::vector<size_t>> Succ = {{1}, {2}, {0}};
  SccResult R = computeScc(3, Succ);
  EXPECT_EQ(R.Components.size(), 1u);
  EXPECT_EQ(R.Components[0].size(), 3u);
}

TEST(Scc, SelfLoopIsTrivialComponentBySize) {
  std::vector<std::vector<size_t>> Succ = {{0}};
  SccResult R = computeScc(1, Succ);
  EXPECT_EQ(R.Components.size(), 1u);
  // Size-1 component: self-arcs must be checked by the caller.
  EXPECT_FALSE(R.inNontrivialComponent(0));
}

TEST(Scc, LargeChainDoesNotOverflowStack) {
  // 100k-node chain: iterative Tarjan must not recurse.
  const size_t N = 100000;
  std::vector<std::vector<size_t>> Succ(N);
  for (size_t I = 0; I + 1 < N; ++I)
    Succ[I].push_back(I + 1);
  SccResult R = computeScc(N, Succ);
  EXPECT_EQ(R.Components.size(), N);
}

//===----------------------------------------------------------------------===//
// Strings and tables
//===----------------------------------------------------------------------===//

TEST(StringUtils, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(StringUtils, FormatPercent) {
  EXPECT_EQ(formatPercent(0.813), "81.3%");
  EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(StringUtils, PadAndSplitAndJoin) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcde", 3), "abcde");
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(joinStrings({"x", "y", "z"}, ", "), "x, y, z");
}

TEST(TextTable, AlignsColumns) {
  TextTable T;
  T.setHeader({"name", "score"});
  T.addRow({"alpha", "81.3%"});
  T.addRow({"b", "7%"});
  std::string S = T.str();
  EXPECT_NE(S.find("name"), std::string::npos);
  EXPECT_NE(S.find("alpha"), std::string::npos);
  // Numeric-looking cells right-align: "7%" ends at same column as "81.3%".
  auto Lines = splitString(S, '\n');
  ASSERT_GE(Lines.size(), 4u);
  EXPECT_EQ(Lines[2].size(), Lines[3].size());
}

TEST(TextTable, CsvOutput) {
  TextTable T;
  T.setHeader({"a", "b"});
  T.addRow({"1", "2"});
  EXPECT_EQ(T.csv(), "a,b\n1,2\n");
}

//===----------------------------------------------------------------------===//
// Content hashing (support/Hash.h)
//===----------------------------------------------------------------------===//

// The hash is a STABLE identity: it keys the analysis service's
// memoization cache and appears as program_hash in checked-in report
// baselines, so these published FNV-1a 64 test vectors pin the exact
// algorithm forever. If any of these "fail", the constant changed — fix
// the code, never the vectors.
TEST(ContentHash, Fnv1a64TestVectors) {
  EXPECT_EQ(contentHash64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(contentHash64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(contentHash64("foobar"), 0x85944171f73967e8ULL);
}

TEST(ContentHash, HexRenderingIsZeroPaddedLowercase) {
  EXPECT_EQ(hashHex(0xcbf29ce484222325ULL), "cbf29ce484222325");
  EXPECT_EQ(hashHex(0x1ULL), "0000000000000001");
  EXPECT_EQ(hashHex(0x0ULL), "0000000000000000");
}

TEST(ContentHash, OneTokenEditChangesHash) {
  EXPECT_NE(contentHash64("for (i = 0; i < n; i++)"),
            contentHash64("for (i = 0; i <= n; i++)"));
}

TEST(HashBuilder, LengthFramingPreventsFieldAliasing) {
  // ("ab","c") and ("a","bc") concatenate identically; the length
  // framing must still separate them.
  EXPECT_NE(HashBuilder().add("ab").add("c").digest(),
            HashBuilder().add("a").add("bc").digest());
}

TEST(HashBuilder, DomainsAndScalarsSeparateKeys) {
  EXPECT_NE(HashBuilder("ast").add("x").digest(),
            HashBuilder("cfg").add("x").digest());
  EXPECT_NE(HashBuilder().addU64(1).digest(),
            HashBuilder().addU64(2).digest());
  EXPECT_NE(HashBuilder().addDouble(5.0).digest(),
            HashBuilder().addDouble(10.0).digest());
  EXPECT_NE(HashBuilder().addBool(true).digest(),
            HashBuilder().addBool(false).digest());
  // Equal inputs agree, of course.
  EXPECT_EQ(HashBuilder("t").add("s").addU64(7).digest(),
            HashBuilder("t").add("s").addU64(7).digest());
}

} // namespace

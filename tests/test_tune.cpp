//===- tests/test_tune.cpp - Pass pipeline + autotuner tests ---------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the composable pass pipeline (src/opt/Pass.h) and the
/// estimator-guided autotuner (src/tune/): TuneConfig serialization and
/// canonicalization, pass-order composability (every order of the three
/// passes yields a differentially verified program), function ordering,
/// refactor equivalence of the canned configs against direct optimizer
/// calls, and byte-stability of the sest-tune-report/1 document across
/// job counts, repeated runs, and the service entry point.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "callgraph/CallGraph.h"
#include "opt/FuncOrder.h"
#include "opt/Inline.h"
#include "opt/Layout.h"
#include "opt/Pass.h"
#include "suite/SuiteRunner.h"
#include "tune/Tune.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace sest;
using namespace sest::test;

namespace {

/// A program with inlinable helpers, a hot loop, and enough defined
/// functions that both layout and function ordering have real work.
const char *TunableSource = R"(
int add(int a, int b) { return a + b; }
int scale(int a) { return a * 3; }
int mul(int a, int b) {
  int r = 0;
  int i;
  for (i = 0; i < b; i++)
    r = add(r, a);
  return r;
}
int rare(int x) {
  if (x > 1000)
    return mul(x, 2);
  return x;
}
int main() {
  int n = read_int();
  int s = 0;
  int i;
  for (i = 0; i < n; i++)
    s = add(s, scale(mul(i, 3)));
  print_int(rare(s));
  return 0;
}
)";

opt::WeightSource profileWeights(Compiled &C, const RunResult &R) {
  return opt::weightsFromProfile(C.unit(), R.TheProfile);
}

RunResult runLaidOut(Compiled &C, const std::string &Input,
                     const ProgramBlockOrder *Layout) {
  ProgramInput In;
  In.Text = Input;
  InterpOptions O;
  O.Layout = Layout;
  return runProgram(C.unit(), *C.Cfgs, In, O);
}

//===----------------------------------------------------------------------===//
// TuneConfig
//===----------------------------------------------------------------------===//

TEST(TuneConfig, OrderStringAndCanonicalization) {
  opt::TuneConfig C;
  EXPECT_EQ(C.orderString(), "inline,layout");

  // TopK == 0 canonicalizes the inline pass away: the hash and order
  // string must not depend on where the dead pass sat.
  opt::TuneConfig A, B;
  A.Order = {opt::PassKind::Inline, opt::PassKind::Layout};
  B.Order = {opt::PassKind::Layout, opt::PassKind::Inline};
  A.Inline.TopK = 0;
  B.Inline.TopK = 0;
  EXPECT_EQ(A.orderString(), "layout");
  EXPECT_EQ(A.contentHash(), B.contentHash());

  // Live knobs must fragment the hash.
  opt::TuneConfig D = C, E = C;
  E.Layout.ColdFraction = 0.2;
  EXPECT_NE(D.contentHash(), E.contentHash());
  // ...but inline knobs are dead when the pass is off.
  opt::TuneConfig F = A;
  F.Inline.MaxCalleeBlocks = 48;
  EXPECT_EQ(A.contentHash(), F.contentHash());
}

TEST(TuneConfig, JsonRoundTrip) {
  opt::TuneConfig C;
  C.Order = {opt::PassKind::Layout, opt::PassKind::Inline,
             opt::PassKind::FuncOrder};
  C.Inline.TopK = 4;
  C.Layout.ColdFraction = 0.05;
  C.FuncOrder.DistanceCost = 2.0;

  opt::TuneConfig Back;
  std::string Err;
  ASSERT_TRUE(opt::TuneConfig::fromJson(C.toJson(), Back, &Err)) << Err;
  EXPECT_EQ(C.contentHash(), Back.contentHash());
  EXPECT_EQ(C.orderString(), Back.orderString());
  EXPECT_EQ(Back.Inline.TopK, 4u);
  EXPECT_DOUBLE_EQ(Back.Layout.ColdFraction, 0.05);
  EXPECT_DOUBLE_EQ(Back.FuncOrder.DistanceCost, 2.0);

  // Unknown keys are rejected, not ignored.
  EXPECT_FALSE(opt::TuneConfig::fromJson(
      R"({"schema":"sest-tune-config/1","passes":["layout"],"bogus":1})",
      Back, &Err));
  EXPECT_FALSE(opt::TuneConfig::fromJson(
      R"({"schema":"sest-tune-config/1","passes":["warp"]})", Back,
      &Err));
  EXPECT_FALSE(opt::TuneConfig::fromJson("not json", Back, &Err));
}

TEST(TuneConfig, ParseOrderStringRejectsBadLists) {
  std::vector<opt::PassKind> Order;
  std::string Err;
  EXPECT_TRUE(
      opt::TuneConfig::parseOrderString("layout,inline,funcorder", Order));
  EXPECT_EQ(Order.size(), 3u);
  EXPECT_FALSE(opt::TuneConfig::parseOrderString("layout,warp", Order, &Err));
  EXPECT_NE(Err.find("warp"), std::string::npos);
  EXPECT_FALSE(
      opt::TuneConfig::parseOrderString("layout,layout", Order, &Err));
  EXPECT_FALSE(opt::TuneConfig::parseOrderString("", Order, &Err));
  EXPECT_FALSE(opt::TuneConfig::parseOrderString("layout,,inline", Order,
                                                 &Err));
}

TEST(TuneConfig, CannedConfigsMatchLegacyModes) {
  opt::TuneConfig C;
  ASSERT_TRUE(opt::TuneConfig::canned("layout", C));
  EXPECT_EQ(C.orderString(), "layout");
  ASSERT_TRUE(opt::TuneConfig::canned("inline", C));
  EXPECT_EQ(C.orderString(), "inline");
  ASSERT_TRUE(opt::TuneConfig::canned("all", C));
  EXPECT_EQ(C.orderString(), "layout,inline"); // historical order
  ASSERT_TRUE(opt::TuneConfig::canned("funcorder", C));
  EXPECT_EQ(C.orderString(), "funcorder");
  EXPECT_FALSE(opt::TuneConfig::canned("everything", C));
}

//===----------------------------------------------------------------------===//
// Pipeline composability
//===----------------------------------------------------------------------===//

/// Every permutation of the three passes must produce a program whose
/// laid-out run matches the baseline differentially (output, exit code,
/// and — through the inline map — the profile).
TEST(Pipeline, AnyPassOrderProducesVerifiedProgram) {
  const std::vector<std::vector<opt::PassKind>> Orders = {
      {opt::PassKind::Layout, opt::PassKind::Inline, opt::PassKind::FuncOrder},
      {opt::PassKind::Layout, opt::PassKind::FuncOrder, opt::PassKind::Inline},
      {opt::PassKind::Inline, opt::PassKind::Layout, opt::PassKind::FuncOrder},
      {opt::PassKind::Inline, opt::PassKind::FuncOrder, opt::PassKind::Layout},
      {opt::PassKind::FuncOrder, opt::PassKind::Layout, opt::PassKind::Inline},
      {opt::PassKind::FuncOrder, opt::PassKind::Inline, opt::PassKind::Layout},
      {opt::PassKind::Layout},
      {opt::PassKind::FuncOrder, opt::PassKind::Inline},
  };
  for (const auto &Order : Orders) {
    auto Base = compile(TunableSource);
    ASSERT_TRUE(Base);
    RunResult BaseRun = run(*Base, "12");

    auto C = compile(TunableSource);
    ASSERT_TRUE(C);
    CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
    RunResult ProfRun = run(*C, "12");

    opt::TuneConfig Config;
    Config.Order = Order;
    opt::Pipeline Pipe(Config);
    opt::PipelineResult PR = Pipe.run(*C->Ctx, *C->Cfgs, CG,
                                      profileWeights(*C, ProfRun));

    ProgramBlockOrder BO;
    if (PR.HasLayout)
      BO = PR.Layout.blockOrder();
    RunResult Tuned =
        runLaidOut(*C, "12", PR.HasLayout ? &BO : nullptr);
    ASSERT_TRUE(Tuned.Ok) << "order " << Pipe.config().orderString()
                          << ": " << Tuned.Error;
    EXPECT_EQ(Tuned.Output, BaseRun.Output)
        << "order " << Pipe.config().orderString();
    EXPECT_EQ(Tuned.ExitCode, BaseRun.ExitCode);
    if (PR.HasInline) {
      opt::InlineVerifyResult V =
          opt::compareInlinedRun(BaseRun, Tuned, PR.Inlined);
      EXPECT_TRUE(V.Match)
          << "order " << Pipe.config().orderString() << ": " << V.Detail;
    }
  }
}

/// The canned configs are the refactored form of the legacy hardcoded
/// sequences — their pipeline outcomes must equal direct optimizer
/// calls exactly.
TEST(Pipeline, CannedLayoutEqualsDirectCall) {
  auto C = compile(TunableSource);
  ASSERT_TRUE(C);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  RunResult R = run(*C, "12");

  opt::TuneConfig Config;
  ASSERT_TRUE(opt::TuneConfig::canned("layout", Config));
  opt::PipelineResult PR = opt::Pipeline(Config).run(
      *C->Ctx, *C->Cfgs, CG, profileWeights(*C, R));
  ASSERT_TRUE(PR.HasLayout);
  EXPECT_FALSE(PR.HasInline);

  opt::ProgramLayout Direct = opt::computeBlockLayout(
      C->unit(), *C->Cfgs, profileWeights(*C, R), Config.Layout);
  ASSERT_EQ(PR.Layout.Functions.size(), Direct.Functions.size());
  for (size_t F = 0; F < Direct.Functions.size(); ++F)
    EXPECT_EQ(PR.Layout.Functions[F].Order, Direct.Functions[F].Order)
        << "fn " << F;
}

TEST(Pipeline, CannedInlineEqualsDirectCall) {
  auto Direct = compile(TunableSource);
  ASSERT_TRUE(Direct);
  CallGraph DirectCG = CallGraph::build(Direct->unit(), *Direct->Cfgs);
  RunResult DirectRun = run(*Direct, "12");
  opt::InlinePlan Plan = opt::planInlining(
      Direct->unit(), *Direct->Cfgs, DirectCG,
      profileWeights(*Direct, DirectRun), opt::InlineOptions{});
  opt::InlineMap DirectMap =
      opt::applyInlining(*Direct->Ctx, *Direct->Cfgs, Plan);

  auto C = compile(TunableSource);
  ASSERT_TRUE(C);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  RunResult R = run(*C, "12");
  opt::TuneConfig Config;
  ASSERT_TRUE(opt::TuneConfig::canned("inline", Config));
  opt::PipelineResult PR = opt::Pipeline(Config).run(
      *C->Ctx, *C->Cfgs, CG, profileWeights(*C, R));

  ASSERT_EQ(PR.HasInline, !DirectMap.Applied.empty());
  ASSERT_EQ(PR.Inlined.Applied.size(), DirectMap.Applied.size());
  for (size_t I = 0; I < DirectMap.Applied.size(); ++I) {
    EXPECT_EQ(PR.Inlined.Applied[I].CallSiteId,
              DirectMap.Applied[I].CallSiteId);
    EXPECT_DOUBLE_EQ(PR.Inlined.Applied[I].Weight,
                     DirectMap.Applied[I].Weight);
  }
}

/// After an inline pass, the extended weights must cover every cloned
/// block (non-negative) and zero out the applied sites' call weights.
TEST(Pipeline, ExtendedWeightsCoverInlinedBlocks) {
  auto C = compile(TunableSource);
  ASSERT_TRUE(C);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  RunResult R = run(*C, "12");

  opt::TuneConfig Config; // default: inline,layout
  opt::PipelineResult PR = opt::Pipeline(Config).run(
      *C->Ctx, *C->Cfgs, CG, profileWeights(*C, R));
  ASSERT_TRUE(PR.HasInline);
  for (const auto &[F, G] : C->Cfgs->all()) {
    uint32_t Fid = F->functionId();
    for (size_t B = 0; B < G->size(); ++B)
      EXPECT_GE(PR.W.blockWeight(Fid, static_cast<uint32_t>(B)), 0.0)
          << F->name() << " block " << B;
  }
  for (const opt::InlineDecision &D : PR.Inlined.Applied)
    EXPECT_EQ(PR.W.callSiteWeight(D.CallSiteId), 0.0)
        << "site " << D.CallSiteId;
}

//===----------------------------------------------------------------------===//
// Function ordering
//===----------------------------------------------------------------------===//

TEST(FuncOrder, ChainsCallersWithCallees) {
  auto C = compile(TunableSource);
  ASSERT_TRUE(C);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  RunResult R = run(*C, "12");
  opt::WeightSource W = profileWeights(*C, R);

  opt::FunctionOrder Identity = opt::identityFunctionOrder(C->unit());
  opt::FunctionOrder Ordered =
      opt::computeFunctionOrder(C->unit(), CG, W);
  double IdCost = opt::functionOrderCost(C->unit(), CG, W, Identity);
  double Cost = opt::functionOrderCost(C->unit(), CG, W, Ordered);
  EXPECT_LE(Cost, IdCost);
  EXPECT_DOUBLE_EQ(opt::functionOrderOverlap(C->unit(), Ordered, Ordered),
                   1.0);

  // Deterministic: recomputing yields the same permutation.
  opt::FunctionOrder Again = opt::computeFunctionOrder(C->unit(), CG, W);
  EXPECT_EQ(Ordered.Order, Again.Order);
}

TEST(FuncOrder, IdentityWhenNoPositiveArcs) {
  auto C = compile("int main() { print_int(7); return 0; }");
  ASSERT_TRUE(C);
  CallGraph CG = CallGraph::build(C->unit(), *C->Cfgs);
  RunResult R = run(*C);
  opt::FunctionOrder FO =
      opt::computeFunctionOrder(C->unit(), CG, profileWeights(*C, R));
  EXPECT_TRUE(FO.isIdentity());
  EXPECT_DOUBLE_EQ(opt::functionOrderCost(C->unit(), CG,
                                          profileWeights(*C, R), FO),
                   0.0);
}

//===----------------------------------------------------------------------===//
// The autotuner
//===----------------------------------------------------------------------===//

std::vector<CompiledSuiteProgram> compileTwo() {
  std::vector<CompiledSuiteProgram> Programs;
  for (const char *Name : {"cholesky", "water"}) {
    const SuiteProgram *Spec = findSuiteProgram(Name);
    EXPECT_NE(Spec, nullptr) << Name;
    Programs.push_back(compileAndProfileProgram(*Spec));
    EXPECT_TRUE(Programs.back().Ok) << Programs.back().Error;
  }
  return Programs;
}

TEST(Tune, ReportBytesStableAcrossJobsAndRepeats) {
  std::vector<CompiledSuiteProgram> Programs = compileTwo();
  tune::TuneOptions O;
  O.Budget = 5;
  O.Jobs = 1;
  tune::TuneSuiteReport R1 = tune::computeTuneReport(Programs, O);
  std::string J1 = tune::tuneReportJson(R1, O);

  O.Jobs = 8;
  std::string J8 =
      tune::tuneReportJson(tune::computeTuneReport(Programs, O), O);
  EXPECT_EQ(J1, J8) << "report bytes differ across job counts";

  O.Jobs = 1;
  std::string Again =
      tune::tuneReportJson(tune::computeTuneReport(Programs, O), O);
  EXPECT_EQ(J1, Again) << "report bytes differ across repeated runs";

  EXPECT_NE(J1.find("\"schema\":\"sest-tune-report/1\""),
            std::string::npos);
  EXPECT_TRUE(R1.AllVerified);
  for (const tune::TuneProgramReport &P : R1.Programs)
    ASSERT_TRUE(P.Ok) << P.Name << ": " << P.Error;
}

TEST(Tune, SearchIsSeededAndNeverWorseThanDefault) {
  std::vector<CompiledSuiteProgram> Programs = compileTwo();
  tune::TuneOptions O;
  O.Budget = 6;
  O.Oracles = {tune::TuneOracle::Static};
  tune::TuneSuiteReport R = tune::computeTuneReport(Programs, O);
  for (const tune::TuneProgramReport &P : R.Programs) {
    ASSERT_TRUE(P.Ok);
    ASSERT_EQ(P.Oracles.size(), 1u);
    const tune::TuneOracleResult &S = P.Oracles[0];
    ASSERT_FALSE(S.Trajectory.empty());
    // Trial 0 is always the default configuration; the winner can only
    // improve on it.
    double DefaultObjective = S.Trajectory[0].Objective;
    EXPECT_LE(S.SearchObjective, DefaultObjective) << P.Name;
    EXPECT_LE(S.Evaluations, static_cast<uint64_t>(O.Budget)) << P.Name;
    EXPECT_TRUE(S.Verified) << P.Name << ": " << S.VerifyDetail;
  }

  // A different seed is still deterministic but may walk elsewhere;
  // the same seed must reproduce the identical document.
  std::string A = tune::tuneReportJson(R, O);
  std::string B =
      tune::tuneReportJson(tune::computeTuneReport(Programs, O), O);
  EXPECT_EQ(A, B);
}

TEST(Tune, ExhaustiveSearchWhenBudgetCoversGrid) {
  const SuiteProgram *Spec = findSuiteProgram("cholesky");
  ASSERT_NE(Spec, nullptr);
  std::vector<CompiledSuiteProgram> Programs;
  Programs.push_back(compileAndProfileProgram(*Spec));
  ASSERT_TRUE(Programs.back().Ok);

  tune::TuneOptions O;
  O.Budget = tune::tuneSearchSpaceSize();
  O.Oracles = {tune::TuneOracle::Static};
  tune::TuneSuiteReport R = tune::computeTuneReport(Programs, O);
  ASSERT_EQ(R.Programs.size(), 1u);
  ASSERT_TRUE(R.Programs[0].Ok);
  const tune::TuneOracleResult &S = R.Programs[0].Oracles[0];
  EXPECT_TRUE(S.Exhaustive);
  // Distinct canonical configs number fewer than raw grid points (dead
  // inline dims collapse), but every one must have been evaluated.
  EXPECT_GT(S.Evaluations, 0u);
  EXPECT_LE(S.Evaluations, static_cast<uint64_t>(O.Budget));
}

TEST(Tune, TuneSourceServesErrorsInBand) {
  std::string Good = tune::tuneSource(TunableSource, "12");
  EXPECT_NE(Good.find("sest-tune-report/1"), std::string::npos);
  EXPECT_NE(Good.find("\"ok\":true"), std::string::npos);

  std::string Bad = tune::tuneSource("int main( {", "");
  EXPECT_NE(Bad.find("\"ok\":false"), std::string::npos);
}

} // namespace

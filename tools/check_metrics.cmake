# End-to-end check of the metrics exposition surface:
#   1. a session with --metrics writes a Prometheus snapshot that the
#      in-tree lint (sesttop --lint) accepts, and the `metrics` /
#      `health` verbs answer well-formed results;
#   2. deterministic scope: the metrics responses AND the snapshot file
#      are byte-identical across --jobs 1 / --jobs 8 / --no-cache;
#   3. sesttop --once --file renders the dashboard from a snapshot;
#   4. sesttop --once --spawn scrapes a live sestd it launches itself
#      (after replaying traffic into it) — the live-console path.
# Run as: cmake -DSESTD=<path> -DSESTTOP=<path> -DWORKDIR=<dir>
#               -P check_metrics.cmake

set(SRC_A "int triangle(int n) { int s = 0; int i; for (i = 1; i <= n; i++) s += i; return s; } int main() { int n = read_int(); print_int(triangle(n)); return 0; }")
set(SRC_B "int triangle(int n) { int s = 0; int i; for (i = 1; i < n; i++) s += i; return s; } int main() { int n = read_int(); print_int(triangle(n)); return 0; }")

set(REQS "")
string(APPEND REQS "{\"op\":\"estimate\",\"source\":\"${SRC_A}\"}\n")
string(APPEND REQS "{\"op\":\"parse\",\"source\":\"${SRC_B}\"}\n")
string(APPEND REQS "{\"op\":\"estimate\",\"source\":\"${SRC_A}\"}\n")
string(APPEND REQS "{\"op\":\"optimize\",\"source\":\"${SRC_B}\",\"passes\":\"all\"}\n")
string(APPEND REQS "{\"op\":\"metrics\",\"scope\":\"deterministic\"}\n")
file(WRITE ${WORKDIR}/metrics_reqs.jsonl "${REQS}")
# health echoes config (jobs), so it is deliberately NOT part of the
# byte-identity stream; the live session below covers it.
file(WRITE ${WORKDIR}/metrics_reqs_live.jsonl "${REQS}{\"op\":\"health\"}\n")

function(run_sestd OUTFILE INFILE)
  execute_process(
    COMMAND ${SESTD} ${ARGN}
    INPUT_FILE ${INFILE}
    OUTPUT_FILE ${OUTFILE}
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "sestd ${ARGN} exited ${RC}:\n${ERR}")
  endif()
endfunction()

# --- 1+2: deterministic-scope sessions across scheduling variants -----------

run_sestd(${WORKDIR}/metrics_j1.out ${WORKDIR}/metrics_reqs.jsonl
          --metrics ${WORKDIR}/metrics_snap_j1.prom
          --metrics-scope deterministic)
run_sestd(${WORKDIR}/metrics_j8.out ${WORKDIR}/metrics_reqs.jsonl
          --jobs 8
          --metrics ${WORKDIR}/metrics_snap_j8.prom
          --metrics-scope deterministic)
run_sestd(${WORKDIR}/metrics_nocache.out ${WORKDIR}/metrics_reqs.jsonl
          --no-cache
          --metrics ${WORKDIR}/metrics_snap_nocache.prom
          --metrics-scope deterministic)

file(READ ${WORKDIR}/metrics_j1.out J1)
foreach(VARIANT j8 nocache)
  file(READ ${WORKDIR}/metrics_${VARIANT}.out GOT)
  if(NOT GOT STREQUAL "${J1}")
    message(FATAL_ERROR
      "deterministic metrics responses differ under '${VARIANT}'")
  endif()
endforeach()

file(READ ${WORKDIR}/metrics_snap_j1.prom SNAP1)
foreach(VARIANT j8 nocache)
  file(READ ${WORKDIR}/metrics_snap_${VARIANT}.prom GOT)
  if(NOT GOT STREQUAL "${SNAP1}")
    message(FATAL_ERROR
      "deterministic snapshot file differs under '${VARIANT}'")
  endif()
endforeach()

if(NOT J1 MATCHES "\"format\":\"prometheus\"")
  message(FATAL_ERROR "metrics verb missing prometheus format:\n${J1}")
endif()
if(NOT J1 MATCHES "\"scope\":\"deterministic\"")
  message(FATAL_ERROR "metrics verb missing scope echo:\n${J1}")
endif()
if(NOT SNAP1 MATCHES "# TYPE sest_service_requests counter")
  message(FATAL_ERROR "snapshot missing request counter family:\n${SNAP1}")
endif()
if(NOT SNAP1 MATCHES "sest_window_tick")
  message(FATAL_ERROR "snapshot missing window section:\n${SNAP1}")
endif()

# --- live-scope snapshot + the exposition lint ------------------------------

run_sestd(${WORKDIR}/metrics_live.out ${WORKDIR}/metrics_reqs_live.jsonl
          --jobs 8 --metrics ${WORKDIR}/metrics_snap_live.prom:2)
file(READ ${WORKDIR}/metrics_live.out LIVE_RESP)
if(NOT LIVE_RESP MATCHES "\"status\":\"ok\"")
  message(FATAL_ERROR "health verb missing status ok:\n${LIVE_RESP}")
endif()
if(NOT LIVE_RESP MATCHES "\"jobs\":8")
  message(FATAL_ERROR "health verb does not echo jobs:\n${LIVE_RESP}")
endif()

foreach(SNAP metrics_snap_j1.prom metrics_snap_live.prom)
  execute_process(
    COMMAND ${SESTTOP} --lint ${WORKDIR}/${SNAP}
    OUTPUT_VARIABLE LINT_OUT
    ERROR_VARIABLE LINT_ERR
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "lint failed on ${SNAP}:\n${LINT_ERR}")
  endif()
endforeach()

file(READ ${WORKDIR}/metrics_snap_live.prom LIVE)
if(NOT LIVE MATCHES "sest_service_cache_ast_misses")
  message(FATAL_ERROR "live snapshot missing cache tier gauges:\n${LIVE}")
endif()
if(NOT LIVE MATCHES "# TYPE sest_service_request_us histogram")
  message(FATAL_ERROR "live snapshot missing latency histogram:\n${LIVE}")
endif()

# --- 3: dashboard from a snapshot file --------------------------------------

execute_process(
  COMMAND ${SESTTOP} --once --file ${WORKDIR}/metrics_snap_live.prom
  OUTPUT_VARIABLE TOP_OUT
  ERROR_VARIABLE TOP_ERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "sesttop --file exited ${RC}:\n${TOP_ERR}")
endif()
foreach(NEEDLE "sesttop — sest-service/1" "p50" "p99" "queue-depth"
        "estimate" "response" "hit%")
  if(NOT TOP_OUT MATCHES "${NEEDLE}")
    message(FATAL_ERROR
      "sesttop --file output missing '${NEEDLE}':\n${TOP_OUT}")
  endif()
endforeach()

# --- 4: live scrape: sesttop spawns sestd, replays, then polls metrics ------

execute_process(
  COMMAND ${SESTTOP} --once --spawn ${SESTD}
          --replay ${WORKDIR}/metrics_reqs_live.jsonl
  OUTPUT_VARIABLE LIVE_OUT
  ERROR_VARIABLE LIVE_ERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "sesttop --spawn exited ${RC}:\n${LIVE_ERR}")
endif()
foreach(NEEDLE "sesttop — sest-service/1" "optimize" "hit%" "queue-depth")
  if(NOT LIVE_OUT MATCHES "${NEEDLE}")
    message(FATAL_ERROR
      "sesttop --spawn output missing '${NEEDLE}':\n${LIVE_OUT}")
  endif()
endforeach()
if(NOT LIVE_ERR MATCHES "replayed 6 request")
  message(FATAL_ERROR "--replay did not send 6 requests:\n${LIVE_ERR}")
endif()

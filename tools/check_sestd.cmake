# End-to-end determinism check for the sestd analysis service:
#   1. a scripted request sequence must succeed (every response ok:true);
#   2. warm replay: running the sequence twice in one session must
#      produce byte-for-byte the cold output twice — cache hits may
#      never change a response byte;
#   3. --jobs 8, --no-cache, and a tiny --cache-bytes budget (constant
#      eviction) must all produce byte-identical output;
#   4. {"op":"stats"} answers live counters and {"op":"shutdown"} ends
#      the session with exit code 0.
# Run as: cmake -DSESTD=<path> -DWORKDIR=<dir> -P check_sestd.cmake

set(SRC_A "int triangle(int n) { int s = 0; int i; for (i = 1; i <= n; i++) s += i; return s; } int main() { int n = read_int(); print_int(triangle(n)); return 0; }")
# One token differs from SRC_A (i <= n becomes i < n).
set(SRC_B "int triangle(int n) { int s = 0; int i; for (i = 1; i < n; i++) s += i; return s; } int main() { int n = read_int(); print_int(triangle(n)); return 0; }")

set(REQS "")
string(APPEND REQS "{\"id\":1,\"op\":\"parse\",\"source\":\"${SRC_A}\"}\n")
string(APPEND REQS "{\"id\":2,\"op\":\"estimate\",\"source\":\"${SRC_A}\",\"blocks\":true}\n")
string(APPEND REQS "{\"id\":3,\"op\":\"estimate\",\"source\":\"${SRC_A}\",\"options\":{\"intra\":\"markov\",\"loop_iterations\":10}}\n")
string(APPEND REQS "{\"id\":4,\"op\":\"estimate\",\"source\":\"${SRC_B}\"}\n")
string(APPEND REQS "{\"id\":5,\"op\":\"optimize\",\"source\":\"${SRC_A}\",\"passes\":\"all\"}\n")
string(APPEND REQS "{\"id\":6,\"op\":\"report\",\"source\":\"${SRC_A}\",\"input\":\"12\"}\n")
string(APPEND REQS "{\"id\":7,\"op\":\"tune\",\"source\":\"${SRC_A}\",\"input\":\"12\",\"budget\":3}\n")
string(APPEND REQS "{\"id\":8,\"op\":\"estimate\",\"source\":\"does not parse(\"}\n")

file(WRITE ${WORKDIR}/sestd_reqs.jsonl "${REQS}")
file(WRITE ${WORKDIR}/sestd_reqs2x.jsonl "${REQS}${REQS}")

function(run_sestd OUTFILE INFILE)
  execute_process(
    COMMAND ${SESTD} ${ARGN}
    INPUT_FILE ${INFILE}
    OUTPUT_FILE ${OUTFILE}
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "sestd ${ARGN} exited ${RC}:\n${ERR}")
  endif()
endfunction()

run_sestd(${WORKDIR}/sestd_once.out ${WORKDIR}/sestd_reqs.jsonl)
run_sestd(${WORKDIR}/sestd_twice.out ${WORKDIR}/sestd_reqs2x.jsonl)
run_sestd(${WORKDIR}/sestd_twice_j8.out ${WORKDIR}/sestd_reqs2x.jsonl
          --jobs 8)
run_sestd(${WORKDIR}/sestd_twice_nocache.out ${WORKDIR}/sestd_reqs2x.jsonl
          --no-cache)
run_sestd(${WORKDIR}/sestd_twice_tiny.out ${WORKDIR}/sestd_reqs2x.jsonl
          --cache-bytes 8192 --cache-shards 1)

# Requests 1-7 must succeed; request 8 must fail cleanly.
file(STRINGS ${WORKDIR}/sestd_once.out LINES)
list(LENGTH LINES NLINES)
if(NOT NLINES EQUAL 8)
  message(FATAL_ERROR "expected 8 responses, got ${NLINES}")
endif()
set(I 0)
foreach(LINE ${LINES})
  math(EXPR I "${I} + 1")
  if(I LESS 8)
    if(NOT LINE MATCHES "\"ok\":true")
      message(FATAL_ERROR "response ${I} not ok: ${LINE}")
    endif()
    if(I EQUAL 7 AND NOT LINE MATCHES "sest-tune-report/1")
      message(FATAL_ERROR "tune response missing its report: ${LINE}")
    endif()
  else()
    if(NOT LINE MATCHES "\"ok\":false.*does not parse")
      message(FATAL_ERROR "response 8 should report a parse error: ${LINE}")
    endif()
  endif()
  if(NOT LINE MATCHES "\"program_hash\":\"[0-9a-f]+\"")
    message(FATAL_ERROR "response ${I} missing program_hash: ${LINE}")
  endif()
endforeach()

# Warm replay: the doubled stream's output must be exactly the cold
# output twice.
file(READ ${WORKDIR}/sestd_once.out ONCE)
file(READ ${WORKDIR}/sestd_twice.out TWICE)
if(NOT TWICE STREQUAL "${ONCE}${ONCE}")
  message(FATAL_ERROR "warm responses differ from cold responses")
endif()

# Scheduling, cache disabling, and eviction churn must not change bytes.
foreach(VARIANT j8 nocache tiny)
  file(READ ${WORKDIR}/sestd_twice_${VARIANT}.out GOT)
  if(NOT GOT STREQUAL "${TWICE}")
    message(FATAL_ERROR
      "sestd output differs under variant '${VARIANT}'")
  endif()
endforeach()

# stats + shutdown session: live counters, then a clean exit.
file(WRITE ${WORKDIR}/sestd_ctl.jsonl
  "{\"id\":1,\"op\":\"estimate\",\"source\":\"${SRC_A}\"}\n{\"id\":2,\"op\":\"estimate\",\"source\":\"${SRC_A}\"}\n{\"id\":3,\"op\":\"stats\"}\n{\"id\":4,\"op\":\"shutdown\"}\n")
run_sestd(${WORKDIR}/sestd_ctl.out ${WORKDIR}/sestd_ctl.jsonl)
file(READ ${WORKDIR}/sestd_ctl.out CTL)
if(NOT CTL MATCHES "sest-service-stats/1")
  message(FATAL_ERROR "stats response missing schema:\n${CTL}")
endif()
if(NOT CTL MATCHES "\"response\":{\"hit\":[1-9]")
  message(FATAL_ERROR "stats response shows no response-tier hit:\n${CTL}")
endif()
if(NOT CTL MATCHES "\"shutting_down\":true")
  message(FATAL_ERROR "shutdown not acknowledged:\n${CTL}")
endif()

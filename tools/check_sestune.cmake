# End-to-end check for the sestune autotuner CLI:
#   1. a small-budget run over one suite program must succeed (every
#      winner differentially verified), write a sest-tune-report/1
#      document, and write the static winner as sest-tune-config/1;
#   2. the report must be byte-identical across --jobs 1 and --jobs 8
#      and across a repeated run (determinism contract of docs/TUNING.md);
#   3. sestc --validate-json must accept the report;
#   4. sestc --tune-config must replay the written winner on a file.
# Run as: cmake -DSESTUNE=<path> -DSESTC=<path> -DWORKDIR=<dir> \
#               -P check_sestune.cmake

function(run_sestune OUTFILE)
  execute_process(
    COMMAND ${SESTUNE} ${ARGN}
    OUTPUT_FILE ${OUTFILE}
    ERROR_VARIABLE ERR
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "sestune ${ARGN} exited ${RC}:\n${ERR}")
  endif()
endfunction()

run_sestune(${WORKDIR}/sestune_j1.out
            --programs compress --budget 6 --jobs 1
            --report ${WORKDIR}/sestune_j1.json
            --best-config ${WORKDIR}/sestune_best.json)
run_sestune(${WORKDIR}/sestune_j8.out
            --programs compress --budget 6 --jobs 8
            --report ${WORKDIR}/sestune_j8.json)
run_sestune(${WORKDIR}/sestune_again.out
            --programs compress --budget 6 --jobs 1
            --report ${WORKDIR}/sestune_again.json)

foreach(VARIANT j8 again)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/sestune_j1.json ${WORKDIR}/sestune_${VARIANT}.json
    RESULT_VARIABLE DIFF)
  if(NOT DIFF EQUAL 0)
    message(FATAL_ERROR
      "tune report differs between --jobs 1 and variant '${VARIANT}'")
  endif()
endforeach()

file(READ ${WORKDIR}/sestune_j1.json REPORT)
if(NOT REPORT MATCHES "sest-tune-report/1")
  message(FATAL_ERROR "report is missing its schema marker")
endif()
file(READ ${WORKDIR}/sestune_best.json BEST)
if(NOT BEST MATCHES "sest-tune-config/1")
  message(FATAL_ERROR "best config is missing its schema marker")
endif()

execute_process(
  COMMAND ${SESTC} --validate-json ${WORKDIR}/sestune_j1.json
  RESULT_VARIABLE RC OUTPUT_QUIET ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "report failed --validate-json:\n${ERR}")
endif()

# The written winner must replay through sestc on a real file.
get_filename_component(HERE ${CMAKE_CURRENT_LIST_FILE} DIRECTORY)
execute_process(
  COMMAND ${SESTC} --tune-config ${WORKDIR}/sestune_best.json
          --input "12" ${HERE}/testdata/smoke.mc
  RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "sestc --tune-config replay exited ${RC}:\n${ERR}")
endif()
if(NOT OUT MATCHES "pipeline verification: ok")
  message(FATAL_ERROR "replay did not report pipeline verification:\n${OUT}")
endif()

message(STATUS "sestune end-to-end check passed")

# Verifies sestc's option handling:
#   1. a plausible typo must exit nonzero AND print a "did you mean"
#      suggestion naming the real option;
#   2. every entry in sestc.cpp's OptionTable must appear in --help
#      output (the table is the single source of truth, so a flag that
#      parses but is missing from help means the generator broke).
# Run as: cmake -DSESTC=<path> -DSESTC_SOURCE=<sestc.cpp> \
#               -P check_unknown_option.cmake
execute_process(
  COMMAND ${SESTC} --staats
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(RC EQUAL 0)
  message(FATAL_ERROR "sestc --staats exited 0; expected failure")
endif()
if(NOT "${OUT}${ERR}" MATCHES "did you mean '--stats'")
  message(FATAL_ERROR
    "sestc --staats did not suggest --stats; output was:\n${OUT}${ERR}")
endif()

if(NOT DEFINED SESTC_SOURCE)
  return()
endif()
execute_process(
  COMMAND ${SESTC} --help
  RESULT_VARIABLE HELP_RC
  OUTPUT_VARIABLE HELP_OUT
  ERROR_VARIABLE HELP_ERR)
if(NOT HELP_RC EQUAL 0)
  message(FATAL_ERROR "sestc --help exited ${HELP_RC}; expected 0")
endif()
file(READ ${SESTC_SOURCE} SRC)
# OptionTable entries are the only brace-initializers whose first field
# is a quoted long option.
string(REGEX MATCHALL "\\{ *\"--[a-z][a-z-]*\"" ENTRIES "${SRC}")
if(ENTRIES STREQUAL "")
  message(FATAL_ERROR "no OptionTable entries found in ${SESTC_SOURCE}")
endif()
foreach(ENTRY ${ENTRIES})
  string(REGEX REPLACE "\\{ *\"(--[a-z-]+)\"" "\\1" FLAG "${ENTRY}")
  string(FIND "${HELP_OUT}" "${FLAG}" POS)
  if(POS EQUAL -1)
    message(FATAL_ERROR
      "OptionTable entry '${FLAG}' missing from --help output:\n${HELP_OUT}")
  endif()
endforeach()

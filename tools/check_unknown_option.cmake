# Verifies sestc's unknown-option handling: a plausible typo must exit
# nonzero AND print a "did you mean" suggestion naming the real option.
# Run as: cmake -DSESTC=<path-to-sestc> -P check_unknown_option.cmake
execute_process(
  COMMAND ${SESTC} --staats
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(RC EQUAL 0)
  message(FATAL_ERROR "sestc --staats exited 0; expected failure")
endif()
if(NOT "${OUT}${ERR}" MATCHES "did you mean '--stats'")
  message(FATAL_ERROR
    "sestc --staats did not suggest --stats; output was:\n${OUT}${ERR}")
endif()

# Verifies sestc --validate-json's JSONL diagnostics:
#   1. a valid JSONL file (not one JSON document) validates, reporting
#      the record count;
#   2. a JSONL file with one broken record fails AND names the exact
#      failing line number plus an echo of the offending record.
# Run as: cmake -DSESTC=<path> -DWORKDIR=<dir> -P check_validate_json.cmake

file(WRITE ${WORKDIR}/good.jsonl
  "{\"event\":\"a\",\"n\":1}\n{\"event\":\"b\",\"n\":2}\n\n{\"event\":\"c\",\"n\":3}\n")
execute_process(
  COMMAND ${SESTC} --validate-json ${WORKDIR}/good.jsonl
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "good.jsonl failed validation:\n${OUT}${ERR}")
endif()
if(NOT OUT MATCHES "valid JSONL \\(3 records\\)")
  message(FATAL_ERROR
    "good.jsonl should report 3 records; output was:\n${OUT}")
endif()

# Line 3 is broken (trailing comma); lines 1-2 and 4 are fine.
file(WRITE ${WORKDIR}/bad.jsonl
  "{\"event\":\"a\",\"n\":1}\n{\"event\":\"b\",\"n\":2}\n{\"event\":\"broken\",}\n{\"event\":\"d\",\"n\":4}\n")
execute_process(
  COMMAND ${SESTC} --validate-json ${WORKDIR}/bad.jsonl
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(RC EQUAL 0)
  message(FATAL_ERROR "bad.jsonl validated; expected failure")
endif()
if(NOT "${OUT}${ERR}" MATCHES "line 3 does not parse")
  message(FATAL_ERROR
    "bad.jsonl should name line 3; output was:\n${OUT}${ERR}")
endif()
if(NOT "${OUT}${ERR}" MATCHES "bad.jsonl:3: .*broken")
  message(FATAL_ERROR
    "bad.jsonl should echo the offending record; output was:\n${OUT}${ERR}")
endif()

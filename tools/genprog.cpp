//===- tools/genprog.cpp - Synthetic mini-C program generator CLI ----------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// genprog — prints a deterministic synthetic mini-C program to stdout
/// (see suite/Synthetic.h). Useful for eyeballing what the scaling
/// benchmarks and property tests feed the pipeline, and for producing
/// stress inputs for sestc by hand:
///
///   genprog --shape goto-cycles --blocks 1000 --seed 7 > big.mc
///   sestc --estimate --intra markov big.mc
///
/// Options:
///   --shape loop-nest|switch-dispatch|goto-cycles|wide-calls|mixed
///   --blocks N        approximate total CFG blocks (default 200)
///   --function-blocks N   blocks per function (default: varied small)
///   --seed N          PRNG seed (default 1)
///   --check           compile the generated program (parse + sema +
///                     CFG) and exit 0/1 instead of printing it
///
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "lang/Parser.h"
#include "suite/Synthetic.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace sest;

namespace {

[[noreturn]] void usage() {
  std::fputs(
      "usage: genprog [options]\n"
      "  --shape loop-nest|switch-dispatch|goto-cycles|wide-calls|mixed\n"
      "  --blocks N            approximate total CFG blocks\n"
      "  --function-blocks N   approximate blocks per function\n"
      "  --seed N              PRNG seed\n"
      "  --check               compile instead of printing\n",
      stderr);
  std::exit(2);
}

} // namespace

int main(int argc, char **argv) {
  SyntheticConfig Config;
  bool Check = false;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> std::string {
      if (I + 1 >= argc)
        usage();
      return argv[++I];
    };
    if (A == "--shape") {
      if (!parseSyntheticShape(Next(), Config.Shape))
        usage();
    } else if (A == "--blocks") {
      Config.TargetBlocks = std::strtoull(Next().c_str(), nullptr, 10);
    } else if (A == "--function-blocks") {
      Config.FunctionBlocks = std::strtoull(Next().c_str(), nullptr, 10);
    } else if (A == "--seed") {
      Config.Seed = std::strtoull(Next().c_str(), nullptr, 10);
    } else if (A == "--check") {
      Check = true;
    } else {
      usage();
    }
  }

  std::string Source = generateSyntheticSource(Config);
  if (!Check) {
    std::fputs(Source.c_str(), stdout);
    return 0;
  }

  AstContext Ctx;
  DiagnosticEngine Diags;
  if (!parseAndAnalyze(Source, Ctx, Diags)) {
    std::fputs(("genprog: generated program does not compile:\n" +
                Diags.str())
                   .c_str(),
               stderr);
    return 1;
  }
  CfgModule Cfgs = CfgModule::build(Ctx.unit(), Diags);
  if (Diags.hasErrors()) {
    std::fputs(("genprog: CFG construction failed:\n" + Diags.str())
                   .c_str(),
               stderr);
    return 1;
  }
  size_t Blocks = 0, Funcs = 0;
  for (const auto &[F, G] : Cfgs.all()) {
    (void)F;
    Blocks += G->size();
    ++Funcs;
  }
  std::printf("ok: %zu functions, %zu blocks\n", Funcs, Blocks);
  return 0;
}

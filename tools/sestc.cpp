//===- tools/sestc.cpp - Static-estimator command-line driver --------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sestc — the static-estimator compiler driver. Compiles a mini-C file
/// and prints, per the selected action:
///
///   --ast         annotated AST (Figure 3 style, with smart estimates)
///   --cfg         control-flow graphs
///   --dot         Graphviz CFG digraphs annotated with smart estimates
///   --callgraph   Graphviz call graph (with the pointer node)
///   --estimate    block / function / call-site frequency estimates
///   --run         execute the program (stdin text via --input) and
///                 print its output plus a profile summary
///   --compare     run AND estimate, with weight-matching scores
///   --suite       compile and profile the built-in benchmark suite
///                 (no input file; combine with --report)
///   --optimize    run the estimate-driven optimizer passes (see
///                 docs/OPTIMIZATION.md); with --suite, score them
///                 three ways and write --opt-report FILE
///
/// The full option list lives in ONE place — the OptionTable below —
/// which generates both the usage text and `--help`; run `sestc --help`
/// for the authoritative list (tools/check_unknown_option.cmake asserts
/// every table entry appears there). See docs/OBSERVABILITY.md for the
/// observability flags and docs/OPTIMIZATION.md for the optimizer ones.
///
//===----------------------------------------------------------------------===//

#include "backend/Backend.h"
#include "backend/Native.h"
#include "callgraph/CallGraph.h"
#include "estimators/Pipeline.h"
#include "interp/Interp.h"
#include "interp/bytecode/BytecodeCompiler.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "metrics/Evaluation.h"
#include "obs/Accuracy.h"
#include "obs/EventLog.h"
#include "obs/Export.h"
#include "opt/OptReport.h"
#include "opt/Pass.h"
#include "obs/Telemetry.h"
#include "profile/Profile.h"
#include "suite/SuiteRunner.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace sest;

namespace {

void out(const std::string &S) { std::fputs(S.c_str(), stdout); }

/// One option sestc understands. The single source of truth: the usage
/// text, `--help`, and the unknown-option suggestion list are all
/// generated from this table, so they cannot drift apart.
struct OptionSpec {
  const char *Flag;
  const char *Arg;  ///< Value placeholder; null for boolean flags.
  const char *Help; ///< One-line description.
};

const OptionSpec OptionTable[] = {
    {"--ast", nullptr, "print the annotated AST (Figure 3 style)"},
    {"--cfg", nullptr, "print control-flow graphs"},
    {"--dot", nullptr, "Graphviz CFGs annotated with smart estimates"},
    {"--callgraph", nullptr, "Graphviz call graph (with the pointer node)"},
    {"--estimate", nullptr, "print block/function/call-site estimates"},
    {"--run", nullptr, "execute the program and print a profile summary"},
    {"--compare", nullptr, "run AND estimate with matching scores (default)"},
    {"--suite", nullptr, "compile and profile the built-in benchmark suite"},
    {"--optimize", "layout|inline|all",
     "run the estimate-driven optimizer passes"},
    {"--pass-order", "LIST",
     "single-file optimize: custom pass pipeline, comma-separated "
     "(layout,inline,funcorder)"},
    {"--tune-config", "FILE",
     "single-file optimize: replay a sest-tune-config/1 (e.g. a sestune "
     "winner)"},
    {"--weights", "static|profile",
     "weight source for single-file --optimize (default static)"},
    {"--opt-report", "FILE", "with --suite: write sest-opt-report/1 JSON"},
    {"--intra", "loop|smart|markov",
     "intra-procedural estimator (default smart)"},
    {"--inter", "call-site|direct|all_rec|all_rec2|markov",
     "inter-procedural estimator (default markov)"},
    {"--loop-count", "N", "assumed loop iterations (default 5)"},
    {"--counted-loops", nullptr, "use exact constant trip counts"},
    {"--input", "TEXT", "program input text"},
    {"--seed", "N", "PRNG seed for rand()"},
    {"--interp", "ast|bytecode|native",
     "execution engine (default bytecode)"},
    {"--emit-c", "FILE",
     "lower the program to standalone C (native backend) and exit"},
    {"--native-diff", "FILE",
     "with --suite: write the sest-native-diff/1 three-engine report"},
    {"--native-timing", nullptr,
     "with --optimize/--opt-report: time layout-true native binaries"},
    {"--dump-suite-program", "NAME",
     "print a built-in suite program's mini-C source"},
    {"--jobs", "N",
     "worker threads (0 = cores; results identical for every N)"},
    {"--solver", "sparse|dense",
     "Markov linear-solver tier (default sparse; dense is the oracle)"},
    {"--emit-profile", "FILE", "after --run/--compare, save the profile"},
    {"--score-profile", "FILE",
     "score the estimate against a saved profile instead of running"},
    {"--trace", "FILE", "write Chrome trace-event JSON of the run"},
    {"--log", "FILE",
     "write the sest-events/1 JSONL decision/provenance log"},
    {"--stats", nullptr, "print phase times and all counters"},
    {"--stats-format", "table|prom",
     "counter output format for --stats: aligned table (default) or "
     "Prometheus text exposition"},
    {"--report", "FILE", "write machine-readable JSON run/suite report"},
    {"--explain", nullptr, "annotated listing + WORST-n divergence tables"},
    {"--accuracy-report", "FILE", "write sest-accuracy-report/1 JSON"},
    {"--validate-json", "FILE",
     "round-trip FILE through the project JSON parser"},
    {"--help", nullptr, "print this help and exit"},
};

std::string helpText() {
  std::string S = "usage: sestc [action] [options] file.mc\n";
  for (const OptionSpec &Opt : OptionTable) {
    std::string Left = std::string("  ") + Opt.Flag;
    if (Opt.Arg)
      Left += std::string(" ") + Opt.Arg;
    if (Left.size() < 32)
      Left.resize(32, ' ');
    else
      Left += "  ";
    S += Left + Opt.Help + "\n";
  }
  return S;
}

[[noreturn]] void usage() {
  out(helpText());
  std::exit(2);
}

/// Classic dynamic-programming edit distance, for option suggestions.
size_t editDistance(const std::string &A, const std::string &B) {
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diag = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Next = std::min({Row[J] + 1, Row[J - 1] + 1,
                              Diag + (A[I - 1] == B[J - 1] ? 0 : 1)});
      Diag = Row[J];
      Row[J] = Next;
    }
  }
  return Row[B.size()];
}

[[noreturn]] void unknownOption(const std::string &A) {
  std::string Msg = "sestc: unknown option '" + A + "'";
  const char *Best = nullptr;
  size_t BestDist = 4; // only suggest plausible typos
  for (const OptionSpec &Opt : OptionTable) {
    size_t D = editDistance(A, Opt.Flag);
    if (D < BestDist) {
      BestDist = D;
      Best = Opt.Flag;
    }
  }
  if (Best)
    Msg += "; did you mean '" + std::string(Best) + "'?";
  std::fputs((Msg + "\n").c_str(), stderr);
  std::exit(2);
}

/// Rejects an unknown value for a closed option-value set (e.g.
/// `--interp natve`) with the same did-you-mean treatment typo'd flags
/// get, falling back to listing the valid values.
[[noreturn]] void unknownValue(const std::string &Flag,
                               const std::string &V,
                               std::initializer_list<const char *> Valid) {
  std::string Msg =
      "sestc: unknown value '" + V + "' for " + Flag;
  const char *Best = nullptr;
  size_t BestDist = 4; // only suggest plausible typos
  for (const char *Name : Valid) {
    size_t D = editDistance(V, Name);
    if (D < BestDist) {
      BestDist = D;
      Best = Name;
    }
  }
  if (Best) {
    Msg += "; did you mean '" + std::string(Best) + "'?";
  } else {
    Msg += " (expected ";
    bool FirstName = true;
    for (const char *Name : Valid) {
      if (!FirstName)
        Msg += "|";
      FirstName = false;
      Msg += Name;
    }
    Msg += ")";
  }
  std::fputs((Msg + "\n").c_str(), stderr);
  std::exit(2);
}

struct Options {
  std::string Action = "--compare";
  std::string File;
  std::string Input;
  std::string EmitProfile;
  std::string ScoreProfile;
  std::string TraceFile;
  std::string LogFile;
  std::string ReportFile;
  std::string AccuracyReportFile;
  std::string ValidateJsonFile;
  std::string OptReportFile;
  std::string EmitCFile;
  std::string NativeDiffFile;
  std::string DumpSuiteProgram;
  std::string WeightsSource = "static";
  std::string PassOrder;
  std::string TuneConfigFile;
  opt::OptPassSet Optimize = opt::OptPassSet::All;
  bool HasOptimize = false;
  bool NativeTiming = false;
  bool Explain = false;
  bool Stats = false;
  bool StatsProm = false;
  uint64_t Seed = 1;
  unsigned Jobs = 0;
  InterpEngine Engine = InterpEngine::Bytecode;
  EstimatorOptions Est;
};

Options parseArgs(int argc, char **argv) {
  Options O;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> std::string {
      if (I + 1 >= argc)
        usage();
      return argv[++I];
    };
    if (A == "--ast" || A == "--cfg" || A == "--dot" ||
        A == "--callgraph" || A == "--estimate" || A == "--run" ||
        A == "--compare" || A == "--suite") {
      O.Action = A;
    } else if (A == "--intra") {
      std::string V = Next();
      if (V == "loop")
        O.Est.Intra = IntraEstimatorKind::Loop;
      else if (V == "smart")
        O.Est.Intra = IntraEstimatorKind::Smart;
      else if (V == "markov")
        O.Est.Intra = IntraEstimatorKind::Markov;
      else
        usage();
    } else if (A == "--inter") {
      std::string V = Next();
      if (V == "call-site")
        O.Est.Inter = InterEstimatorKind::CallSite;
      else if (V == "direct")
        O.Est.Inter = InterEstimatorKind::Direct;
      else if (V == "all_rec")
        O.Est.Inter = InterEstimatorKind::AllRec;
      else if (V == "all_rec2")
        O.Est.Inter = InterEstimatorKind::AllRec2;
      else if (V == "markov")
        O.Est.Inter = InterEstimatorKind::Markov;
      else
        usage();
    } else if (A == "--loop-count") {
      O.Est.setLoopIterations(std::strtod(Next().c_str(), nullptr));
    } else if (A == "--counted-loops") {
      O.Est.Branch.UseConstantLoopBounds = true;
    } else if (A == "--input") {
      O.Input = Next();
    } else if (A == "--seed") {
      O.Seed = std::strtoull(Next().c_str(), nullptr, 10);
    } else if (A == "--interp") {
      std::string V = Next();
      if (V == "ast")
        O.Engine = InterpEngine::Ast;
      else if (V == "bytecode")
        O.Engine = InterpEngine::Bytecode;
      else if (V == "native")
        O.Engine = InterpEngine::Native;
      else
        unknownValue("--interp", V, {"ast", "bytecode", "native"});
    } else if (A == "--jobs") {
      O.Jobs = static_cast<unsigned>(
          std::strtoul(Next().c_str(), nullptr, 10));
      // Single-file estimation parallelizes per function with the same
      // knob (suite runs parallelize per program instead).
      O.Est.Jobs = O.Jobs;
    } else if (A == "--solver") {
      std::string V = Next();
      if (V == "sparse")
        O.Est.setSolver(MarkovSolverKind::Sparse);
      else if (V == "dense")
        O.Est.setSolver(MarkovSolverKind::Dense);
      else
        usage();
    } else if (A == "--optimize") {
      std::string V = Next();
      if (V == "layout")
        O.Optimize = opt::OptPassSet::Layout;
      else if (V == "inline")
        O.Optimize = opt::OptPassSet::Inline;
      else if (V == "all")
        O.Optimize = opt::OptPassSet::All;
      else
        usage();
      O.HasOptimize = true;
    } else if (A == "--pass-order") {
      O.PassOrder = Next();
      O.HasOptimize = true;
    } else if (A == "--tune-config") {
      O.TuneConfigFile = Next();
      O.HasOptimize = true;
    } else if (A == "--weights") {
      std::string V = Next();
      if (V != "static" && V != "profile")
        usage();
      O.WeightsSource = V;
    } else if (A == "--opt-report") {
      O.OptReportFile = Next();
    } else if (A == "--emit-c") {
      O.EmitCFile = Next();
    } else if (A == "--native-diff") {
      O.NativeDiffFile = Next();
    } else if (A == "--native-timing") {
      O.NativeTiming = true;
    } else if (A == "--dump-suite-program") {
      O.DumpSuiteProgram = Next();
      O.Action = "--dump-suite-program";
    } else if (A == "--help") {
      out(helpText());
      std::exit(0);
    } else if (A == "--emit-profile") {
      O.EmitProfile = Next();
    } else if (A == "--score-profile") {
      O.ScoreProfile = Next();
    } else if (A == "--trace") {
      O.TraceFile = Next();
    } else if (A == "--log") {
      O.LogFile = Next();
    } else if (A == "--report") {
      O.ReportFile = Next();
    } else if (A == "--accuracy-report") {
      O.AccuracyReportFile = Next();
    } else if (A == "--validate-json") {
      O.ValidateJsonFile = Next();
      O.Action = "--validate-json";
    } else if (A == "--explain") {
      O.Explain = true;
    } else if (A == "--stats") {
      O.Stats = true;
    } else if (A == "--stats-format") {
      std::string V = Next();
      if (V != "table" && V != "prom")
        usage();
      O.StatsProm = V == "prom";
      O.Stats = true; // implies --stats
    } else if (!A.empty() && A[0] == '-') {
      unknownOption(A);
    } else {
      O.File = A;
    }
  }
  if (O.File.empty() && O.Action != "--suite" &&
      O.Action != "--validate-json" &&
      O.Action != "--dump-suite-program")
    usage();
  return O;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    out("sestc: cannot open '" + Path + "'\n");
    std::exit(1);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

bool writeTextFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path);
  if (!Out) {
    out("sestc: cannot write '" + Path + "'\n");
    return false;
  }
  Out << Content;
  return true;
}

/// Computes the accuracy attribution of \p E against \p P and emits
/// whatever the flags asked for: the annotated listing plus WORST-n
/// tables (--explain) and/or the JSON document (--accuracy-report).
int emitAccuracy(const Options &O, const std::string &Source,
                 const AstContext &Ctx, const CfgModule &Cfgs,
                 const CallGraph &CG, const ProgramEstimate &E,
                 const Profile &P) {
  obs::AccuracyReport Rep =
      obs::computeAccuracy(Ctx.unit(), Cfgs, CG, E, P, O.Est);
  Rep.ProgramHash = hashHex(contentHash64(Source));
  if (O.Explain) {
    out("\n-- annotated listing (estimated vs actual) --\n" +
        obs::renderAnnotatedListing(Source, Rep));
    out("\n" + obs::renderAccuracySummary(Rep));
    out("\n" + obs::renderWorstTables(Rep, 5));
  }
  if (!O.AccuracyReportFile.empty()) {
    if (!writeTextFile(O.AccuracyReportFile,
                       obs::accuracyReportJson({Rep})))
      return 1;
    out("accuracy report written to " + O.AccuracyReportFile + "\n");
  }
  return 0;
}

/// --validate-json: round-trip a file through the project JSON parser.
/// Falls back to line-delimited mode for JSONL documents (e.g. the
/// --log event stream): every non-empty line must parse on its own.
int runValidateJson(const std::string &Path) {
  std::string Text = readFile(Path);
  if (parseJson(Text)) {
    out(Path + ": valid JSON\n");
    return 0;
  }
  size_t Records = 0, LineNo = 0, Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    if (!parseJson(Line)) {
      // Echo the offending record (truncated) so the failing line can
      // be found without opening the file at the reported number.
      std::string Snippet = Line.substr(0, 60);
      if (Line.size() > 60)
        Snippet += "...";
      out("sestc: '" + Path + "' is neither valid JSON nor valid JSONL"
          " (line " + std::to_string(LineNo) + " does not parse)\n" +
          Path + ":" + std::to_string(LineNo) + ": " + Snippet + "\n");
      return 1;
    }
    ++Records;
  }
  if (Records == 0) {
    out("sestc: '" + Path + "' is not valid JSON\n");
    return 1;
  }
  out(Path + ": valid JSONL (" + std::to_string(Records) +
      " records)\n");
  return 0;
}

/// Live state for the single-file optimize pass observer: everything the
/// per-pass printer needs beyond the PassContext itself.
struct OptimizePrintState {
  const RunResult *Base = nullptr;
  ProgramInput In;
  InterpOptions Interp;
  double IdentityCost = 0.0;
  int Rc = 0;
};

/// Pipeline observer: prints each pass's decisions at the moment the
/// pass completes — layout on whatever CFG the pass saw, inlining with
/// its differential verification, function order with its locality cost.
void printOptimizePass(const opt::Pass &P, const opt::PassContext &PC,
                       void *StateV) {
  OptimizePrintState &St = *static_cast<OptimizePrintState *>(StateV);
  const TranslationUnit &Unit = PC.Unit;
  switch (P.kind()) {
  case opt::PassKind::Layout: {
    out("\n-- block layout (| marks the cold-outline boundary) --\n");
    TextTable T;
    T.setHeader({"Function", "Order", "Chains", "Cold"});
    for (const FunctionDecl *F : Unit.Functions) {
      if (!F->isDefined())
        continue;
      const opt::FunctionLayout &FL = PC.Layout.Functions[F->functionId()];
      if (FL.Order.empty() ||
          (FL.isIdentity() && FL.FirstColdPos == FL.Order.size()))
        continue;
      std::string OrderStr;
      for (size_t I = 0; I < FL.Order.size(); ++I) {
        if (I)
          OrderStr += ' ';
        if (I == FL.FirstColdPos)
          OrderStr += "| ";
        OrderStr += std::to_string(FL.Order[I]);
      }
      T.addRow({F->name(), OrderStr, std::to_string(FL.NumChains),
                std::to_string(FL.Order.size() - FL.FirstColdPos)});
    }
    out(T.str());
    if (!PC.HasInline) {
      // The CFG still matches the baseline profile: reclassify the real
      // counters under the new order.
      const ProgramBlockOrder Order = PC.Layout.blockOrder();
      const LayoutCostCounters C = opt::reclassifyLayoutCost(
          Unit, PC.Cfgs, St.Base->TheProfile, &Order, St.Base->LayoutCost);
      const double Saved = St.IdentityCost > 0
                               ? (St.IdentityCost - C.cost()) /
                                     St.IdentityCost
                               : 0.0;
      out("layout cost on this input: " + formatDouble(C.cost(), 0) +
          " vs identity " + formatDouble(St.IdentityCost, 0) + " (" +
          formatPercent(Saved) + " saved)\n");
    } else {
      // Inlining already reshaped the CFG; the baseline profile no
      // longer lines up block-for-block, so report the analytic
      // prediction under the extended weights instead.
      out("layout cost (predicted, post-inline weights): " +
          formatDouble(opt::predictedLayoutCost(Unit, PC.Cfgs, PC.CG,
                                                PC.W, &PC.Layout),
                       0) +
          "\n");
    }

    opt::BranchHints H = opt::computeBranchHints(Unit, PC.Cfgs, PC.W);
    out("never-predicted-taken arcs: " +
        std::to_string(H.NeverTaken.size()) + "\n");
    for (const opt::BranchHints::ColdArc &A : H.NeverTaken)
      out("  " + Unit.Functions[A.Fid]->name() + ": block " +
          std::to_string(A.Block) + " slot " + std::to_string(A.Slot) +
          "\n");
    break;
  }
  case opt::PassKind::Inline: {
    out("\n-- inlining --\n");
    if (PC.LastInlinePlan.Sites.empty()) {
      out("no call sites selected\n");
      break;
    }
    TextTable T;
    T.setHeader({"Site", "Caller", "Callee", "Line", "Weight"});
    for (const opt::InlineDecision &D : PC.LastInlinePlan.Sites)
      T.addRow({std::to_string(D.CallSiteId), D.Caller->name(),
                D.Callee->name(), std::to_string(D.Site->loc().Line),
                formatDouble(D.Weight, 3)});
    out(T.str());
    RunResult Inl = runProgram(Unit, PC.Cfgs, St.In, St.Interp);
    opt::InlineVerifyResult V =
        opt::compareInlinedRun(*St.Base, Inl, PC.Inlined);
    if (!V.Match) {
      out("inline verification FAILED: " + V.Detail + "\n");
      St.Rc = 1;
    } else {
      out("inline verification: ok (output and mapped profile "
          "identical)\n");
      out("dynamic calls removed on this input: " +
          std::to_string(St.Base->LayoutCost.Calls -
                         Inl.LayoutCost.Calls) +
          "; cost " + formatDouble(Inl.LayoutCost.cost(), 0) +
          " vs identity " + formatDouble(St.IdentityCost, 0) + "\n");
    }
    break;
  }
  case opt::PassKind::FuncOrder: {
    out("\n-- function order (call-arc chaining) --\n");
    if (PC.FuncOrder.isIdentity()) {
      out("identity order kept (" +
          std::to_string(PC.FuncOrder.NumChains) + " chains)\n");
    } else {
      std::string OrderStr;
      for (uint32_t Fid : PC.FuncOrder.Order) {
        const FunctionDecl *F = Unit.Functions[Fid];
        if (!F->isDefined() || F->isBuiltin())
          continue;
        if (!OrderStr.empty())
          OrderStr += ' ';
        OrderStr += F->name();
      }
      out("order: " + OrderStr + " (" +
          std::to_string(PC.FuncOrder.NumChains) + " chains)\n");
    }
    const double Identity = opt::functionOrderCost(
        Unit, PC.CG, PC.W, opt::identityFunctionOrder(Unit));
    const double Cost =
        opt::functionOrderCost(Unit, PC.CG, PC.W, PC.FuncOrder);
    out("call locality cost: " + formatDouble(Cost, 0) +
        " vs identity " + formatDouble(Identity, 0) + "\n");
    break;
  }
  }
}

/// Single-file optimize: resolve the pass pipeline (--tune-config FILE >
/// --pass-order LIST > the canned --optimize set), print each pass's
/// decisions under the chosen weight source (--weights static|profile),
/// apply them, and verify/score against the identity baseline run. The
/// canned sets print bit-identically to the pre-pipeline plumbing.
int runOptimize(const Options &O, AstContext &Ctx, CfgModule &Cfgs,
                const CallGraph &CG, const ProgramEstimate &E) {
  const TranslationUnit &Unit = Ctx.unit();

  // Resolve the configuration first so a bad one fails before any run.
  opt::TuneConfig Config;
  bool Custom = true;
  std::string Err;
  if (!O.TuneConfigFile.empty()) {
    if (!opt::TuneConfig::fromJson(readFile(O.TuneConfigFile), Config,
                                   &Err)) {
      out("sestc: bad tune config '" + O.TuneConfigFile + "': " + Err +
          "\n");
      return 1;
    }
    if (!O.PassOrder.empty() &&
        !opt::TuneConfig::parseOrderString(O.PassOrder, Config.Order,
                                           &Err)) {
      out("sestc: bad --pass-order: " + Err + "\n");
      return 1;
    }
  } else if (!O.PassOrder.empty()) {
    if (!opt::TuneConfig::parseOrderString(O.PassOrder, Config.Order,
                                           &Err)) {
      out("sestc: bad --pass-order: " + Err + "\n");
      return 1;
    }
  } else {
    Custom = false;
    opt::TuneConfig::canned(opt::optPassSetName(O.Optimize), Config);
  }

  OptimizePrintState St;
  St.In.Text = O.Input;
  St.In.RandSeed = O.Seed;
  St.Interp.Engine = O.Engine;

  // The identity-layout baseline: the cost yardstick, the profile
  // behind --weights profile, and the inliner's differential reference.
  RunResult Base = runProgram(Unit, Cfgs, St.In, St.Interp);
  if (!Base.Ok) {
    out("sestc: baseline run failed: " + Base.Error + "\n");
    return 1;
  }
  St.Base = &Base;
  St.IdentityCost = Base.LayoutCost.cost();

  opt::WeightSource W =
      O.WeightsSource == "profile"
          ? opt::weightsFromProfile(Unit, Base.TheProfile)
          : opt::weightsFromEstimate(Unit, Cfgs, E, O.Est);
  if (Custom)
    out("Optimizer pipeline '" + Config.orderString() + "' with " +
        W.Origin + " weights:\n");
  else
    out("Optimizer pass set '" +
        std::string(opt::optPassSetName(O.Optimize)) + "' with " +
        W.Origin + " weights:\n");

  const opt::Pipeline Pipe(Config);
  opt::PipelineResult PR = Pipe.run(Ctx, Cfgs, CG, std::move(W),
                                    printOptimizePass, &St);

  // Custom pipelines can sequence passes in any order; close with the
  // whole-pipeline verification the per-pass sections cannot do.
  if (Custom) {
    ProgramBlockOrder Order;
    InterpOptions Final = St.Interp;
    if (PR.HasLayout) {
      Order = PR.Layout.blockOrder();
      Final.Layout = &Order;
    }
    const RunResult Tuned = runProgram(Unit, Cfgs, St.In, Final);
    if (!Tuned.Ok) {
      out("pipeline verification FAILED: " + Tuned.Error + "\n");
      St.Rc = 1;
    } else if (Tuned.Output != Base.Output ||
               Tuned.ExitCode != Base.ExitCode) {
      out("pipeline verification FAILED: output differs from the "
          "identity baseline\n");
      St.Rc = 1;
    } else {
      out("\npipeline verification: ok; final cost on this input: " +
          formatDouble(Tuned.LayoutCost.cost(), 0) + " vs identity " +
          formatDouble(St.IdentityCost, 0) + "\n");
    }
  }
  return St.Rc;
}

/// Bitwise profile identity (any drift between engines is a bug).
bool profilesIdentical(const Profile &A, const Profile &B) {
  if (A.Functions.size() != B.Functions.size() ||
      A.CallSiteCounts != B.CallSiteCounts ||
      A.TotalCycles != B.TotalCycles)
    return false;
  for (size_t I = 0; I < A.Functions.size(); ++I) {
    const FunctionProfile &FA = A.Functions[I];
    const FunctionProfile &FB = B.Functions[I];
    if (FA.EntryCount != FB.EntryCount ||
        FA.BlockCounts != FB.BlockCounts || FA.ArcCounts != FB.ArcCounts)
      return false;
  }
  return true;
}

/// --suite --native-diff: run the whole suite under all three engines
/// and compare every (program, input) bitwise — profiles, steps, exit
/// codes and resource high-water marks. The document contains no
/// wall-clock fields, so it is byte-identical across --jobs values;
/// CI diffs the --jobs 8 and --jobs 1 files directly. Returns the
/// process exit code (mismatches are errors; a missing host C compiler
/// is not — the document then records available=false).
int runNativeDiff(const Options &O) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", "sest-native-diff/1");
  std::string Why;
  const bool Available = backend::nativeEngineAvailable(&Why);
  W.member("available", Available);
  if (!Available) {
    W.member("reason", Why);
    W.member("all_match", true);
    W.endObject();
    if (!writeTextFile(O.NativeDiffFile, W.take()))
      return 1;
    out("native diff skipped (" + Why + "); written to " +
        O.NativeDiffFile + "\n");
    return 0;
  }

  const InterpEngine Engines[3] = {
      InterpEngine::Ast, InterpEngine::Bytecode, InterpEngine::Native};
  std::vector<CompiledSuiteProgram> Runs[3];
  for (int E = 0; E < 3; ++E) {
    InterpOptions IO;
    IO.Engine = Engines[E];
    Runs[E] = compileAndProfileSuite(IO, O.Jobs);
  }

  bool AllMatch = true;
  uint64_t InputsCompared = 0;
  W.key("programs").beginArray();
  for (size_t P = 0; P < Runs[0].size(); ++P) {
    const CompiledSuiteProgram &RA = Runs[0][P];
    const CompiledSuiteProgram &RB = Runs[1][P];
    const CompiledSuiteProgram &RN = Runs[2][P];
    W.beginObject();
    W.member("name", RA.Spec ? RA.Spec->Name : "?");
    std::string Detail;
    if (!RA.Ok || !RB.Ok || !RN.Ok) {
      Detail = "run failed: ast='" + RA.Error + "' bytecode='" +
               RB.Error + "' native='" + RN.Error + "'";
    } else if (RA.Profiles.size() != RN.Profiles.size() ||
               RB.Profiles.size() != RN.Profiles.size()) {
      Detail = "input counts differ";
    } else {
      for (size_t I = 0; I < RA.Profiles.size() && Detail.empty();
           ++I) {
        ++InputsCompared;
        const SuiteRunStats &SA = RA.RunStats[I];
        const SuiteRunStats &SB = RB.RunStats[I];
        const SuiteRunStats &SN = RN.RunStats[I];
        if (SA.Steps != SN.Steps || SB.Steps != SN.Steps ||
            SA.Cycles != SN.Cycles || SB.Cycles != SN.Cycles ||
            SA.HeapCellsHighWater != SN.HeapCellsHighWater ||
            SA.CallDepthHighWater != SN.CallDepthHighWater ||
            SA.ExitCode != SN.ExitCode)
          Detail = SA.InputName + ": run stats differ";
        else if (!profilesIdentical(RA.Profiles[I], RN.Profiles[I]))
          Detail = SA.InputName + ": ast vs native profile differs";
        else if (!profilesIdentical(RB.Profiles[I], RN.Profiles[I]))
          Detail = SA.InputName + ": bytecode vs native profile differs";
      }
    }
    const bool Match = Detail.empty();
    W.member("match", Match);
    if (!Match) {
      W.member("detail", Detail);
      AllMatch = false;
    }
    W.endObject();
  }
  W.endArray();
  W.member("programs_compared", static_cast<uint64_t>(Runs[0].size()));
  W.member("inputs_compared", InputsCompared);
  W.member("all_match", AllMatch);
  W.endObject();
  if (!writeTextFile(O.NativeDiffFile, W.take()))
    return 1;
  out("native diff written to " + O.NativeDiffFile + " (" +
      std::to_string(InputsCompared) + " inputs, " +
      (AllMatch ? "all match" : "MISMATCH") + ")\n");
  return AllMatch ? 0 : 1;
}

/// --suite: compile and profile every built-in benchmark program,
/// print a summary table, and optionally write the JSON suite report.
int runSuite(const Options &O) {
  if (!O.NativeDiffFile.empty())
    return runNativeDiff(O);

  InterpOptions Interp;
  Interp.Engine = O.Engine;
  std::vector<CompiledSuiteProgram> Programs =
      compileAndProfileSuite(Interp, O.Jobs);

  // --log without the optimizer actions: run a serial decision pass
  // (estimate -> static weights -> layout/hints/inline plan) so the
  // event log always carries optimizer provenance. The pass is
  // read-only and single-threaded, and its inputs (static estimates)
  // are engine- and jobs-independent, so the log is byte-stable. With
  // --optimize/--opt-report the richer three-origin scoring pass emits
  // the events instead.
  if (!O.LogFile.empty() && !O.HasOptimize && O.OptReportFile.empty() &&
      obs::eventLogActive()) {
    obs::ScopedPhase DecisionPhase("suite.decisions");
    EstimatorOptions Est = O.Est;
    Est.Jobs = 1;
    for (const CompiledSuiteProgram &P : Programs) {
      if (!P.Ok || P.Profiles.empty())
        continue;
      obs::logEvent("program.begin", obs::provProgram(P.Spec->Name));
      ProgramEstimate E =
          estimateProgram(P.unit(), *P.Cfgs, *P.CG, Est);
      opt::WeightSource W =
          opt::weightsFromEstimate(P.unit(), *P.Cfgs, E, Est);
      opt::computeBlockLayout(P.unit(), *P.Cfgs, W);
      opt::computeBranchHints(P.unit(), *P.Cfgs, W);
      opt::planInlining(P.unit(), *P.Cfgs, *P.CG, W);
    }
  }

  TextTable T;
  T.setHeader({"Program", "Status", "Compile ms", "Runs", "Steps",
               "Run ms"});
  bool AllOk = true;
  for (const CompiledSuiteProgram &P : Programs) {
    uint64_t Steps = 0;
    double WallMs = 0.0;
    for (const SuiteRunStats &S : P.RunStats) {
      Steps += S.Steps;
      WallMs += S.WallMs;
    }
    T.addRow({P.Spec ? P.Spec->Name : "?", P.Ok ? "ok" : "FAILED",
              formatDouble(P.CompileMs, 2),
              std::to_string(P.RunStats.size()),
              std::to_string(Steps), formatDouble(WallMs, 2)});
    AllOk = AllOk && P.Ok;
  }
  out(T.str());
  for (const CompiledSuiteProgram &P : Programs)
    if (!P.Ok)
      out("error: " + P.Error + "\n");

  if (!O.ReportFile.empty()) {
    if (!writeTextFile(O.ReportFile,
                       suiteReportJson(Programs, O.Engine, O.Jobs)))
      return 1;
    out("suite report written to " + O.ReportFile + "\n");
  }
  if (!O.AccuracyReportFile.empty()) {
    if (!writeTextFile(O.AccuracyReportFile,
                       suiteAccuracyReportJson(Programs, 20, O.Jobs)))
      return 1;
    out("accuracy report written to " + O.AccuracyReportFile + "\n");
  }

  // --optimize / --opt-report: score the optimizer passes three ways
  // (static / profile / oracle weights) over the whole suite.
  if (O.HasOptimize || !O.OptReportFile.empty()) {
    opt::OptReportOptions OR;
    OR.Passes = O.Optimize;
    OR.Est = O.Est;
    OR.Engine = O.Engine;
    OR.Jobs = O.Jobs;
    OR.MeasureNative = O.NativeTiming;
    opt::OptSuiteReport Rep = opt::computeOptReport(Programs, OR);

    TextTable T;
    std::vector<std::string> Header = {"Program", "Identity cost",
                                       "Static", "Profile", "Oracle",
                                       "Inline ok"};
    if (O.NativeTiming)
      Header.push_back("Native ms (layout/identity)");
    T.setHeader(Header);
    for (const opt::OptProgramReport &P : Rep.Programs) {
      if (!P.Ok) {
        std::vector<std::string> Row = {P.Name, "-", "-", "-", "-", "-"};
        if (O.NativeTiming)
          Row.push_back("-");
        T.addRow(Row);
        continue;
      }
      auto Red = [&P](const char *Src) -> std::string {
        for (const opt::LayoutSourceResult &L : P.Layout)
          if (L.Source == Src)
            return formatPercent(L.Reduction);
        return "-";
      };
      std::string InlOk = P.Inline.empty() ? "-" : "yes";
      for (const opt::InlineSourceResult &I : P.Inline)
        if (!I.Verified)
          InlOk = "NO";
      std::vector<std::string> Row = {
          P.Name, formatDouble(P.IdentityCost, 0), Red("static"),
          Red("profile"), Red("oracle"), InlOk};
      if (O.NativeTiming)
        Row.push_back(
            P.Native.Available
                ? formatDouble(P.Native.LayoutWallMs, 2) + "/" +
                      formatDouble(P.Native.IdentityWallMs, 2) +
                      (P.Native.ProfilesMatch && P.Native.LayoutCostMatch
                           ? ""
                           : " MISMATCH")
                : "unavailable");
      T.addRow(Row);
    }
    out("\n-- optimizer (" +
        std::string(opt::optPassSetName(O.Optimize)) + ") --\n" +
        T.str());
    if (O.Optimize != opt::OptPassSet::Inline) {
      out("static recovery ratio: " +
          formatDouble(Rep.StaticRecoveryRatio, 3) +
          (Rep.MeetsRecoveryFloor ? " (meets " : " (BELOW ") +
          formatDouble(OR.StaticRecoveryFloor, 2) + " floor)\n");
      if (!Rep.AllCrossChecksOk) {
        out("error: a layout VM cross-check failed\n");
        AllOk = false;
      }
    }
    if (O.Optimize != opt::OptPassSet::Layout && !Rep.AllInlineVerified) {
      out("error: an inline differential verification failed\n");
      AllOk = false;
    }
    if (O.NativeTiming)
      for (const opt::OptProgramReport &P : Rep.Programs)
        if (P.Ok && P.Native.Available &&
            (!P.Native.ProfilesMatch || !P.Native.LayoutCostMatch)) {
          out("error: layout-true native binary diverged on " + P.Name +
              "\n");
          AllOk = false;
        }
    if (!O.OptReportFile.empty()) {
      if (!writeTextFile(O.OptReportFile, opt::optReportJson(Rep, OR)))
        return 1;
      out("opt report written to " + O.OptReportFile + "\n");
    }
  }
  return AllOk ? 0 : 1;
}

int runAction(const Options &O) {
  if (O.Action == "--validate-json")
    return runValidateJson(O.ValidateJsonFile);
  if (O.Action == "--dump-suite-program") {
    const SuiteProgram *P = findSuiteProgram(O.DumpSuiteProgram);
    if (!P) {
      std::string Msg = "sestc: unknown suite program '" +
                        O.DumpSuiteProgram + "'";
      const std::string *Best = nullptr;
      size_t BestDist = 4;
      for (const SuiteProgram &Cand : benchmarkSuite()) {
        size_t D = editDistance(O.DumpSuiteProgram, Cand.Name);
        if (D < BestDist) {
          BestDist = D;
          Best = &Cand.Name;
        }
      }
      if (Best)
        Msg += "; did you mean '" + *Best + "'?";
      std::fputs((Msg + "\n").c_str(), stderr);
      return 2;
    }
    out(P->Source);
    return 0;
  }
  if (O.Action == "--suite")
    return runSuite(O);

  std::string Source = readFile(O.File);

  AstContext Ctx;
  DiagnosticEngine Diags;
  if (!parseAndAnalyze(Source, Ctx, Diags)) {
    out(O.File + ":\n" + Diags.str() + "\n");
    return 1;
  }
  CfgModule Cfgs = CfgModule::build(Ctx.unit(), Diags);
  CallGraph CG = CallGraph::build(Ctx.unit(), Cfgs);

  if (O.Action == "--ast") {
    for (const FunctionDecl *F : Ctx.unit().Functions) {
      if (!F->isDefined())
        continue;
      AstEstimatorConfig Config;
      Config.Kind = O.Est.Intra == IntraEstimatorKind::Loop
                        ? IntraEstimatorKind::Loop
                        : IntraEstimatorKind::Smart;
      Config.LoopIterations = O.Est.LoopIterations;
      Config.Branch = O.Est.Branch;
      AstFrequencies Freqs = estimateAstFrequencies(F, Config);
      AstPrintOptions PrintOpts;
      PrintOpts.StmtFrequencies = &Freqs.Exec;
      out(printFunctionAst(F, PrintOpts) + "\n");
    }
    return 0;
  }

  if (O.Action == "--cfg") {
    for (const auto &[F, G] : Cfgs.all())
      out(printCfg(*G) + "\n");
    return 0;
  }

  if (O.Action == "--dot") {
    IntraEstimates Intra = computeIntraEstimates(Ctx.unit(), Cfgs, O.Est);
    for (const auto &[F, G] : Cfgs.all())
      out(printCfgDot(*G, &Intra.Blocks[F->functionId()]));
    return 0;
  }

  ProgramEstimate E = estimateProgram(Ctx.unit(), Cfgs, CG, O.Est);

  // --emit-c: lower to the native backend's standalone C and exit.
  // Pure emission — works without a host C compiler. With --optimize
  // (layout/all), the static-estimate layout plan is baked in, so the
  // artifact is the layout-true binary's source; otherwise identity.
  if (!O.EmitCFile.empty()) {
    const bc::BcModule Bc = bc::compileBytecode(Ctx.unit(), Cfgs);
    backend::NativeLayoutPlan Plan;
    if (O.HasOptimize && O.Optimize != opt::OptPassSet::Inline) {
      const opt::WeightSource W =
          opt::weightsFromEstimate(Ctx.unit(), Cfgs, E, O.Est);
      const opt::ProgramLayout PL =
          opt::computeBlockLayout(Ctx.unit(), Cfgs, W);
      Plan.Order = PL.blockOrder();
      Plan.FirstColdPos.reserve(PL.Functions.size());
      for (const opt::FunctionLayout &F : PL.Functions)
        Plan.FirstColdPos.push_back(F.FirstColdPos);
    }
    std::string Err;
    const std::string CSrc = backend::cBackend().emitSource(
        Ctx.unit(), Cfgs, Bc, Plan, &Err);
    if (CSrc.empty()) {
      out("sestc: cannot lower to C: " + Err + "\n");
      return 1;
    }
    if (!writeTextFile(O.EmitCFile, CSrc))
      return 1;
    out("native C source written to " + O.EmitCFile + " (" +
        std::to_string(CSrc.size()) + " bytes)\n");
    return 0;
  }

  if (O.Action == "--callgraph") {
    out(printCallGraphDot(Ctx.unit(), CG, &E.FunctionEstimates));
    return 0;
  }

  if (O.HasOptimize)
    return runOptimize(O, Ctx, Cfgs, CG, E);

  // --score-profile: score the estimate against a saved profile.
  if (!O.ScoreProfile.empty()) {
    std::string Text = readFile(O.ScoreProfile);
    Profile Saved;
    if (!readProfileText(Text, Saved)) {
      out("sestc: '" + O.ScoreProfile + "' is not a profile\n");
      return 1;
    }
    auto Ids = scoredFunctionIds(Ctx.unit());
    out("\nWeight-matching against saved profile '" + O.ScoreProfile +
        "':\n");
    TextTable T;
    T.setHeader({"Cutoff", "Blocks (intra)", "Functions", "Call sites"});
    for (double Cutoff : {0.10, 0.25, 0.50})
      T.addRow({formatPercent(Cutoff, 0),
                formatPercent(intraProceduralScore(E, Saved, Ids, Cutoff)),
                formatPercent(
                    functionInvocationScore(E, Saved, Ids, Cutoff)),
                formatPercent(callSiteScore(E, Saved, Cutoff))});
    out(T.str());
    return emitAccuracy(O, Source, Ctx, Cfgs, CG, E, Saved);
  }


  if (O.Action == "--estimate" || O.Action == "--compare") {
    out("Function invocation estimates:\n");
    TextTable T;
    T.setHeader({"Function", "Estimate"});
    for (const FunctionDecl *F : Ctx.unit().Functions)
      if (F->isDefined())
        T.addRow({F->name(),
                  formatDouble(E.FunctionEstimates[F->functionId()], 3)});
    out(T.str());

    out("\nTop call sites by estimated frequency:\n");
    TextTable S;
    S.setHeader({"Caller", "Callee", "Line", "Estimate"});
    std::vector<const CallSiteInfo *> Sites;
    for (const CallSiteInfo &Site : CG.sites())
      if (!Site.isIndirect())
        Sites.push_back(&Site);
    std::stable_sort(Sites.begin(), Sites.end(),
                     [&E](const CallSiteInfo *A, const CallSiteInfo *B) {
                       return E.CallSiteEstimates[A->CallSiteId] >
                              E.CallSiteEstimates[B->CallSiteId];
                     });
    for (size_t I = 0; I < Sites.size() && I < 12; ++I)
      S.addRow({Sites[I]->Caller->name(), Sites[I]->Callee->name(),
                std::to_string(Sites[I]->Site->loc().Line),
                formatDouble(E.CallSiteEstimates[Sites[I]->CallSiteId],
                             3)});
    out(S.str());
    if (O.Action == "--estimate")
      return 0;
  }

  // --run / --compare: execute.
  ProgramInput In;
  In.Text = O.Input;
  In.RandSeed = O.Seed;
  InterpOptions Interp;
  Interp.Engine = O.Engine;
  RunResult R = runProgram(Ctx.unit(), Cfgs, In, Interp);
  out("\n-- program output --\n" + R.Output);
  if (!R.Ok) {
    out("\nruntime error: " + R.Error + "\n");
    return 1;
  }
  out("\nexit code " + std::to_string(R.ExitCode) + ", " +
      formatDouble(R.TheProfile.TotalCycles, 0) + " simulated cycles\n");
  R.TheProfile.ProgramName = O.File;
  R.TheProfile.InputName = "cli";

  if (!O.EmitProfile.empty()) {
    std::ofstream PF(O.EmitProfile);
    if (!PF) {
      out("sestc: cannot write '" + O.EmitProfile + "'\n");
      return 1;
    }
    PF << writeProfileText(R.TheProfile);
    out("profile written to " + O.EmitProfile + "\n");
  }

  if (O.Action == "--compare") {
    auto Ids = scoredFunctionIds(Ctx.unit());
    out("\nWeight-matching of the static estimate against this run:\n");
    TextTable T;
    T.setHeader({"Cutoff", "Blocks (intra)", "Functions", "Call sites"});
    for (double Cutoff : {0.10, 0.25, 0.50}) {
      T.addRow({formatPercent(Cutoff, 0),
                formatPercent(
                    intraProceduralScore(E, R.TheProfile, Ids, Cutoff)),
                formatPercent(functionInvocationScore(E, R.TheProfile,
                                                      Ids, Cutoff)),
                formatPercent(callSiteScore(E, R.TheProfile, Cutoff))});
    }
    out(T.str());
  }
  return emitAccuracy(O, Source, Ctx, Cfgs, CG, E, R.TheProfile);
}

} // namespace

int main(int argc, char **argv) {
  Options O = parseArgs(argc, argv);

  obs::Telemetry Tele;
  obs::EventLog Log;
  bool WantTelemetry =
      !O.TraceFile.empty() || !O.ReportFile.empty() || O.Stats;
  bool WantLog = !O.LogFile.empty();
  if (WantTelemetry)
    Tele.install();
  if (WantLog)
    Log.install();

  int Rc = runAction(O);

  if (WantLog) {
    Log.uninstall();
    if (!writeTextFile(O.LogFile, Log.jsonl()))
      return 1;
    out("event log written to " + O.LogFile + " (" +
        std::to_string(Log.events().size()) + " events)\n");
  }
  if (!WantTelemetry)
    return Rc;
  Tele.uninstall();

  if (O.Stats) {
    if (O.StatsProm) {
      // Machine-readable stats: the same registry, as one Prometheus
      // text exposition (scrape-compatible with sestd's metrics verb).
      out(obs::renderPrometheus(Tele));
    } else {
      out("\n-- phase times --\n" + Tele.phaseSummary());
      out("\n-- counters --\n" + Tele.statsTable());
    }
  }
  if (!O.TraceFile.empty()) {
    if (!writeTextFile(O.TraceFile, Tele.traceJson()))
      return 1;
    out("trace written to " + O.TraceFile +
        " (open in chrome://tracing or https://ui.perfetto.dev)\n");
  }
  if (!O.ReportFile.empty() && O.Action != "--suite") {
    JsonWriter W;
    W.beginObject();
    W.member("schema", "sest-run-report/1");
    W.member("file", O.File);
    W.member("action", O.Action);
    W.key("telemetry");
    Tele.writeReport(W);
    W.endObject();
    if (!writeTextFile(O.ReportFile, W.take()))
      return 1;
    out("report written to " + O.ReportFile + "\n");
  }
  return Rc;
}

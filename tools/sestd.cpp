//===- tools/sestd.cpp - Static-estimator analysis server ------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sestd — the long-running analysis service. Reads newline-delimited
/// `sest-service/1` JSON requests from stdin (or a Unix socket with
/// --socket), executes them batched on a worker pool, and writes one
/// JSON response line per request, in request order. Repeated or
/// overlapping requests are answered from the content-addressed
/// memoization cache (src/service/); responses are byte-identical
/// cold, warm, and at every --jobs value. See docs/SERVICE.md for the
/// protocol and the determinism contract.
///
/// A session ends at EOF or after a `{"op":"shutdown"}` request has
/// been answered (the batch it arrived in is always drained first).
///
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "obs/EventLog.h"
#include "obs/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace sest;

namespace {

void out(const std::string &S) { std::fputs(S.c_str(), stdout); }
void err(const std::string &S) { std::fputs(S.c_str(), stderr); }

/// One option sestd understands; generates the usage text (same single
/// source of truth scheme as sestc).
struct OptionSpec {
  const char *Flag;
  const char *Arg;  ///< Value placeholder; null for boolean flags.
  const char *Help; ///< One-line description.
};

const OptionSpec OptionTable[] = {
    {"--jobs", "N",
     "worker threads per batch (default 1, 0 = cores; responses "
     "identical for every N)"},
    {"--batch", "N", "max requests executed per batch (default 64)"},
    {"--cache-bytes", "N",
     "total memoization budget in bytes (default 268435456)"},
    {"--cache-shards", "N", "mutex stripes per cache tier (default 16)"},
    {"--no-cache", nullptr, "disable memoization (every request recomputes)"},
    {"--socket", "PATH", "serve on a Unix socket instead of stdin/stdout"},
    {"--stats", nullptr, "print phase times and counters to stderr at exit"},
    {"--trace", "FILE", "write Chrome trace-event JSON of the session"},
    {"--log", "FILE",
     "write the sest-events/1 JSONL decision/provenance log"},
    {"--help", nullptr, "print this help and exit"},
};

std::string helpText() {
  std::string S = "usage: sestd [options]\n";
  for (const OptionSpec &Opt : OptionTable) {
    std::string Left = std::string("  ") + Opt.Flag;
    if (Opt.Arg)
      Left += std::string(" ") + Opt.Arg;
    if (Left.size() < 24)
      Left.resize(24, ' ');
    S += Left + " " + Opt.Help + "\n";
  }
  return S;
}

struct Options {
  service::ServiceOptions Svc;
  size_t MaxBatch = 64;
  std::string SocketPath;
  std::string TraceFile;
  std::string LogFile;
  bool Stats = false;
};

[[noreturn]] void usageError(const std::string &Message) {
  err("sestd: " + Message + "\n" + helpText());
  std::exit(2);
}

Options parseArgs(int argc, char **argv) {
  Options O;
  auto NumberArg = [&](int &I, const char *Flag) -> long long {
    if (I + 1 >= argc)
      usageError(std::string(Flag) + " requires a value");
    char *End = nullptr;
    long long V = std::strtoll(argv[++I], &End, 10);
    if (!End || *End != '\0' || V < 0)
      usageError(std::string(Flag) + " requires a non-negative integer");
    return V;
  };
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--help") {
      out(helpText());
      std::exit(0);
    } else if (A == "--jobs") {
      O.Svc.Jobs = static_cast<unsigned>(NumberArg(I, "--jobs"));
    } else if (A == "--batch") {
      long long V = NumberArg(I, "--batch");
      if (V < 1)
        usageError("--batch requires N >= 1");
      O.MaxBatch = static_cast<size_t>(V);
    } else if (A == "--cache-bytes") {
      O.Svc.CacheBudgetBytes =
          static_cast<size_t>(NumberArg(I, "--cache-bytes"));
    } else if (A == "--cache-shards") {
      long long V = NumberArg(I, "--cache-shards");
      if (V < 1)
        usageError("--cache-shards requires N >= 1");
      O.Svc.CacheShards = static_cast<unsigned>(V);
    } else if (A == "--no-cache") {
      O.Svc.CacheBudgetBytes = 0;
    } else if (A == "--socket") {
      if (I + 1 >= argc)
        usageError("--socket requires a path");
      O.SocketPath = argv[++I];
    } else if (A == "--stats") {
      O.Stats = true;
    } else if (A == "--trace") {
      if (I + 1 >= argc)
        usageError("--trace requires a file");
      O.TraceFile = argv[++I];
    } else if (A == "--log") {
      if (I + 1 >= argc)
        usageError("--log requires a file");
      O.LogFile = argv[++I];
    } else {
      usageError("unknown option '" + A + "'");
    }
  }
  return O;
}

bool writeTextFile(const std::string &Path, const std::string &Content) {
  std::ofstream F(Path, std::ios::binary);
  if (!F) {
    err("sestd: cannot write '" + Path + "'\n");
    return false;
  }
  F << Content;
  return F.good();
}

/// Drains one batch through the service and writes the responses.
/// \p Write receives each response line (newline included).
template <typename WriteFn>
void serveBatch(service::Service &Svc, std::vector<std::string> &Batch,
                WriteFn &&Write) {
  if (Batch.empty())
    return;
  for (std::string &Resp : Svc.handleBatch(Batch)) {
    Resp += '\n';
    Write(Resp);
  }
  Batch.clear();
}

/// stdin/stdout mode: the first request of a batch blocks; any further
/// lines already buffered join the same batch (up to --batch), so a
/// client that writes N requests and then waits gets them executed
/// concurrently, while an interactive client still gets one response
/// per line immediately.
int serveStdio(const Options &O, service::Service &Svc) {
  std::vector<std::string> Batch;
  std::string Line;
  while (!Svc.shutdownRequested() && std::getline(std::cin, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (!Line.empty())
      Batch.push_back(std::move(Line));
    while (Batch.size() < O.MaxBatch &&
           std::cin.rdbuf()->in_avail() > 0 &&
           std::getline(std::cin, Line)) {
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        Batch.push_back(std::move(Line));
    }
    serveBatch(Svc, Batch, [](const std::string &S) { out(S); });
    std::fflush(stdout);
  }
  serveBatch(Svc, Batch, [](const std::string &S) { out(S); });
  std::fflush(stdout);
  return 0;
}

#ifndef _WIN32
/// Unix-socket mode: one client at a time; each connection streams the
/// same newline-delimited protocol. The listener closes after a
/// shutdown request (or SIGTERM from outside).
int serveSocket(const Options &O, service::Service &Svc) {
  int Listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listener < 0) {
    err("sestd: socket() failed\n");
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (O.SocketPath.size() >= sizeof(Addr.sun_path)) {
    err("sestd: socket path too long\n");
    ::close(Listener);
    return 1;
  }
  std::strncpy(Addr.sun_path, O.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(O.SocketPath.c_str());
  if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(Listener, 8) < 0) {
    err("sestd: cannot listen on '" + O.SocketPath + "'\n");
    ::close(Listener);
    return 1;
  }
  err("sestd: listening on " + O.SocketPath + "\n");

  while (!Svc.shutdownRequested()) {
    int Client = ::accept(Listener, nullptr, nullptr);
    if (Client < 0)
      break;
    std::string Buffer;
    std::vector<std::string> Batch;
    char Chunk[64 << 10];
    auto Write = [&](const std::string &S) {
      size_t Off = 0;
      while (Off < S.size()) {
        ssize_t N = ::write(Client, S.data() + Off, S.size() - Off);
        if (N <= 0)
          return;
        Off += static_cast<size_t>(N);
      }
    };
    for (;;) {
      ssize_t N = ::read(Client, Chunk, sizeof(Chunk));
      if (N <= 0)
        break;
      Buffer.append(Chunk, static_cast<size_t>(N));
      size_t Start = 0;
      for (size_t Nl; (Nl = Buffer.find('\n', Start)) !=
                      std::string::npos;
           Start = Nl + 1) {
        std::string Line = Buffer.substr(Start, Nl - Start);
        if (!Line.empty() && Line.back() == '\r')
          Line.pop_back();
        if (!Line.empty())
          Batch.push_back(std::move(Line));
        if (Batch.size() >= O.MaxBatch)
          serveBatch(Svc, Batch, Write);
      }
      Buffer.erase(0, Start);
      serveBatch(Svc, Batch, Write);
      if (Svc.shutdownRequested())
        break;
    }
    ::close(Client);
  }
  ::close(Listener);
  ::unlink(O.SocketPath.c_str());
  return 0;
}
#endif

} // namespace

int main(int argc, char **argv) {
  Options O = parseArgs(argc, argv);

  // Telemetry is always collected: the `stats` request embeds the live
  // report (request latency histograms, cache counters, phase tree).
  obs::Telemetry Tele;
  Tele.install();
  obs::EventLog Log;
  if (!O.LogFile.empty())
    Log.install();

  service::Service Svc(O.Svc);
  int Rc;
#ifndef _WIN32
  if (!O.SocketPath.empty())
    Rc = serveSocket(O, Svc);
  else
    Rc = serveStdio(O, Svc);
#else
  if (!O.SocketPath.empty()) {
    err("sestd: --socket is not supported on this platform\n");
    Rc = 1;
  } else {
    Rc = serveStdio(O, Svc);
  }
#endif

  if (!O.LogFile.empty()) {
    Log.uninstall();
    if (!writeTextFile(O.LogFile, Log.jsonl()))
      Rc = 1;
  }
  Tele.uninstall();
  if (O.Stats)
    err("\n-- phase times --\n" + Tele.phaseSummary() +
        "\n-- counters --\n" + Tele.statsTable());
  if (!O.TraceFile.empty() &&
      !writeTextFile(O.TraceFile, Tele.traceJson()))
    Rc = 1;
  return Rc;
}

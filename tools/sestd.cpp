//===- tools/sestd.cpp - Static-estimator analysis server ------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sestd — the long-running analysis service. Reads newline-delimited
/// `sest-service/1` JSON requests from stdin (or a Unix socket with
/// --socket), executes them batched on a worker pool, and writes one
/// JSON response line per request, in request order. Repeated or
/// overlapping requests are answered from the content-addressed
/// memoization cache (src/service/); responses are byte-identical
/// cold, warm, and at every --jobs value. See docs/SERVICE.md for the
/// protocol and the determinism contract.
///
/// A session ends at EOF or after a `{"op":"shutdown"}` request has
/// been answered (the batch it arrived in is always drained first).
///
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "obs/EventLog.h"
#include "obs/Export.h"
#include "obs/Telemetry.h"
#include "obs/Window.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace sest;

namespace {

void out(const std::string &S) { std::fputs(S.c_str(), stdout); }
void err(const std::string &S) { std::fputs(S.c_str(), stderr); }

/// One option sestd understands; generates the usage text (same single
/// source of truth scheme as sestc).
struct OptionSpec {
  const char *Flag;
  const char *Arg;  ///< Value placeholder; null for boolean flags.
  const char *Help; ///< One-line description.
};

const OptionSpec OptionTable[] = {
    {"--jobs", "N",
     "worker threads per batch (default 1, 0 = cores; responses "
     "identical for every N)"},
    {"--batch", "N", "max requests executed per batch (default 64)"},
    {"--cache-bytes", "N",
     "total memoization budget in bytes (default 268435456)"},
    {"--cache-shards", "N", "mutex stripes per cache tier (default 16)"},
    {"--no-cache", nullptr, "disable memoization (every request recomputes)"},
    {"--socket", "PATH", "serve on a Unix socket instead of stdin/stdout"},
    {"--metrics", "FILE[:N]",
     "write a Prometheus snapshot (cumulative + rolling window) every N "
     "requests (default 1000) and at exit"},
    {"--metrics-scope", "MODE",
     "snapshot scope: live (default) or deterministic (byte-stable "
     "across --jobs and cache state)"},
    {"--stats", nullptr, "print phase times and counters to stderr at exit"},
    {"--trace", "FILE", "write Chrome trace-event JSON of the session"},
    {"--log", "FILE",
     "write the sest-events/1 JSONL decision/provenance log"},
    {"--help", nullptr, "print this help and exit"},
};

std::string helpText() {
  std::string S = "usage: sestd [options]\n";
  for (const OptionSpec &Opt : OptionTable) {
    std::string Left = std::string("  ") + Opt.Flag;
    if (Opt.Arg)
      Left += std::string(" ") + Opt.Arg;
    if (Left.size() < 24)
      Left.resize(24, ' ');
    S += Left + " " + Opt.Help + "\n";
  }
  return S;
}

struct Options {
  service::ServiceOptions Svc;
  size_t MaxBatch = 64;
  std::string SocketPath;
  std::string TraceFile;
  std::string LogFile;
  std::string MetricsFile;
  size_t MetricsEvery = 1000;
  bool MetricsDeterministic = false;
  bool Stats = false;
};

[[noreturn]] void usageError(const std::string &Message) {
  err("sestd: " + Message + "\n" + helpText());
  std::exit(2);
}

Options parseArgs(int argc, char **argv) {
  Options O;
  auto NumberArg = [&](int &I, const char *Flag) -> long long {
    if (I + 1 >= argc)
      usageError(std::string(Flag) + " requires a value");
    char *End = nullptr;
    long long V = std::strtoll(argv[++I], &End, 10);
    if (!End || *End != '\0' || V < 0)
      usageError(std::string(Flag) + " requires a non-negative integer");
    return V;
  };
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--help") {
      out(helpText());
      std::exit(0);
    } else if (A == "--jobs") {
      O.Svc.Jobs = static_cast<unsigned>(NumberArg(I, "--jobs"));
    } else if (A == "--batch") {
      long long V = NumberArg(I, "--batch");
      if (V < 1)
        usageError("--batch requires N >= 1");
      O.MaxBatch = static_cast<size_t>(V);
    } else if (A == "--cache-bytes") {
      O.Svc.CacheBudgetBytes =
          static_cast<size_t>(NumberArg(I, "--cache-bytes"));
    } else if (A == "--cache-shards") {
      long long V = NumberArg(I, "--cache-shards");
      if (V < 1)
        usageError("--cache-shards requires N >= 1");
      O.Svc.CacheShards = static_cast<unsigned>(V);
    } else if (A == "--no-cache") {
      O.Svc.CacheBudgetBytes = 0;
    } else if (A == "--socket") {
      if (I + 1 >= argc)
        usageError("--socket requires a path");
      O.SocketPath = argv[++I];
    } else if (A == "--metrics") {
      if (I + 1 >= argc)
        usageError("--metrics requires a file");
      std::string V = argv[++I];
      // FILE[:EVERY_N] — the suffix is only split off when it parses as
      // a positive integer, so paths containing ':' keep working.
      size_t Colon = V.rfind(':');
      if (Colon != std::string::npos && Colon + 1 < V.size()) {
        char *End = nullptr;
        long long N = std::strtoll(V.c_str() + Colon + 1, &End, 10);
        if (End && *End == '\0' && N >= 1) {
          O.MetricsEvery = static_cast<size_t>(N);
          V.resize(Colon);
        }
      }
      if (V.empty())
        usageError("--metrics requires a file");
      O.MetricsFile = V;
    } else if (A == "--metrics-scope") {
      if (I + 1 >= argc)
        usageError("--metrics-scope requires 'live' or 'deterministic'");
      std::string V = argv[++I];
      if (V != "live" && V != "deterministic")
        usageError("--metrics-scope requires 'live' or 'deterministic'");
      O.MetricsDeterministic = V == "deterministic";
    } else if (A == "--stats") {
      O.Stats = true;
    } else if (A == "--trace") {
      if (I + 1 >= argc)
        usageError("--trace requires a file");
      O.TraceFile = argv[++I];
    } else if (A == "--log") {
      if (I + 1 >= argc)
        usageError("--log requires a file");
      O.LogFile = argv[++I];
    } else {
      usageError("unknown option '" + A + "'");
    }
  }
  return O;
}

bool writeTextFile(const std::string &Path, const std::string &Content) {
  std::ofstream F(Path, std::ios::binary);
  if (!F) {
    err("sestd: cannot write '" + Path + "'\n");
    return false;
  }
  F << Content;
  return F.good();
}

/// Periodic metrics snapshots (--metrics FILE[:EVERY_N]): the service's
/// cumulative exposition plus one rolling-window delta, rewritten
/// atomically-enough (truncate + write) every EVERY_N requests and once
/// at exit. Ticks are requests served — never wall-clock — so for a
/// fixed request stream the snapshot sequence is deterministic; with
/// --metrics-scope deterministic the snapshot bytes are too.
struct MetricsSink {
  MetricsSink(const Options &Opts, service::Service &Service)
      : O(Opts), Svc(Service) {}

  const Options &O;
  service::Service &Svc;
  uint64_t Served = 0;
  uint64_t LastSnapAt = 0;
  obs::RollingWindow Window;

  bool enabled() const { return !O.MetricsFile.empty(); }

  /// Max requests the current batch may take before it would cross a
  /// snapshot boundary. Capping batches here keeps snapshots at exact
  /// EVERY_N multiples regardless of how stdin happened to be buffered,
  /// which is what makes the window sequence reproducible.
  size_t batchLimit() const {
    if (!enabled())
      return O.MaxBatch;
    size_t ToBoundary = O.MetricsEvery - (Served - LastSnapAt);
    return std::min(O.MaxBatch, ToBoundary);
  }

  void onServed(size_t N) {
    if (!enabled() || N == 0)
      return;
    Served += N;
    if (Served - LastSnapAt >= O.MetricsEvery)
      snapshot();
  }

  void snapshot() {
    LastSnapAt = Served;
    std::string Text = Svc.metricsExposition(O.MetricsDeterministic);
    if (obs::Telemetry *T = obs::Telemetry::active()) {
      obs::ExportOptions WO;
      WO.DeterministicOnly = O.MetricsDeterministic;
      Text += obs::renderPrometheus(Window.advance(*T, Served), WO);
    }
    writeTextFile(O.MetricsFile, Text);
  }
};

/// Drains one batch through the service and writes the responses.
/// \p Write receives each response line (newline included). Returns the
/// number of requests served.
template <typename WriteFn>
size_t serveBatch(service::Service &Svc, std::vector<std::string> &Batch,
                  WriteFn &&Write) {
  if (Batch.empty())
    return 0;
  size_t N = Batch.size();
  for (std::string &Resp : Svc.handleBatch(Batch)) {
    Resp += '\n';
    Write(Resp);
  }
  Batch.clear();
  return N;
}

/// stdin/stdout mode: the first request of a batch blocks; any further
/// lines already buffered join the same batch (up to --batch), so a
/// client that writes N requests and then waits gets them executed
/// concurrently, while an interactive client still gets one response
/// per line immediately.
int serveStdio(service::Service &Svc, MetricsSink &Sink) {
  std::vector<std::string> Batch;
  std::string Line;
  while (!Svc.shutdownRequested() && std::getline(std::cin, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (!Line.empty())
      Batch.push_back(std::move(Line));
    while (Batch.size() < Sink.batchLimit() &&
           std::cin.rdbuf()->in_avail() > 0 &&
           std::getline(std::cin, Line)) {
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        Batch.push_back(std::move(Line));
    }
    Sink.onServed(
        serveBatch(Svc, Batch, [](const std::string &S) { out(S); }));
    std::fflush(stdout);
  }
  Sink.onServed(
      serveBatch(Svc, Batch, [](const std::string &S) { out(S); }));
  std::fflush(stdout);
  return 0;
}

#ifndef _WIN32
/// Unix-socket mode: one client at a time; each connection streams the
/// same newline-delimited protocol. The listener closes after a
/// shutdown request (or SIGTERM from outside).
int serveSocket(const Options &O, service::Service &Svc,
                MetricsSink &Sink) {
  int Listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listener < 0) {
    err("sestd: socket() failed\n");
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (O.SocketPath.size() >= sizeof(Addr.sun_path)) {
    err("sestd: socket path too long\n");
    ::close(Listener);
    return 1;
  }
  std::strncpy(Addr.sun_path, O.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(O.SocketPath.c_str());
  if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(Listener, 8) < 0) {
    err("sestd: cannot listen on '" + O.SocketPath + "'\n");
    ::close(Listener);
    return 1;
  }
  err("sestd: listening on " + O.SocketPath + "\n");

  while (!Svc.shutdownRequested()) {
    int Client = ::accept(Listener, nullptr, nullptr);
    if (Client < 0)
      break;
    std::string Buffer;
    std::vector<std::string> Batch;
    char Chunk[64 << 10];
    auto Write = [&](const std::string &S) {
      size_t Off = 0;
      while (Off < S.size()) {
        ssize_t N = ::write(Client, S.data() + Off, S.size() - Off);
        if (N <= 0)
          return;
        Off += static_cast<size_t>(N);
      }
    };
    for (;;) {
      ssize_t N = ::read(Client, Chunk, sizeof(Chunk));
      if (N <= 0)
        break;
      Buffer.append(Chunk, static_cast<size_t>(N));
      size_t Start = 0;
      for (size_t Nl; (Nl = Buffer.find('\n', Start)) !=
                      std::string::npos;
           Start = Nl + 1) {
        std::string Line = Buffer.substr(Start, Nl - Start);
        if (!Line.empty() && Line.back() == '\r')
          Line.pop_back();
        if (!Line.empty())
          Batch.push_back(std::move(Line));
        if (Batch.size() >= Sink.batchLimit())
          Sink.onServed(serveBatch(Svc, Batch, Write));
      }
      Buffer.erase(0, Start);
      Sink.onServed(serveBatch(Svc, Batch, Write));
      if (Svc.shutdownRequested())
        break;
    }
    ::close(Client);
  }
  ::close(Listener);
  ::unlink(O.SocketPath.c_str());
  return 0;
}
#endif

} // namespace

int main(int argc, char **argv) {
  Options O = parseArgs(argc, argv);

  // Telemetry is always collected: the `stats` request embeds the live
  // report (request latency histograms, cache counters, phase tree).
  obs::Telemetry Tele;
  Tele.install();
  obs::EventLog Log;
  if (!O.LogFile.empty())
    Log.install();

  service::Service Svc(O.Svc);
  MetricsSink Sink{O, Svc};
  int Rc;
#ifndef _WIN32
  if (!O.SocketPath.empty())
    Rc = serveSocket(O, Svc, Sink);
  else
    Rc = serveStdio(Svc, Sink);
#else
  if (!O.SocketPath.empty()) {
    err("sestd: --socket is not supported on this platform\n");
    Rc = 1;
  } else {
    Rc = serveStdio(Svc, Sink);
  }
#endif
  // Final snapshot: always written (even for an empty session), so a
  // --metrics file exists and reflects the whole run at exit.
  if (Sink.enabled())
    Sink.snapshot();

  if (!O.LogFile.empty()) {
    Log.uninstall();
    if (!writeTextFile(O.LogFile, Log.jsonl()))
      Rc = 1;
  }
  Tele.uninstall();
  if (O.Stats)
    err("\n-- phase times --\n" + Tele.phaseSummary() +
        "\n-- counters --\n" + Tele.statsTable());
  if (!O.TraceFile.empty() &&
      !writeTextFile(O.TraceFile, Tele.traceJson()))
    Rc = 1;
  return Rc;
}

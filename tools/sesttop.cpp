//===- tools/sesttop.cpp - Live metrics console for sestd ------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sesttop — a terminal dashboard over sestd's Prometheus exposition.
/// Scrapes the `metrics` verb of a running server (--socket), a server
/// it spawns itself (--spawn), or a snapshot file written by
/// `sestd --metrics` (--file), and renders request throughput, per-verb
/// latency percentiles, per-tier cache hit ratios, and queue depth as
/// aligned tables. Also the CLI front for the in-tree exposition lint
/// (--lint).
///
/// `--once` renders a single frame with no wall-clock-derived values
/// (req/s is shown as "-"), so its output is reproducible for a fixed
/// exposition — the mode the ctest/CI checks drive.
///
//===----------------------------------------------------------------------===//

#include "obs/Export.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace sest;

namespace {

void out(const std::string &S) { std::fputs(S.c_str(), stdout); }
void err(const std::string &S) { std::fputs(S.c_str(), stderr); }

/// One option sesttop understands; generates the usage text (same
/// single-source-of-truth scheme as sestc/sestd).
struct OptionSpec {
  const char *Flag;
  const char *Arg;  ///< Value placeholder; null for boolean flags.
  const char *Help; ///< One-line description.
};

const OptionSpec OptionTable[] = {
    {"--socket", "PATH", "scrape a running sestd on this Unix socket"},
    {"--spawn", "BIN",
     "spawn BIN (a sestd binary) on pipes and scrape it directly"},
    {"--replay", "FILE",
     "send these request lines to the server before the first scrape"},
    {"--file", "FILE",
     "render a snapshot file written by sestd --metrics instead of "
     "scraping"},
    {"--lint", "FILE",
     "run the exposition format lint over FILE and exit (nonzero on "
     "findings)"},
    {"--once", nullptr,
     "render one frame and exit; omits wall-clock rates so output is "
     "reproducible"},
    {"--interval-ms", "N", "refresh interval between frames (default 1000)"},
    {"--count", "N", "stop after N frames (default: run until EOF/error)"},
    {"--help", nullptr, "print this help and exit"},
};

std::string helpText() {
  std::string S = "usage: sesttop (--socket PATH | --spawn BIN | --file FILE"
                  " | --lint FILE) [options]\n";
  for (const OptionSpec &Opt : OptionTable) {
    std::string Left = std::string("  ") + Opt.Flag;
    if (Opt.Arg)
      Left += std::string(" ") + Opt.Arg;
    if (Left.size() < 24)
      Left.resize(24, ' ');
    S += Left + " " + Opt.Help + "\n";
  }
  return S;
}

struct Options {
  std::string SocketPath;
  std::string SpawnBin;
  std::string ReplayFile;
  std::string SnapshotFile;
  std::string LintFile;
  bool Once = false;
  long IntervalMs = 1000;
  long Count = 0; ///< 0 = unbounded.
};

[[noreturn]] void usageError(const std::string &Message) {
  err("sesttop: " + Message + "\n" + helpText());
  std::exit(2);
}

Options parseArgs(int argc, char **argv) {
  Options O;
  auto StringArg = [&](int &I, const char *Flag) -> std::string {
    if (I + 1 >= argc)
      usageError(std::string(Flag) + " requires a value");
    return argv[++I];
  };
  auto NumberArg = [&](int &I, const char *Flag) -> long {
    std::string V = StringArg(I, Flag);
    char *End = nullptr;
    long N = std::strtol(V.c_str(), &End, 10);
    if (!End || *End != '\0' || N < 0)
      usageError(std::string(Flag) + " requires a non-negative integer");
    return N;
  };
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--help") {
      out(helpText());
      std::exit(0);
    } else if (A == "--socket") {
      O.SocketPath = StringArg(I, "--socket");
    } else if (A == "--spawn") {
      O.SpawnBin = StringArg(I, "--spawn");
    } else if (A == "--replay") {
      O.ReplayFile = StringArg(I, "--replay");
    } else if (A == "--file") {
      O.SnapshotFile = StringArg(I, "--file");
    } else if (A == "--lint") {
      O.LintFile = StringArg(I, "--lint");
    } else if (A == "--once") {
      O.Once = true;
    } else if (A == "--interval-ms") {
      O.IntervalMs = NumberArg(I, "--interval-ms");
      if (O.IntervalMs < 1)
        usageError("--interval-ms requires N >= 1");
    } else if (A == "--count") {
      O.Count = NumberArg(I, "--count");
    } else {
      usageError("unknown option '" + A + "'");
    }
  }
  int Sources = (!O.SocketPath.empty()) + (!O.SpawnBin.empty()) +
                (!O.SnapshotFile.empty()) + (!O.LintFile.empty());
  if (Sources == 0)
    usageError("one of --socket, --spawn, --file, or --lint is required");
  if (Sources > 1)
    usageError("--socket, --spawn, --file, and --lint are exclusive");
  if (!O.ReplayFile.empty() && O.SocketPath.empty() && O.SpawnBin.empty())
    usageError("--replay needs a live server (--socket or --spawn)");
  return O;
}

bool readTextFile(const std::string &Path, std::string &Content) {
  std::ifstream F(Path, std::ios::binary);
  if (!F)
    return false;
  std::ostringstream SS;
  SS << F.rdbuf();
  Content = SS.str();
  return true;
}

//===----------------------------------------------------------------------===//
// Scrape sources — each yields the exposition text of one frame.
//===----------------------------------------------------------------------===//

/// A newline-delimited protocol connection to a sestd instance: one
/// request line out, one response line back, in order.
class ServerConnection {
public:
  virtual ~ServerConnection() = default;
  /// Sends \p Line (newline appended) and returns the response line, or
  /// nullopt when the connection is gone.
  virtual std::optional<std::string> roundTrip(const std::string &Line) = 0;
};

#ifndef _WIN32

/// Talks to sestd over a connected stream: an AF_UNIX socket (both
/// directions on one fd) or a spawned child (separate pipe fds).
class FdConnection : public ServerConnection {
public:
  FdConnection(int WriteFd, int ReadFd, pid_t Child = -1)
      : WriteFd(WriteFd), ReadFd(ReadFd), Child(Child) {}

  ~FdConnection() override {
    if (WriteFd >= 0)
      close(WriteFd);
    if (ReadFd >= 0 && ReadFd != WriteFd)
      close(ReadFd);
    if (Child > 0)
      waitpid(Child, nullptr, 0);
  }

  std::optional<std::string> roundTrip(const std::string &Line) override {
    std::string Out = Line + "\n";
    size_t Sent = 0;
    while (Sent < Out.size()) {
      ssize_t N = write(WriteFd, Out.data() + Sent, Out.size() - Sent);
      if (N <= 0)
        return std::nullopt;
      Sent += static_cast<size_t>(N);
    }
    return readLine();
  }

private:
  std::optional<std::string> readLine() {
    std::string Line;
    while (true) {
      size_t NL = Buffer.find('\n');
      if (NL != std::string::npos) {
        Line = Buffer.substr(0, NL);
        Buffer.erase(0, NL + 1);
        return Line;
      }
      char Chunk[4096];
      ssize_t N = read(ReadFd, Chunk, sizeof(Chunk));
      if (N <= 0)
        return std::nullopt;
      Buffer.append(Chunk, static_cast<size_t>(N));
    }
  }

  int WriteFd;
  int ReadFd;
  pid_t Child;
  std::string Buffer;
};

std::unique_ptr<ServerConnection> connectSocket(const std::string &Path) {
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    err("sesttop: socket: " + std::string(std::strerror(errno)) + "\n");
    return nullptr;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    err("sesttop: socket path too long\n");
    close(Fd);
    return nullptr;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    err("sesttop: connect '" + Path + "': " +
        std::string(std::strerror(errno)) + "\n");
    close(Fd);
    return nullptr;
  }
  return std::make_unique<FdConnection>(Fd, Fd);
}

std::unique_ptr<ServerConnection> spawnServer(const std::string &Bin) {
  int ToChild[2], FromChild[2];
  if (pipe(ToChild) < 0 || pipe(FromChild) < 0) {
    err("sesttop: pipe: " + std::string(std::strerror(errno)) + "\n");
    return nullptr;
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    err("sesttop: fork: " + std::string(std::strerror(errno)) + "\n");
    return nullptr;
  }
  if (Pid == 0) {
    dup2(ToChild[0], STDIN_FILENO);
    dup2(FromChild[1], STDOUT_FILENO);
    close(ToChild[0]);
    close(ToChild[1]);
    close(FromChild[0]);
    close(FromChild[1]);
    execl(Bin.c_str(), Bin.c_str(), static_cast<char *>(nullptr));
    std::fprintf(stderr, "sesttop: exec '%s': %s\n", Bin.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  close(ToChild[0]);
  close(FromChild[1]);
  return std::make_unique<FdConnection>(ToChild[1], FromChild[0], Pid);
}

#endif // !_WIN32

/// Sends every non-empty line of \p Path to the server and drains the
/// responses, so a subsequent metrics scrape reflects that traffic.
bool replayRequests(ServerConnection &Conn, const std::string &Path) {
  std::string Text;
  if (!readTextFile(Path, Text)) {
    err("sesttop: cannot read '" + Path + "'\n");
    return false;
  }
  size_t Start = 0, Sent = 0;
  while (Start <= Text.size()) {
    size_t NL = Text.find('\n', Start);
    std::string Line = Text.substr(
        Start, NL == std::string::npos ? std::string::npos : NL - Start);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (!Line.empty()) {
      if (!Conn.roundTrip(Line)) {
        err("sesttop: server closed during --replay\n");
        return false;
      }
      ++Sent;
    }
    if (NL == std::string::npos)
      break;
    Start = NL + 1;
  }
  err("sesttop: replayed " + std::to_string(Sent) + " request(s)\n");
  return true;
}

/// Scrapes one exposition from a live server via the `metrics` verb.
std::optional<std::string> scrapeServer(ServerConnection &Conn) {
  auto Resp = Conn.roundTrip("{\"op\":\"metrics\"}");
  if (!Resp)
    return std::nullopt;
  auto Doc = parseJson(*Resp);
  if (!Doc) {
    err("sesttop: server sent a non-JSON response\n");
    return std::nullopt;
  }
  const JsonValue *Result = Doc->find("result");
  const JsonValue *Expo = Result ? Result->find("exposition") : nullptr;
  if (!Expo || !Expo->isString()) {
    err("sesttop: metrics response has no result.exposition\n");
    return std::nullopt;
  }
  return Expo->StringVal;
}

//===----------------------------------------------------------------------===//
// Dashboard rendering
//===----------------------------------------------------------------------===//

std::string fmtNumber(double V) { return obs::promNumber(V); }

std::string fmtBytes(double V) {
  const char *Units[] = {"B", "KiB", "MiB", "GiB"};
  int U = 0;
  while (V >= 1024.0 && U < 3) {
    V /= 1024.0;
    ++U;
  }
  return (U == 0 ? obs::promNumber(V) : formatDouble(V, 1)) + " " + Units[U];
}

std::string fmtRatio(double Hits, double Misses) {
  double Total = Hits + Misses;
  if (Total <= 0.0)
    return "-";
  return formatDouble(100.0 * Hits / Total, 1) + "%";
}

/// Everything one frame shows, extracted from one parsed exposition.
struct Frame {
  double Requests = 0.0;
  double BadRequests = 0.0;
  double Batches = 0.0;
  double QueueDepth = 0.0;
  bool HasWindow = false;
  double WindowTick = 0.0;
  double WindowRequests = 0.0;
  /// verb -> (count, p50, p99); -1 marks an absent percentile.
  struct Verb {
    std::string Name;
    double Count = 0.0;
    double P50 = -1.0;
    double P99 = -1.0;
  };
  std::vector<Verb> Verbs;
  struct Tier {
    std::string Name;
    double Hits = 0.0, Misses = 0.0, Evictions = 0.0, Bytes = 0.0,
           Entries = 0.0;
  };
  std::vector<Tier> Tiers;
};

Frame extractFrame(const obs::PromDocument &Doc) {
  Frame F;
  F.Requests = Doc.valueOr("sest_service_requests", 0.0);
  F.BadRequests = Doc.valueOr("sest_service_requests_bad", 0.0);
  F.Batches = Doc.valueOr("sest_service_batches", 0.0);
  F.QueueDepth = Doc.valueOr("sest_service_batch_depth", 0.0);
  if (Doc.find("sest_window_tick")) {
    F.HasWindow = true;
    F.WindowTick = Doc.valueOr("sest_window_tick", 0.0);
    F.WindowRequests = Doc.valueOr("sest_service_requests_delta", 0.0);
  }

  const std::string VerbPrefix = "sest_service_requests_";
  const std::string TierPrefix = "sest_service_cache_";
  for (const obs::PromSample &S : Doc.Samples) {
    if (startsWith(S.Name, VerbPrefix)) {
      std::string Verb = S.Name.substr(VerbPrefix.size());
      // "bad" is shown in the header; "delta" / "<verb>_delta" are the
      // windowed series from a snapshot file's window section.
      if (Verb == "bad" || Verb == "delta" ||
          Verb.find('_') != std::string::npos)
        continue;
      Frame::Verb V;
      V.Name = Verb;
      V.Count = S.Value;
      V.P50 =
          Doc.valueOr("sest_service_request_us_" + Verb + "_p50", -1.0);
      V.P99 =
          Doc.valueOr("sest_service_request_us_" + Verb + "_p99", -1.0);
      F.Verbs.push_back(std::move(V));
    } else if (startsWith(S.Name, TierPrefix) &&
               S.Name.size() > 5 &&
               S.Name.compare(S.Name.size() - 5, 5, "_hits") == 0) {
      std::string Tier =
          S.Name.substr(TierPrefix.size(),
                        S.Name.size() - TierPrefix.size() - 5);
      std::string Base = TierPrefix + Tier + "_";
      Frame::Tier T;
      T.Name = Tier;
      T.Hits = S.Value;
      T.Misses = Doc.valueOr(Base + "misses", 0.0);
      T.Evictions = Doc.valueOr(Base + "evictions", 0.0);
      T.Bytes = Doc.valueOr(Base + "bytes", 0.0);
      T.Entries = Doc.valueOr(Base + "entries", 0.0);
      F.Tiers.push_back(std::move(T));
    }
  }
  return F;
}

/// Renders one dashboard frame. \p Rps < 0 means "unknown" (first frame
/// or --once mode) and prints as "-".
std::string renderFrame(const Frame &F, double Rps) {
  std::string S;
  S += "sesttop — sest-service/1\n";
  S += "  requests " + fmtNumber(F.Requests);
  S += "  bad " + fmtNumber(F.BadRequests);
  S += "  batches " + fmtNumber(F.Batches);
  S += "  queue-depth " + fmtNumber(F.QueueDepth);
  S += "  req/s " + (Rps < 0.0 ? std::string("-") : formatDouble(Rps, 4));
  S += "\n";
  if (F.HasWindow)
    S += "  window: tick " + fmtNumber(F.WindowTick) + ", requests " +
         fmtNumber(F.WindowRequests) + "\n";
  S += "\n";

  TextTable Verbs;
  Verbs.setHeader({"verb", "requests", "p50(us)", "p99(us)"});
  for (const Frame::Verb &V : F.Verbs)
    Verbs.addRow({V.Name, fmtNumber(V.Count),
                  V.P50 < 0.0 ? "-" : fmtNumber(V.P50),
                  V.P99 < 0.0 ? "-" : fmtNumber(V.P99)});
  if (Verbs.rowCount() == 0)
    Verbs.addRow({"(none)", "0", "-", "-"});
  S += Verbs.str() + "\n";

  TextTable Tiers;
  Tiers.setHeader(
      {"tier", "hits", "misses", "hit%", "evictions", "bytes", "entries"});
  for (const Frame::Tier &T : F.Tiers)
    Tiers.addRow({T.Name, fmtNumber(T.Hits), fmtNumber(T.Misses),
                  fmtRatio(T.Hits, T.Misses), fmtNumber(T.Evictions),
                  fmtBytes(T.Bytes), fmtNumber(T.Entries)});
  if (Tiers.rowCount())
    S += Tiers.str();
  else
    S += "  (no cache tiers in exposition — deterministic scope?)\n";
  return S;
}

int lintFile(const std::string &Path) {
  std::string Text;
  if (!readTextFile(Path, Text)) {
    err("sesttop: cannot read '" + Path + "'\n");
    return 1;
  }
  std::vector<std::string> Findings = obs::lintPrometheus(Text);
  for (const std::string &F : Findings)
    err("sesttop: lint: " + F + "\n");
  if (!Findings.empty()) {
    err("sesttop: " + Path + ": " + std::to_string(Findings.size()) +
        " finding(s)\n");
    return 1;
  }
  out("sesttop: " + Path + ": exposition is clean\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  Options O = parseArgs(argc, argv);

  if (!O.LintFile.empty())
    return lintFile(O.LintFile);

  std::unique_ptr<ServerConnection> Conn;
  if (!O.SocketPath.empty() || !O.SpawnBin.empty()) {
#ifndef _WIN32
    Conn = O.SocketPath.empty() ? spawnServer(O.SpawnBin)
                                : connectSocket(O.SocketPath);
    if (!Conn)
      return 1;
    if (!O.ReplayFile.empty() && !replayRequests(*Conn, O.ReplayFile))
      return 1;
#else
    err("sesttop: --socket/--spawn are not supported on this platform\n");
    return 1;
#endif
  }

  bool HavePrev = false;
  double PrevRequests = 0.0;
  auto PrevTime = std::chrono::steady_clock::now();
  long Frames = 0;
  while (true) {
    std::string Text;
    if (Conn) {
      auto Scraped = scrapeServer(*Conn);
      if (!Scraped) {
        if (Frames == 0)
          err("sesttop: no exposition scraped\n");
        return Frames == 0 ? 1 : 0; // server gone after frames = clean exit
      }
      Text = *Scraped;
    } else if (!readTextFile(O.SnapshotFile, Text)) {
      err("sesttop: cannot read '" + O.SnapshotFile + "'\n");
      return 1;
    }

    std::string Error;
    auto Doc = obs::parsePrometheus(Text, &Error);
    if (!Doc) {
      err("sesttop: bad exposition: " + Error + "\n");
      return 1;
    }
    Frame F = extractFrame(*Doc);

    double Rps = -1.0;
    auto Now = std::chrono::steady_clock::now();
    if (!O.Once && HavePrev) {
      double Secs =
          std::chrono::duration<double>(Now - PrevTime).count();
      if (Secs > 0.0)
        Rps = (F.Requests - PrevRequests) / Secs;
    }
    PrevRequests = F.Requests;
    PrevTime = Now;
    HavePrev = true;

    if (!O.Once && Frames > 0)
      out("\x1b[2J\x1b[H"); // clear + home between live frames
    out(renderFrame(F, Rps));
    std::fflush(stdout);

    ++Frames;
    if (O.Once || (O.Count > 0 && Frames >= O.Count))
      return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(O.IntervalMs));
  }
}

//===- tools/sestune.cpp - Estimator-guided autotuner driver --------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sestune — the autotuner CLI. Searches the optimizer's TuneConfig
/// space over the built-in benchmark suite (or a --programs subset, or a
/// single mini-C file) under one or more cost oracles, and reports how
/// much of the profile-guided search's held-out improvement the purely
/// static search recovers. Writes the byte-deterministic
/// sest-tune-report/1 document with --report; a winner's best_config
/// object replays exactly through `sestc --tune-config`.
///
/// The full option list lives in ONE place — the OptionTable below —
/// which generates both the usage text and `--help`. See docs/TUNING.md.
///
//===----------------------------------------------------------------------===//

#include "obs/EventLog.h"
#include "obs/Telemetry.h"
#include "suite/SuiteRunner.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"
#include "tune/Tune.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace sest;

namespace {

void out(const std::string &S) { std::fputs(S.c_str(), stdout); }

/// One option sestune understands: the single source of truth for the
/// usage text, `--help`, and the unknown-option suggestion list.
struct OptionSpec {
  const char *Flag;
  const char *Arg;  ///< Value placeholder; null for boolean flags.
  const char *Help; ///< One-line description.
};

const OptionSpec OptionTable[] = {
    {"--oracle", "LIST",
     "comma-separated cost oracles: static|profile|measured "
     "(default static,profile)"},
    {"--budget", "N",
     "distinct configurations evaluated per program+oracle (default 24)"},
    {"--seed", "N", "search seed for the random-sampling phase"},
    {"--programs", "LIST",
     "comma-separated suite program names (default: whole suite)"},
    {"--file", "FILE.mc",
     "tune a single mini-C file instead of the suite"},
    {"--input", "TEXT", "program input text for --file runs"},
    {"--interp", "ast|bytecode", "execution engine (default bytecode)"},
    {"--jobs", "N",
     "worker threads (0 = cores; reports identical for every N)"},
    {"--report", "FILE", "write the sest-tune-report/1 JSON document"},
    {"--best-config", "FILE",
     "write the static-oracle winner of the first program as "
     "sest-tune-config/1 (for sestc --tune-config)"},
    {"--trace", "FILE", "write Chrome trace-event JSON of the run"},
    {"--log", "FILE",
     "write the sest-events/1 JSONL decision/provenance log"},
    {"--stats", nullptr, "print phase times and all counters"},
    {"--help", nullptr, "print this help and exit"},
};

std::string helpText() {
  std::string S = "usage: sestune [options]\n";
  for (const OptionSpec &Opt : OptionTable) {
    std::string Left = std::string("  ") + Opt.Flag;
    if (Opt.Arg)
      Left += std::string(" ") + Opt.Arg;
    if (Left.size() < 28)
      Left.resize(28, ' ');
    else
      Left += "  ";
    S += Left + Opt.Help + "\n";
  }
  return S;
}

[[noreturn]] void usage() {
  out(helpText());
  std::exit(2);
}

size_t editDistance(const std::string &A, const std::string &B) {
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diag = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Next = std::min({Row[J] + 1, Row[J - 1] + 1,
                              Diag + (A[I - 1] == B[J - 1] ? 0 : 1)});
      Diag = Row[J];
      Row[J] = Next;
    }
  }
  return Row[B.size()];
}

[[noreturn]] void unknownOption(const std::string &A) {
  std::string Msg = "sestune: unknown option '" + A + "'";
  const char *Best = nullptr;
  size_t BestDist = 4; // only suggest plausible typos
  for (const OptionSpec &Opt : OptionTable) {
    size_t D = editDistance(A, Opt.Flag);
    if (D < BestDist) {
      BestDist = D;
      Best = Opt.Flag;
    }
  }
  if (Best)
    Msg += "; did you mean '" + std::string(Best) + "'?";
  std::fputs((Msg + "\n").c_str(), stderr);
  std::exit(2);
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos) {
      Out.push_back(S.substr(Pos));
      break;
    }
    Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

struct Options {
  tune::TuneOptions Tune;
  std::vector<std::string> Programs;
  std::string File;
  std::string Input;
  std::string ReportFile;
  std::string BestConfigFile;
  std::string TraceFile;
  std::string LogFile;
  bool Stats = false;
};

Options parseArgs(int argc, char **argv) {
  Options O;
  O.Tune.Jobs = 0;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> std::string {
      if (I + 1 >= argc)
        usage();
      return argv[++I];
    };
    if (A == "--oracle") {
      O.Tune.Oracles.clear();
      for (const std::string &Name : splitList(Next())) {
        tune::TuneOracle Oracle;
        if (!tune::parseTuneOracle(Name, Oracle)) {
          std::fputs(("sestune: unknown oracle '" + Name +
                      "' (expected static|profile|measured)\n")
                         .c_str(),
                     stderr);
          std::exit(2);
        }
        O.Tune.Oracles.push_back(Oracle);
      }
      if (O.Tune.Oracles.empty())
        usage();
    } else if (A == "--budget") {
      O.Tune.Budget = static_cast<uint32_t>(
          std::strtoul(Next().c_str(), nullptr, 10));
      if (O.Tune.Budget == 0)
        usage();
    } else if (A == "--seed") {
      O.Tune.Seed = std::strtoull(Next().c_str(), nullptr, 10);
    } else if (A == "--programs") {
      O.Programs = splitList(Next());
    } else if (A == "--file") {
      O.File = Next();
    } else if (A == "--input") {
      O.Input = Next();
    } else if (A == "--interp") {
      std::string V = Next();
      if (V == "ast")
        O.Tune.Engine = InterpEngine::Ast;
      else if (V == "bytecode")
        O.Tune.Engine = InterpEngine::Bytecode;
      else
        usage();
    } else if (A == "--jobs") {
      O.Tune.Jobs = static_cast<unsigned>(
          std::strtoul(Next().c_str(), nullptr, 10));
    } else if (A == "--report") {
      O.ReportFile = Next();
    } else if (A == "--best-config") {
      O.BestConfigFile = Next();
    } else if (A == "--trace") {
      O.TraceFile = Next();
    } else if (A == "--log") {
      O.LogFile = Next();
    } else if (A == "--stats") {
      O.Stats = true;
    } else if (A == "--help") {
      out(helpText());
      std::exit(0);
    } else {
      unknownOption(A);
    }
  }
  return O;
}

bool writeTextFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path);
  if (!Out) {
    out("sestune: cannot write '" + Path + "'\n");
    return false;
  }
  Out << Content;
  return true;
}

/// Compiles and profiles the programs the flags selected: the whole
/// suite, a --programs subset, or one --file.
std::vector<CompiledSuiteProgram> gatherPrograms(const Options &O,
                                                 SuiteProgram &FileSpec,
                                                 bool &Err) {
  Err = false;
  InterpOptions RunOpts;
  RunOpts.Engine = O.Tune.Engine;

  if (!O.File.empty()) {
    std::ifstream In(O.File);
    if (!In) {
      out("sestune: cannot open '" + O.File + "'\n");
      Err = true;
      return {};
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    FileSpec.Name = O.File;
    FileSpec.Source = SS.str();
    FileSpec.Inputs.push_back({"train", O.Input, 1});
    FileSpec.Inputs.push_back({"eval", O.Input, 2});
    std::vector<CompiledSuiteProgram> Programs;
    Programs.push_back(compileAndProfileProgram(FileSpec, RunOpts));
    return Programs;
  }

  if (O.Programs.empty())
    return compileAndProfileSuite(RunOpts, O.Tune.Jobs);

  std::vector<CompiledSuiteProgram> Programs;
  for (const std::string &Name : O.Programs) {
    const SuiteProgram *Spec = findSuiteProgram(Name);
    if (!Spec) {
      std::string Msg = "sestune: unknown suite program '" + Name + "'";
      const std::string *Best = nullptr;
      size_t BestDist = 4;
      for (const SuiteProgram &Cand : benchmarkSuite()) {
        size_t D = editDistance(Name, Cand.Name);
        if (D < BestDist) {
          BestDist = D;
          Best = &Cand.Name;
        }
      }
      if (Best)
        Msg += "; did you mean '" + *Best + "'?";
      std::fputs((Msg + "\n").c_str(), stderr);
      Err = true;
      return {};
    }
    Programs.push_back(compileAndProfileProgram(*Spec, RunOpts));
  }
  return Programs;
}

int runTune(const Options &O) {
  SuiteProgram FileSpec;
  bool GatherErr = false;
  std::vector<CompiledSuiteProgram> Programs =
      gatherPrograms(O, FileSpec, GatherErr);
  if (GatherErr)
    return 2;

  const tune::TuneSuiteReport Report =
      tune::computeTuneReport(Programs, O.Tune);

  TextTable T;
  std::vector<std::string> Header = {"Program", "Identity"};
  for (tune::TuneOracle Oracle : O.Tune.Oracles)
    Header.push_back(std::string(tune::tuneOracleName(Oracle)) +
                     " best");
  Header.push_back("Overlap");
  T.setHeader(Header);
  for (const tune::TuneProgramReport &P : Report.Programs) {
    std::vector<std::string> Row = {P.Name};
    if (!P.Ok) {
      Row.push_back("FAILED");
      for (size_t I = 0; I < O.Tune.Oracles.size(); ++I)
        Row.push_back("-");
      Row.push_back("-");
      T.addRow(Row);
      continue;
    }
    Row.push_back(formatDouble(P.IdentityEvalCost, 0));
    for (tune::TuneOracle Oracle : O.Tune.Oracles) {
      std::string Cell = "-";
      for (const tune::TuneOracleResult &R : P.Oracles)
        if (R.Oracle == tune::tuneOracleName(Oracle))
          Cell = formatDouble(R.EvalCost, 0) + " (" +
                 formatPercent(R.EvalReduction) + ")" +
                 (R.Verified ? "" : " UNVERIFIED");
      Row.push_back(Cell);
    }
    Row.push_back(formatPercent(P.ConfigOverlap));
    T.addRow(Row);
  }
  out(T.str());

  bool AllOk = Report.AllVerified;
  for (const tune::TuneProgramReport &P : Report.Programs)
    if (!P.Ok) {
      out("error: " + P.Name + ": " + P.Error + "\n");
      AllOk = false;
    }
  out("static search recovery: " +
      formatDouble(Report.StaticSearchRecovery, 3) +
      (Report.MeetsRecoveryFloor ? " (meets " : " (BELOW ") +
      formatDouble(O.Tune.StaticSearchRecoveryFloor, 2) +
      " advisory floor); mean config overlap " +
      formatPercent(Report.MeanConfigOverlap) + "; mean regret " +
      formatDouble(Report.MeanRegret, 4) + "\n");
  if (!Report.AllVerified)
    out("error: a tuned winner failed differential verification\n");

  if (!O.ReportFile.empty()) {
    if (!writeTextFile(O.ReportFile,
                       tune::tuneReportJson(Report, O.Tune)))
      return 1;
    out("tune report written to " + O.ReportFile + "\n");
  }
  if (!O.BestConfigFile.empty()) {
    const opt::TuneConfig *Best = nullptr;
    for (const tune::TuneProgramReport &P : Report.Programs) {
      if (!P.Ok)
        continue;
      for (const tune::TuneOracleResult &R : P.Oracles)
        if (R.Oracle == "static" && !Best)
          Best = &R.Best;
      if (Best)
        break;
    }
    if (!Best) {
      out("sestune: no static-oracle winner to write\n");
      return 1;
    }
    if (!writeTextFile(O.BestConfigFile, Best->toJson()))
      return 1;
    out("best config written to " + O.BestConfigFile +
        " (replay: sestc --tune-config " + O.BestConfigFile +
        " file.mc)\n");
  }
  return AllOk ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  Options O = parseArgs(argc, argv);

  obs::Telemetry Tele;
  obs::EventLog Log;
  const bool WantTelemetry = !O.TraceFile.empty() || O.Stats;
  const bool WantLog = !O.LogFile.empty();
  if (WantTelemetry)
    Tele.install();
  if (WantLog)
    Log.install();

  int Rc = runTune(O);

  if (WantLog) {
    Log.uninstall();
    if (!writeTextFile(O.LogFile, Log.jsonl()))
      return 1;
    out("event log written to " + O.LogFile + " (" +
        std::to_string(Log.events().size()) + " events)\n");
  }
  if (WantTelemetry) {
    Tele.uninstall();
    if (O.Stats) {
      out("\n-- phase times --\n" + Tele.phaseSummary());
      out("\n-- counters --\n" + Tele.statsTable());
    }
    if (!O.TraceFile.empty()) {
      if (!writeTextFile(O.TraceFile, Tele.traceJson()))
        return 1;
      out("trace written to " + O.TraceFile + "\n");
    }
  }
  return Rc;
}
